//! The paper's worked example (Figures 1 and 2), end to end: model,
//! naive process synthesis with monitors, latency-scheduled table, and
//! the generated pseudo-code for both implementations.
//!
//! ```text
//! cargo run --example control_system
//! ```

use rtcg::core::heuristic::synthesize;
use rtcg::core::mok_example;
use rtcg::process::naive_synthesis;
use rtcg::synth::codegen::{render_process_system, render_table_scheduler};
use rtcg::synth::straightline::synthesize_programs;

fn main() {
    let (model, _) = mok_example::default_model();

    println!("=== the communication graph (Figure 1) ===");
    println!("{}", model.comm().to_dot("figure-1"));

    println!("=== the timing constraints (Figure 2) ===");
    for c in model.constraints() {
        println!(
            "  ({}, p={}, d={})  [{}]  w={}",
            c.name,
            c.period,
            c.deadline,
            if c.is_periodic() {
                "periodic"
            } else {
                "asynchronous"
            },
            c.computation_time(model.comm()).unwrap()
        );
    }
    println!();

    println!("=== naive synthesis: one process per constraint, monitors on shared elements ===");
    let naive = naive_synthesis(&model).expect("synthesizes");
    println!(
        "monitors on: {:?}",
        naive
            .monitors
            .iter()
            .map(|&e| model.comm().name(e).expect("monitor in graph"))
            .collect::<Vec<_>>()
    );
    println!(
        "naive demand {:.3}/tick vs merged {:.3}/tick — {:.3}/tick of redundant shared work",
        naive.demand_rate(),
        naive.merged_demand_rate(&model).unwrap(),
        naive.redundant_work_rate(&model).unwrap()
    );
    let (programs, _) = synthesize_programs(&model).expect("programs");
    println!();
    println!(
        "{}",
        render_process_system(&model, &programs).expect("model ids valid")
    );

    println!("=== latency scheduling: the feasible static schedule ===");
    let outcome = synthesize(&model).expect("synthesizable");
    let m = outcome.model();
    println!("strategy: {}", outcome.strategy);
    println!(
        "schedule: {}",
        outcome.schedule.display(m.comm()).expect("model ids valid")
    );
    let report = outcome.schedule.feasibility(m).expect("analyzable");
    print!("{report}");
    assert!(report.is_feasible());
    println!();

    println!("=== generated run-time scheduler ===");
    println!(
        "{}",
        render_table_scheduler(m.comm(), &outcome.schedule).expect("model ids valid")
    );
}
