//! Quickstart: build a model, synthesize a schedule, verify it, run it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rtcg::prelude::*;
use rtcg::sim::invocation::InvocationPattern;
use rtcg::sim::table::run_table_executor;

fn main() {
    // 1. Describe the computation as a communication graph: a sensor
    //    front-end feeding a filter feeding an actuator.
    let mut b = ModelBuilder::new();
    let sense = b.element("sense", 1);
    let filter = b.element("filter", 2);
    let act = b.element("act", 1);
    b.channel(sense, filter);
    b.channel(filter, act);

    // 2. State the timing constraints. Periodic: the full chain every 12
    //    ticks. Asynchronous: an operator command must reach the actuator
    //    within 10 ticks, commands at least 20 apart.
    let chain = TaskGraphBuilder::new()
        .op("s", sense)
        .op("f", filter)
        .op("a", act)
        .chain(&["s", "f", "a"])
        .build()
        .expect("valid task graph");
    b.periodic("control-loop", chain, 12, 12);

    let command = TaskGraphBuilder::new()
        .op("f", filter)
        .op("a", act)
        .edge("f", "a")
        .build()
        .expect("valid task graph");
    b.asynchronous("operator-cmd", command, 20, 10);

    let model = b.build().expect("model validates");
    println!(
        "model: {} elements, {} constraints, deadline density {:.3}",
        model.comm().element_count(),
        model.constraints().len(),
        model.deadline_density()
    );

    // 3. Synthesize a feasible static schedule (latency scheduling).
    let outcome = rtcg::core::heuristic::synthesize(&model).expect("synthesizable");
    let m = outcome.model();
    println!(
        "schedule ({}): {}",
        outcome.strategy,
        outcome.schedule.display(m.comm()).expect("model ids valid")
    );

    // 4. The guarantee, verified exactly.
    let report = outcome.schedule.feasibility(m).expect("analyzable");
    print!("{report}");
    assert!(report.is_feasible());

    // 5. And exercised: run the cyclic executor against adversarial
    //    invocations for 5000 ticks.
    let patterns: Vec<InvocationPattern> = m
        .constraints()
        .iter()
        .map(|c| {
            if c.is_periodic() {
                InvocationPattern::Periodic {
                    period: c.period,
                    offset: 0,
                }
            } else {
                InvocationPattern::SporadicMaxRate {
                    separation: c.period,
                    offset: 5,
                }
            }
        })
        .collect();
    let run = run_table_executor(m, &outcome.schedule, &patterns, 5000).expect("runs");
    for o in &run.outcomes {
        println!(
            "{}: {} invocations, {} met, worst response {:?}",
            o.name, o.checked, o.met, o.worst_response
        );
    }
    assert!(run.all_met());
    println!("quickstart OK");
}
