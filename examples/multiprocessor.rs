//! Multiprocessor deployment — the paper's deferred decomposition,
//! exercised: a signal-processing pipeline spread over two processors
//! and a bus, each stage synthesized as its own single-processor
//! problem, with a composed end-to-end guarantee.
//!
//! ```text
//! cargo run --example multiprocessor
//! ```

use rtcg::core::heuristic::SynthesisConfig;
use rtcg::multi::{balance_load, synthesize_multi, Placement, ProcessorId};
use rtcg::prelude::*;

fn build_pipeline() -> Model {
    // acquire(1) -> fft(3) -> detect(2) -> report(1), deadline 60
    let mut b = ModelBuilder::new();
    let acquire = b.element("acquire", 1);
    let fft = b.element("fft", 3);
    let detect = b.element("detect", 2);
    let report = b.element("report", 1);
    b.channel(acquire, fft);
    b.channel(fft, detect);
    b.channel(detect, report);
    let tg = TaskGraphBuilder::new()
        .op("a", acquire)
        .op("f", fft)
        .op("d", detect)
        .op("r", report)
        .chain(&["a", "f", "d", "r"])
        .build()
        .expect("valid chain");
    b.asynchronous("pipeline", tg, 60, 60);
    // an independent housekeeping constraint
    let hk = b.element("housekeeping", 1);
    let tg = TaskGraphBuilder::new().op("h", hk).build().expect("valid");
    b.periodic("housekeeping", tg, 16, 16);
    b.build().expect("model validates")
}

fn main() {
    let model = build_pipeline();
    let cfg = SynthesisConfig {
        max_hyperperiod: 200_000,
        game_state_budget: 50_000,
    };

    // explicit placement: front-end on cpu0, back-end on cpu1
    let comm = model.comm();
    let mut placement = Placement::new(2).expect("2 cpus");
    for name in ["acquire", "fft", "housekeeping"] {
        placement
            .assign(comm.lookup(name).unwrap(), ProcessorId(0))
            .unwrap();
    }
    for name in ["detect", "report"] {
        placement
            .assign(comm.lookup(name).unwrap(), ProcessorId(1))
            .unwrap();
    }

    let out = synthesize_multi(&model, &placement, cfg).expect("decomposes");
    println!("explicit placement (front-end / back-end):");
    for sc in &out.sliced {
        println!(
            "  {}: {} stage(s), {} message boundary(ies), slices sum {}",
            out.end_to_end[sc.constraint.index()].name,
            sc.fragments.len(),
            sc.messages.len(),
            sc.total_slices()
        );
    }
    for (i, cpu) in out.cpus.iter().enumerate() {
        match cpu {
            Some(o) => println!(
                "  cpu{i}: {} actions, busy {:.1}%",
                o.schedule.len(),
                100.0 * o.schedule.busy_fraction(o.model().comm()).unwrap()
            ),
            None => println!("  cpu{i}: idle"),
        }
    }
    if let Some(bus) = &out.bus {
        println!(
            "  bus: {} actions, busy {:.1}%",
            bus.schedule.len(),
            100.0 * bus.schedule.busy_fraction(bus.model().comm()).unwrap()
        );
    }
    for e in &out.end_to_end {
        println!(
            "  {}: composed bound {} vs deadline {} — {}",
            e.name,
            e.bound,
            e.deadline,
            if e.ok { "OK" } else { "VIOLATED" }
        );
    }
    assert!(out.all_ok());

    // automatic placement for comparison
    let auto = balance_load(&model, 2).expect("balances");
    match synthesize_multi(&model, &auto, cfg) {
        Ok(out2) => {
            println!(
                "\nautomatic load-balanced placement also verifies: {}",
                out2.all_ok()
            );
        }
        Err(e) => println!("\nautomatic placement fails ({e}) — placement matters!"),
    }
    println!("multiprocessor OK");
}
