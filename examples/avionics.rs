//! An avionics-flavoured specification (the paper name-checks the
//! Parnas/Heninger A-7E style of requirements): multi-rate sensor fusion
//! with a sporadic pilot command, written in the `rtcg-lang` text format
//! and pushed through the full pipeline — parse → elaborate → synthesize
//! → simulate under random traffic.
//!
//! ```text
//! cargo run --example avionics
//! ```

use rtcg::lang::parse_model;
use rtcg::sim::invocation::InvocationPattern;
use rtcg::sim::table::run_table_executor;

const SPEC: &str = r#"
    // sensor front-ends
    element imu     wcet 1;   // inertial measurement unit
    element airdata wcet 1;   // air-data computer
    element radalt  wcet 1;   // radar altimeter

    // fusion and control
    element fuse    wcet 2;   // navigation filter
    element ctl     wcet 1;   // control-law evaluation
    element surface wcet 1;   // surface actuator command

    // pilot input path
    element stick   wcet 1;   // stick/throttle sampling

    channel imu     -> fuse  label "accel";
    channel airdata -> fuse  label "airspeed";
    channel radalt  -> fuse  label "altitude";
    channel fuse    -> ctl   label "state";
    channel ctl     -> surface label "demand";
    channel stick   -> ctl   label "pilot";

    // fast inner loop: IMU -> fuse -> control -> surface, every 25 ticks
    periodic inner period 25 deadline 25 {
        op i: imu; op f: fuse; op c: ctl; op s: surface;
        i -> f -> c -> s;
    }

    // slow outer loop: air data + radar altimeter refresh the filter
    periodic outer period 100 deadline 100 {
        op a: airdata; op r: radalt; op f: fuse;
        a -> f;
        r -> f;
    }

    // pilot command: sampled stick to surface within 20 ticks
    asynchronous pilot period 50 deadline 20 {
        op p: stick; op c: ctl; op s: surface;
        p -> c -> s;
    }
"#;

fn main() {
    let model = parse_model(SPEC).expect("spec parses and validates");
    println!(
        "avionics model: {} elements, {} constraints, density {:.3}",
        model.comm().element_count(),
        model.constraints().len(),
        model.deadline_density()
    );

    let outcome = rtcg::core::heuristic::synthesize(&model).expect("synthesizable");
    let m = outcome.model();
    println!(
        "synthesized via {}: {} actions over {} ticks, busy {:.1}%",
        outcome.strategy,
        outcome.schedule.len(),
        outcome.schedule.duration(m.comm()).unwrap(),
        100.0 * outcome.schedule.busy_fraction(m.comm()).unwrap()
    );
    let report = outcome.schedule.feasibility(m).expect("analyzable");
    print!("{report}");
    assert!(report.is_feasible());

    // random pilot traffic, three different seeds
    for seed in [1u64, 2, 3] {
        let patterns: Vec<InvocationPattern> = m
            .constraints()
            .iter()
            .map(|c| {
                if c.is_periodic() {
                    InvocationPattern::Periodic {
                        period: c.period,
                        offset: 0,
                    }
                } else {
                    InvocationPattern::SporadicRandom {
                        separation: c.period,
                        spread: c.period * 2,
                        seed,
                    }
                }
            })
            .collect();
        let run = run_table_executor(m, &outcome.schedule, &patterns, 20_000).expect("runs");
        let pilot = run
            .outcomes
            .iter()
            .find(|o| o.name == "pilot")
            .expect("pilot constraint");
        println!(
            "seed {seed}: pilot commands {} / {} met (worst response {:?})",
            pilot.met, pilot.checked, pilot.worst_response
        );
        assert!(run.all_met());
    }
    println!("avionics OK — every deadline met under random pilot traffic");
}
