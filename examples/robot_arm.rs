//! A robot-arm controller: three joints sharing one inverse-kinematics
//! solver — the shared-operation situation the paper uses to motivate
//! latency scheduling — plus the software-pipelining transform that
//! shrinks the monitor critical sections of the naive implementation.
//!
//! ```text
//! cargo run --example robot_arm
//! ```

use rtcg::core::heuristic::pipeline::pipeline_model;
use rtcg::core::heuristic::synthesize;
use rtcg::prelude::*;
use rtcg::process::naive_synthesis;
use rtcg::synth::merge_constraints;
use rtcg::synth::pipelining::{max_critical_section, pipeline_program};
use rtcg::synth::straightline::synthesize_programs;

fn main() {
    // three joint encoders, one shared inverse-kinematics solver (heavy,
    // pipelinable), three servo outputs
    let mut b = ModelBuilder::new();
    let ik = b.element("ik", 3); // the shared solver
    let mut cids = Vec::new();
    for j in 0..3u32 {
        let enc = b.element(&format!("enc{j}"), 1);
        let servo = b.element(&format!("servo{j}"), 1);
        b.channel(enc, ik);
        b.channel(ik, servo);
        let tg = TaskGraphBuilder::new()
            .op("e", enc)
            .op("k", ik)
            .op("s", servo)
            .chain(&["e", "k", "s"])
            .build()
            .expect("valid chain");
        // all joints run at the same rate — the paper's p_x = p_y case
        cids.push(b.periodic(&format!("joint{j}"), tg, 40, 40));
    }
    let model = b.build().expect("model validates");

    println!(
        "robot arm: {} elements, {} joint loops",
        model.comm().element_count(),
        3
    );

    // naive process mapping duplicates the IK solve per joint
    let naive = naive_synthesis(&model).expect("synthesizes");
    println!(
        "naive demand {:.3}/tick; merged demand {:.3}/tick; redundant {:.3}/tick",
        naive.demand_rate(),
        naive.merged_demand_rate(&model).unwrap(),
        naive.redundant_work_rate(&model).unwrap()
    );

    // merging the three joint chains shares the solver
    let merged = merge_constraints(&model, &cids).expect("merge");
    println!(
        "merged task graph: {} ops, saving {} ticks/round ({:.0}% of separate work)",
        merged.task.op_count(),
        merged.saving(),
        100.0 * merged.saving_fraction()
    );
    assert_eq!(merged.saving(), 6, "two redundant 3-tick IK solves saved");

    // software pipelining shrinks the monitor critical section on ik
    let (programs, monitors) = synthesize_programs(&model).expect("programs");
    let before = max_critical_section(&programs[0], model.comm());
    let pipelined = pipeline_model(&model).expect("pipelines");
    let after = max_critical_section(
        &pipeline_program(&programs[0], &pipelined, &monitors),
        pipelined.model.comm(),
    );
    println!("monitor critical section: {before} ticks before pipelining, {after} after");
    assert_eq!((before, after), (3, 1));

    // and latency scheduling produces a verified table
    let outcome = synthesize(&model).expect("synthesizable");
    let report = outcome
        .schedule
        .feasibility(outcome.model())
        .expect("analyzable");
    print!("{report}");
    assert!(report.is_feasible());
    println!(
        "table: {} actions, busy {:.1}% (vs naive demand {:.1}%)",
        outcome.schedule.len(),
        100.0
            * outcome
                .schedule
                .busy_fraction(outcome.model().comm())
                .unwrap(),
        100.0 * naive.demand_rate()
    );
    println!("robot arm OK");
}
