//! Derive macros for the vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes this repository actually declares: named structs, tuple
//! structs (newtype included), unit structs, and enums mixing unit,
//! tuple and struct variants — all optionally generic over type
//! parameters. Parsing is done directly on the `proc_macro` token
//! stream (no `syn`/`quote`, which are unavailable offline); generated
//! code is assembled as text and re-parsed, which rustc checks like any
//! other code.
//!
//! Unsupported (and unused in this repo): lifetimes, const generics,
//! `where` clauses, unions, and `#[serde(...)]` field attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Which trait is being derived.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive(input, Mode::De)
}

fn derive(input: TokenStream, mode: Mode) -> TokenStream {
    let item = parse_item(input).expect("serde_derive: unsupported item shape");
    let code = match mode {
        Mode::Ser => gen_serialize(&item),
        Mode::De => gen_deserialize(&item),
    };
    code.parse()
        .expect("serde_derive: generated code must parse")
}

// ---------------------------------------------------------------------
// item model + parsing

struct Item {
    name: String,
    /// Type parameter names, in declaration order.
    generics: Vec<String>,
    body: Body,
}

enum Body {
    /// `struct S;`
    Unit,
    /// `struct S(T1, ...);` — arity recorded.
    Tuple(usize),
    /// `struct S { f1: T1, ... }` — field names recorded.
    Named(Vec<String>),
    /// `enum E { ... }`.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Option<Item> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut ix = 0;
    skip_attrs_and_vis(&tokens, &mut ix);
    let keyword = ident_at(&tokens, ix)?;
    ix += 1;
    let name = ident_at(&tokens, ix)?;
    ix += 1;
    let generics = parse_generics(&tokens, &mut ix);
    let body = match keyword.as_str() {
        "struct" => match tokens.get(ix) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_field_names(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            None => Body::Unit,
            _ => return None,
        },
        "enum" => match tokens.get(ix) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            _ => return None,
        },
        _ => return None,
    };
    Some(Item {
        name,
        generics,
        body,
    })
}

fn ident_at(tokens: &[TokenTree], ix: usize) -> Option<String> {
    match tokens.get(ix) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Skips leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], ix: &mut usize) {
    loop {
        match tokens.get(*ix) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *ix += 1;
                if matches!(tokens.get(*ix), Some(TokenTree::Group(_))) {
                    *ix += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *ix += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*ix) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *ix += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `<A, B: Bound, ...>` if present, returning the parameter names.
fn parse_generics(tokens: &[TokenTree], ix: &mut usize) -> Vec<String> {
    match tokens.get(*ix) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *ix += 1;
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut expect_name = true;
    while let Some(tok) = tokens.get(*ix) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *ix += 1;
                    return params;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_name = true,
            TokenTree::Ident(id) if depth == 1 && expect_name => {
                params.push(id.to_string());
                expect_name = false;
            }
            _ => {}
        }
        *ix += 1;
    }
    params
}

/// Splits a token stream at top-level commas (angle-bracket aware).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle = 0usize;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tok);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Field names of a named-struct body.
fn parse_field_names(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .filter_map(|chunk| {
            let mut ix = 0;
            skip_attrs_and_vis(&chunk, &mut ix);
            ident_at(&chunk, ix)
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Option<Vec<Variant>> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut ix = 0;
        skip_attrs_and_vis(&chunk, &mut ix);
        let name = ident_at(&chunk, ix)?;
        ix += 1;
        let body = match chunk.get(ix) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantBody::Named(parse_field_names(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantBody::Tuple(split_top_level(g.stream()).len())
            }
            // `= discriminant` or nothing
            _ => VariantBody::Unit,
        };
        variants.push(Variant { name, body });
    }
    Some(variants)
}

// ---------------------------------------------------------------------
// code generation

/// `impl<A: ::serde::Trait, ...> ::serde::Trait for Name<A, ...>`.
fn impl_header(item: &Item, trait_name: &str) -> String {
    let bounds = if item.generics.is_empty() {
        String::new()
    } else {
        format!(
            "<{}>",
            item.generics
                .iter()
                .map(|g| format!("{g}: ::serde::{trait_name}"))
                .collect::<Vec<_>>()
                .join(", ")
        )
    };
    let args = if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics.join(", "))
    };
    format!("impl{bounds} ::serde::{trait_name} for {}{args}", item.name)
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => "::serde::value::Value::Null".to_string(),
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::value::Value::Arr(::std::vec![{items}])")
        }
        Body::Named(fields) => named_fields_to_obj(fields, |f| format!("&self.{f}")),
        Body::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        VariantBody::Unit => format!(
                            "{name}::{vname} => ::serde::value::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantBody::Tuple(n) => {
                            let binders = (0..*n)
                                .map(|i| format!("__f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items = (0..*n)
                                    .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                format!("::serde::value::Value::Arr(::std::vec![{items}])")
                            };
                            format!(
                                "{name}::{vname}({binders}) => \
                                 ::serde::value::Value::Obj(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), {inner})]),"
                            )
                        }
                        VariantBody::Named(fields) => {
                            let binders = fields.join(", ");
                            let inner = named_fields_to_obj(fields, |f| f.to_string());
                            format!(
                                "{name}::{vname} {{ {binders} }} => \
                                 ::serde::value::Value::Obj(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), {inner})]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "{} {{\n fn to_value(&self) -> ::serde::value::Value {{\n {body}\n }}\n}}",
        impl_header(item, "Serialize")
    )
}

/// `Value::Obj(vec![("f", to_value(<expr(f)>)), ...])`.
fn named_fields_to_obj(fields: &[String], expr: impl Fn(&str) -> String) -> String {
    let pairs = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value({}))",
                expr(f)
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("::serde::value::Value::Obj(::std::vec![{pairs}])")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => format!(
            "match __v {{\n ::serde::value::Value::Null => ::std::result::Result::Ok({name}),\n \
             other => ::std::result::Result::Err(::serde::de::Error::expected(\"null\", other)),\n }}"
        ),
        Body::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Body::Tuple(n) => format!(
            "{{ let __arr = __v.as_arr().ok_or_else(|| \
             ::serde::de::Error::expected(\"array\", __v))?;\n \
             if __arr.len() != {n} {{ return ::std::result::Result::Err(\
             ::serde::de::Error::msg(\"tuple struct arity mismatch\")); }}\n \
             ::std::result::Result::Ok({name}({fields})) }}",
            fields = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Body::Named(fields) => format!(
            "::std::result::Result::Ok({name} {{ {} }})",
            named_fields_from_obj(name, fields, "__v")
        ),
        Body::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.body, VariantBody::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect::<Vec<_>>()
                .join("\n");
            let data_arms = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        VariantBody::Unit => None,
                        VariantBody::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantBody::Tuple(n) => Some(format!(
                            "\"{vname}\" => {{ let __arr = __inner.as_arr().ok_or_else(|| \
                             ::serde::de::Error::expected(\"array\", __inner))?;\n \
                             if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::de::Error::msg(\"tuple variant arity mismatch\")); }}\n \
                             ::std::result::Result::Ok({name}::{vname}({fields})) }}",
                            fields = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        )),
                        VariantBody::Named(fields) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                            named_fields_from_obj(&format!("{name}::{vname}"), fields, "__inner")
                        )),
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "match __v {{\n \
                 ::serde::value::Value::Str(__s) => match __s.as_str() {{\n {unit_arms}\n \
                 __other => ::std::result::Result::Err(\
                 ::serde::de::Error::unknown_variant(\"{name}\", __other)),\n }},\n \
                 ::serde::value::Value::Obj(__pairs) if __pairs.len() == 1 => {{\n \
                 let (__tag, __inner) = &__pairs[0];\n \
                 match __tag.as_str() {{\n {data_arms}\n \
                 __other => ::std::result::Result::Err(\
                 ::serde::de::Error::unknown_variant(\"{name}\", __other)),\n }}\n }},\n \
                 __other => ::std::result::Result::Err(\
                 ::serde::de::Error::expected(\"enum value\", __other)),\n }}"
            )
        }
    };
    format!(
        "{} {{\n fn from_value(__v: &::serde::value::Value) -> \
         ::std::result::Result<Self, ::serde::de::Error> {{\n {body}\n }}\n}}",
        impl_header(item, "Deserialize")
    )
}

/// `f: from_value(field(<src>, "Ty", "f")?)?, ...`.
fn named_fields_from_obj(ty: &str, fields: &[String], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                 ::serde::de::field({src}, \"{ty}\", \"{f}\")?)?"
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}
