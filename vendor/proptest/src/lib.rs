//! Workspace-local stand-in for the subset of `proptest` this
//! repository uses.
//!
//! Provides the [`Strategy`] trait over ranges / tuples / collections,
//! [`any`] via an [`Arbitrary`] bound, `prop::collection::vec`,
//! `prop::sample::Index`, the [`proptest!`] macro (with the optional
//! `#![proptest_config(...)]` inner attribute) and the `prop_assert*`
//! macros. Differences from upstream: no shrinking (a failing case
//! panics with the generated input attached via a drop guard), and the
//! per-test RNG seed is a deterministic hash of the test name, so runs
//! are reproducible.

use rand::{RngCore, SeedableRng};

/// The generator driving each test case.
pub type TestRng = rand::SmallRng;

/// Configuration block accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps each drawn value through `f` to build a dependent strategy
    /// and draws from that (e.g. a deadline range that starts at the
    /// drawn weight).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Maps each drawn value through a plain function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// A fixed value is a strategy for itself (proptest's `Just` spirit, used
/// for literal sizes).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $ix:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The `prop::` namespace mirrored from upstream.
pub mod prop {
    use super::*;

    /// Collection strategies.
    pub mod collection {
        use super::*;

        /// Strategy for `Vec<S::Value>` with a size drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        /// `prop::collection::vec(element, size_range)`.
        pub fn vec<S: Strategy, R>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S, std::ops::Range<usize>> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = rand::Rng::gen_range(rng, self.size.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S, std::ops::RangeInclusive<usize>> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = rand::Rng::gen_range(rng, self.size.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S, usize> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                (0..self.size).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::*;

        /// An index into a not-yet-known collection: stores raw entropy,
        /// maps it into `[0, len)` when the length is known.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// The index modulo `len`. Panics if `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

// ---------------------------------------------------------------------
// runtime plumbing for the proptest! macro

/// FNV-1a over the test name: a stable per-test RNG seed.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the per-test generator.
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed_for(test_name) ^ ((case as u64) << 32))
}

/// Drop guard that reports the failing case's input when the body
/// panics (the stand-in's replacement for shrinking).
pub struct CaseReporter {
    /// `Debug` rendering of the generated inputs.
    pub desc: String,
    /// Case number.
    pub case: u32,
    /// Disarmed once the case passes.
    pub armed: bool,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: case #{} failed with input: {}",
                self.case, self.desc
            );
        }
    }
}

/// Property-based test harness macro.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_holds((a, b) in (0u32..10, 0u32..10), ix in any::<u64>()) {
///         prop_assert!(a < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let __vals = ( $($crate::Strategy::generate(&$strat, &mut __rng),)+ );
                    let mut __reporter = $crate::CaseReporter {
                        desc: format!("{:?}", __vals),
                        case: __case,
                        armed: true,
                    };
                    let ($($pat,)+) = __vals;
                    { $body }
                    __reporter.armed = false;
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `prop_assert!` — assert inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!` — equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!` — inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_vecs_compose(
            (a, b, c) in (1usize..5, 0u32..100, any::<bool>()),
            v in prop::collection::vec((0u64..9, any::<u8>()), 1..=6),
            ix in any::<prop::sample::Index>(),
        ) {
            prop_assert!((1..5).contains(&a));
            prop_assert!(b < 100);
            let _ = c;
            prop_assert!(!v.is_empty() && v.len() <= 6);
            prop_assert!(v.iter().all(|&(n, _)| n < 9));
            prop_assert!(ix.index(v.len()) < v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_attribute_is_accepted(x in 0u8..=255) {
            let _ = x;
        }
    }
}
