//! Workspace-local stand-in for the subset of the `rand` crate API this
//! repository uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a hand-rolled, std-only implementation of exactly the surface
//! the code calls: [`RngCore`], the [`Rng`] extension trait with
//! `gen_range` / `gen_bool` / `gen`, and [`SeedableRng`]. Distribution
//! quality matches what the call sites need (uniform ranges via rejection
//! sampling, 53-bit-mantissa floats); it is **not** a cryptographic or
//! statistically audited generator and the value streams differ from the
//! upstream crate. Nothing in the repo depends on upstream's exact
//! streams — only on determinism per seed, which this provides.

/// Core generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`. `low < high` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`. `low <= high` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Uniform `u64` in `[0, bound)` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Lemire-style: reject the biased tail.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// 53-bit-mantissa uniform in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + unit_f64(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, f64::from_bits(high.to_bits() + 1))
    }
}

/// A range form accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a `Range` or `RangeInclusive`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        unit_f64(self) < p
    }

    /// A value of the `Standard` distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// The default small, fast generator (`rand::rngs::SmallRng` stand-in):
/// xoshiro256++ seeded through SplitMix64.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    fn from_state(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng::from_state(seed)
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
    }
}
