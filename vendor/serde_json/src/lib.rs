//! Workspace-local stand-in for the subset of `serde_json` this
//! repository uses: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`] / [`from_value`], and the [`Value`] re-export.
//!
//! The parser is a strict recursive-descent JSON reader (RFC 8259
//! grammar: escapes incl. `\uXXXX` surrogate pairs, exponent numbers,
//! no trailing commas or comments). Writing goes through the vendored
//! `serde::value::Value` display impl.

pub use serde::value::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced by JSON conversion or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of a parse error, when applicable.
    offset: Option<usize>,
}

impl Error {
    fn parse(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {off}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error {
            msg: e.to_string(),
            offset: None,
        }
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes a value to indented JSON (two spaces, like serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    use std::fmt::Write;
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                let _ = write!(out, "{}: ", Value::Str(k.clone()));
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

// ---------------------------------------------------------------------
// parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document (rejecting trailing garbage).
fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::parse("unexpected end of input", self.pos)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::parse(
                format!("unexpected character `{}`", other as char),
                self.pos,
            )),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::parse("unterminated string", self.pos));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::parse("unterminated escape", self.pos));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::parse("lone surrogate", self.pos));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::parse("invalid low surrogate", self.pos));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::parse("invalid code point", self.pos))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::parse("invalid code point", self.pos))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::parse(
                                format!("invalid escape `\\{}`", other as char),
                                self.pos,
                            ))
                        }
                    }
                }
                // multi-byte UTF-8: copy the remaining bytes of the char
                _ if b >= 0x80 => {
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::parse("truncated UTF-8", start))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::parse("invalid UTF-8", start))?;
                    out.push_str(s);
                    self.pos = end;
                }
                _ if b < 0x20 => {
                    return Err(Error::parse("control character in string", self.pos - 1))
                }
                _ => out.push(b as char),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::parse("truncated \\u escape", self.pos))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::parse("bad \\u escape", self.pos))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::parse("bad \\u escape", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("bad number", start))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse("bad number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<String>(r#""a\nbA😀""#).unwrap(), "a\nbA😀");
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<u32> = vec![1, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let s = to_string(&m).unwrap();
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, u64>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn value_parses_arbitrary_documents() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_str(), Some("x"));
        assert!(v["b"]["c"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("[1] tail").is_err());
        assert!(from_str::<Value>(r#"{"a" 1}"#).is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn pretty_output_reparses() {
        let v: Value = from_str(r#"{"a":[1,2],"b":"x","c":[]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn float_formatting_round_trips() {
        for x in [1.0f64, 0.1, 1e300, -2.5, 1.0 / 3.0] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
    }
}
