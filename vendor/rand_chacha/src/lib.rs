//! Workspace-local stand-in for `rand_chacha`, implementing a genuine
//! ChaCha8 keystream generator over the vendored `rand` traits.
//!
//! The seeding scheme (`seed_from_u64` expands the 64-bit seed with
//! SplitMix64 into the 256-bit key, as upstream does) and the block
//! function follow RFC 8439 with 8 rounds; the word-to-output order is
//! the natural little-endian one. Streams are deterministic per seed but
//! are **not** bit-identical to the upstream crate — nothing in this
//! repository depends on upstream's exact streams.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, 64-bit output granularity.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (words 4..12 of the initial state).
    key: [u32; 8],
    /// Block counter (words 12..14 as a 64-bit little-endian counter).
    counter: u64,
    /// Current 16-word keystream block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 = exhausted.
    word_ix: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (w, init) in state.iter_mut().zip(initial) {
            *w = w.wrapping_add(init);
        }
        self.block = state;
        self.word_ix = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    fn next_word(&mut self) -> u32 {
        if self.word_ix >= 16 {
            self.refill();
        }
        let w = self.block[self.word_ix];
        self.word_ix += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit key.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word_ix: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(8);
        assert_ne!(ChaCha8Rng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_and_floats_work_through_the_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(0..1000);
            assert!(v < 1000);
            let f = rng.gen_range(0.2f64..1.0);
            assert!((0.2..1.0).contains(&f));
        }
    }

    #[test]
    fn keystream_is_not_degenerate() {
        // 1000 draws from [0,1000) should hit many distinct values
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            seen.insert(rng.gen_range(0u32..1000));
        }
        assert!(seen.len() > 500, "only {} distinct values", seen.len());
    }
}
