//! Workspace-local stand-in for the subset of `criterion` this
//! repository uses.
//!
//! Same API shape as upstream — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros — but with a plain wall-clock measurement loop instead of
//! statistical analysis: each benchmark is warmed up once, timed over a
//! capped batch, and the mean per-iteration time is printed as
//! `group/id ... <time>`.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier. Not a compiler fence like upstream's, but
/// enough to keep results "used" so the closure isn't optimised away.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Caps how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Marks the group complete (upstream parity; measurement already
    /// happened per-benchmark).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
            iters_run: 0,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters_run > 0 {
            bencher.elapsed.as_nanos() as f64 / bencher.iters_run as f64
        } else {
            0.0
        };
        println!("{}/{:<24} {}", self.name, id, format_nanos(per_iter));
    }
}

/// Passed to benchmark closures; `iter` does the timing.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    iters_run: u64,
}

impl Bencher {
    /// Times `routine`, running it once untimed as warm-up and then
    /// `sample_size` timed iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters_run += self.iterations;
    }
}

fn format_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Declares a group-runner function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from a list of group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_accumulates_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        // warm-up + 10 timed iterations
        assert_eq!(count, 11);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn id_forms_render() {
        assert_eq!(BenchmarkId::new("par", 8).to_string(), "par/8");
        assert_eq!(BenchmarkId::from_parameter("hashed").to_string(), "hashed");
    }
}
