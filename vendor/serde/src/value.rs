//! The JSON-shaped value tree at the center of the vendored serde stack.

use std::fmt;

/// A dynamically-typed JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (JSON number without fraction or exponent).
    Int(i64),
    /// An unsigned integer too large for `i64`, or any non-negative
    /// integer produced by serializing unsigned types.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Alias for [`Value::as_arr`] (serde_json spelling).
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        self.as_arr()
    }

    /// The value as an object (pair list), if it is one.
    pub fn as_obj(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// True when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True when the value is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::Str(_))
    }

    /// True when the value is any JSON number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::UInt(_) | Value::Float(_))
    }

    /// True when the value is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Arr(_))
    }

    /// True when the value is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Obj(_))
    }

    /// Member lookup on objects: the first pair with this key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()
            .and_then(|o| o.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// Element lookup on arrays.
    pub fn get_index(&self, ix: usize) -> Option<&Value> {
        self.as_arr().and_then(|a| a.get(ix))
    }

    /// One-word description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, ix: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.get_index(ix).unwrap_or(&NULL)
    }
}

// Literal comparisons (`v["ph"] == "X"`, `v["pid"] == 1`), mirroring
// serde_json's PartialEq impls against primitive types.
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                if *other >= 0 {
                    self.as_u64() == Some(*other as u64)
                } else {
                    self.as_i64() == Some(*other as i64)
                }
            }
        }
    )*};
}
macro_rules! eq_uint {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_u64() == Some(*other as u64)
            }
        }
    )*};
}
eq_int!(i8, i16, i32, i64, isize);
eq_uint!(u8, u16, u32, u64, usize);

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_json(self, f)
    }
}

/// Writes `v` as compact JSON.
fn write_json(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Int(i) => write!(f, "{i}"),
        Value::UInt(u) => write!(f, "{u}"),
        Value::Float(x) => {
            if x.is_finite() {
                // Debug gives the shortest representation that reparses
                // as the same f64 and always keeps a `.0` or exponent.
                write!(f, "{x:?}")
            } else {
                f.write_str("null")
            }
        }
        Value::Str(s) => write_json_string(s, f),
        Value::Arr(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_json(item, f)?;
            }
            f.write_str("]")
        }
        Value::Obj(pairs) => {
            f.write_str("{")?;
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_json_string(k, f)?;
                f.write_str(":")?;
                write_json(val, f)?;
            }
            f.write_str("}")
        }
    }
}

/// Writes a JSON string literal with full escaping.
pub(crate) fn write_json_string(s: &str, f: &mut impl fmt::Write) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}
