//! Deserialization error type and helpers shared by the derive macro.

use crate::value::Value;
use std::fmt;

/// A deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a literal message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X, found Y" with the found value's type name.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error {
            msg: format!("expected {what}, found {}", found.kind()),
        }
    }

    /// A missing object field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error {
            msg: format!("missing field `{field}` while deserializing {ty}"),
        }
    }

    /// An unknown enum variant.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error {
            msg: format!("unknown variant `{variant}` of {ty}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a required field of an object value (used by derived impls).
pub fn field<'v>(v: &'v Value, ty: &str, name: &str) -> Result<&'v Value, Error> {
    v.get(name).ok_or_else(|| Error::missing_field(ty, name))
}
