//! Workspace-local stand-in for the subset of `serde` this repository
//! uses.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a hand-rolled serialization framework with the same spelling
//! at every call site: `use serde::{Serialize, Deserialize}` imports both
//! the traits and the derive macros, and `serde_json::{to_string,
//! from_str}` round-trip any deriving type. The data model is a
//! JSON-shaped [`value::Value`] tree rather than upstream's
//! visitor-based zero-copy design — simpler, std-only, and exactly
//! sufficient for the repo's needs (model snapshots, trace exports,
//! metrics). Maps serialize as arrays of `[key, value]` pairs so
//! non-string keys (element ids) survive the trip.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod value;

use value::Value;

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the value tree.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

// ---------------------------------------------------------------------
// primitive impls

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| de::Error::expected("unsigned integer", v))?;
                <$t>::try_from(raw).map_err(|_| de::Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| de::Error::expected("integer", v))?;
                <$t>::try_from(raw).map_err(|_| de::Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64().ok_or_else(|| de::Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_bool().ok_or_else(|| de::Error::expected("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| de::Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v.as_str().ok_or_else(|| de::Error::expected("char", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::msg("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(de::Error::expected("null", other)),
        }
    }
}

// ---------------------------------------------------------------------
// composite impls

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v.as_arr().ok_or_else(|| de::Error::expected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $ix:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$ix.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let arr = v.as_arr().ok_or_else(|| de::Error::expected("tuple array", v))?;
                let expected = [$($ix),+].len();
                if arr.len() != expected {
                    return Err(de::Error::msg("tuple arity mismatch"));
                }
                Ok(($($t::from_value(&arr[$ix])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v
            .as_arr()
            .ok_or_else(|| de::Error::expected("map as pair array", v))?;
        arr.iter()
            .map(|pair| {
                let kv = pair
                    .as_arr()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| de::Error::msg("map entry must be a [key, value] pair"))?;
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v
            .as_arr()
            .ok_or_else(|| de::Error::expected("map as pair array", v))?;
        arr.iter()
            .map(|pair| {
                let kv = pair
                    .as_arr()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| de::Error::msg("map entry must be a [key, value] pair"))?;
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v.as_arr().ok_or_else(|| de::Error::expected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

// Value is its own (de)serialization fixed point, so generic code can
// round-trip raw trees (e.g. `from_str::<Value>` on exported traces).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}
