//! End-to-end integration: specification text → model → synthesis →
//! exact verification → run-time execution, across all the workspace
//! crates.

use rtcg::core::heuristic::synthesize;
use rtcg::core::mok_example;
use rtcg::lang::parse_model;
use rtcg::process::naive_synthesis;
use rtcg::sim::invocation::InvocationPattern;
use rtcg::sim::table::run_table_executor;
use rtcg::synth::latency::latency_synthesize;
use rtcg::synth::straightline::synthesize_programs;

const SPEC: &str = r#"
    element fX wcet 1;
    element fY wcet 1;
    element fZ wcet 1;
    element fS wcet 2;
    element fK wcet 1;
    channel fX -> fS; channel fY -> fS; channel fZ -> fS;
    channel fS -> fK; channel fK -> fS;
    periodic xchain period 20 deadline 20 { op x: fX; op s: fS; op k: fK; x -> s -> k; }
    periodic ychain period 40 deadline 40 { op y: fY; op s: fS; op k: fK; y -> s -> k; }
    asynchronous zchain period 60 deadline 15 { op z: fZ; op s: fS; z -> s; }
"#;

fn adversarial_patterns(m: &rtcg::core::Model) -> Vec<InvocationPattern> {
    m.constraints()
        .iter()
        .map(|c| {
            if c.is_periodic() {
                InvocationPattern::Periodic {
                    period: c.period,
                    offset: 0,
                }
            } else {
                InvocationPattern::SporadicMaxRate {
                    separation: c.period,
                    offset: 11,
                }
            }
        })
        .collect()
}

#[test]
fn spec_text_to_running_system() {
    let model = parse_model(SPEC).expect("spec parses");
    let outcome = synthesize(&model).expect("synthesizable");
    let m = outcome.model();
    let report = outcome.schedule.feasibility(m).expect("analyzable");
    assert!(report.is_feasible(), "{report}");
    let run = run_table_executor(m, &outcome.schedule, &adversarial_patterns(m), 12_000)
        .expect("executes");
    assert!(run.all_met(), "{:?}", run.outcomes);
    assert!(run.trace.is_pipeline_ordered());
}

#[test]
fn spec_equals_builtin_example() {
    let from_text = parse_model(SPEC).unwrap();
    let (builtin, _) = mok_example::default_model();
    assert_eq!(
        from_text.comm().element_count(),
        builtin.comm().element_count()
    );
    assert_eq!(from_text.constraints().len(), builtin.constraints().len());
    assert!((from_text.deadline_density() - builtin.deadline_density()).abs() < 1e-12);
    assert_eq!(from_text.hyperperiod(), builtin.hyperperiod());
}

#[test]
fn observed_responses_never_exceed_analyzed_latency() {
    // the latency bound is an upper bound on every observed response
    let (model, _) = mok_example::default_model();
    let outcome = synthesize(&model).unwrap();
    let m = outcome.model();
    let report = outcome.schedule.feasibility(m).unwrap();
    let run = run_table_executor(m, &outcome.schedule, &adversarial_patterns(m), 20_000).unwrap();
    for (check, observed) in report.checks.iter().zip(&run.outcomes) {
        let bound = check.latency.expect("finite");
        if let Some(worst) = observed.worst_response {
            assert!(
                worst <= bound,
                "{}: observed {} > analyzed {}",
                check.name,
                worst,
                bound
            );
        }
    }
}

#[test]
fn naive_process_mapping_preserves_constraint_attributes() {
    let (model, _) = mok_example::default_model();
    let naive = naive_synthesis(&model).unwrap();
    for (proc_, c) in naive.set.processes().iter().zip(model.constraints()) {
        assert_eq!(proc_.name, c.name);
        assert_eq!(proc_.period, c.period);
        assert_eq!(proc_.deadline, c.deadline);
        assert_eq!(proc_.wcet, c.computation_time(model.comm()).unwrap());
    }
    // generated programs compile to the same computation times
    let (programs, _) = synthesize_programs(&model).unwrap();
    for (p, c) in programs.iter().zip(model.constraints()) {
        assert_eq!(
            p.computation_time(model.comm()).unwrap(),
            c.computation_time(model.comm()).unwrap()
        );
        assert!(p.monitors_well_bracketed());
    }
}

#[test]
fn merged_latency_scheduling_on_equal_period_example() {
    // the paper's p_x = p_y variant: merged synthesis shares fS and fK
    let params = mok_example::Params {
        p_y: 20,
        d_y: 20,
        ..Default::default()
    };
    let (model, _) = mok_example::build(params).unwrap();
    let merged = latency_synthesize(&model).expect("merged synthesis");
    assert_eq!(merged.groups_merged, 1);
    let report = merged.schedule.feasibility(&merged.analysis_model).unwrap();
    assert!(report.is_feasible(), "{report}");

    // and it runs: adversarial invocations against the merged table
    let run = run_table_executor(
        &merged.analysis_model,
        &merged.schedule,
        &adversarial_patterns(&merged.analysis_model),
        12_000,
    )
    .unwrap();
    assert!(run.all_met(), "{:?}", run.outcomes);

    // merged table does strictly less work than the unmerged one
    let plain = synthesize(&model).unwrap();
    let merged_busy = merged
        .schedule
        .busy_fraction(merged.analysis_model.comm())
        .unwrap();
    let plain_busy = plain.schedule.busy_fraction(plain.model().comm()).unwrap();
    assert!(
        merged_busy < plain_busy,
        "merged {merged_busy} vs plain {plain_busy}"
    );
}

#[test]
fn parameter_sweep_of_the_example_stays_feasible() {
    // tighten d_z progressively; synthesis must hold while the chain
    // still fits and report infeasible-or-fail gracefully when it can't
    for d_z in [15u64, 10, 8, 6] {
        let params = mok_example::Params {
            d_z,
            ..Default::default()
        };
        let (model, _) = mok_example::build(params).unwrap();
        match synthesize(&model) {
            Ok(out) => {
                let report = out.schedule.feasibility(out.model()).unwrap();
                assert!(report.is_feasible(), "d_z={d_z}\n{report}");
            }
            Err(e) => {
                // acceptable only for genuinely tight deadlines
                assert!(d_z <= 6, "synthesis failed at generous d_z={d_z}: {e}");
            }
        }
    }
}

#[test]
fn infeasible_specs_are_rejected_not_mis_scheduled() {
    // density > 1 — no schedule can exist; the pipeline must say so
    let spec = r#"
        element a wcet 2; element b wcet 2;
        asynchronous ca period 3 deadline 3 { op o: a; }
        asynchronous cb period 3 deadline 3 { op o: b; }
    "#;
    let model = parse_model(spec).unwrap();
    assert!(synthesize(&model).is_err());
}

#[test]
fn dot_and_codegen_outputs_are_consistent() {
    let (model, _) = mok_example::default_model();
    let dot = model.comm().to_dot("m");
    for (_, e) in model.comm().elements() {
        assert!(dot.contains(&e.name), "DOT missing {}", e.name);
    }
    let outcome = synthesize(&model).unwrap();
    let table =
        rtcg::synth::codegen::render_table_scheduler(outcome.model().comm(), &outcome.schedule)
            .unwrap();
    assert!(table.contains(&format!("[Entry; {}]", outcome.schedule.len())));
}
