//! Property-based tests on the core semantic invariants.

use proptest::prelude::*;
use rtcg::core::heuristic::pipeline::pipeline_model;
use rtcg::core::schedule::{Action, StaticSchedule};
use rtcg::prelude::*;

/// Strategy: specs for 1-3 single-op asynchronous constraints, each
/// (weight 1-2, deadline w..=6).
fn constraint_specs() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((1u64..=2).prop_flat_map(|w| (Just(w), w..=6u64)), 1..=3)
}

fn single_op_model(specs: &[(u64, u64)]) -> Model {
    let mut b = ModelBuilder::new();
    for (i, &(w, d)) in specs.iter().enumerate() {
        let e = b.element(&format!("e{i}"), w);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous(&format!("c{i}"), tg, d, d);
    }
    b.build().unwrap()
}

/// Strategy: a random schedule over the model's elements (symbol 0 =
/// idle, k = element k-1), 1..=6 actions.
fn schedule_symbols(n_elems: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..=n_elems, 1..=6)
}

fn to_schedule(model: &Model, symbols: &[usize]) -> StaticSchedule {
    let ids: Vec<ElementId> = model.comm().element_ids().collect();
    StaticSchedule::new(
        symbols
            .iter()
            .map(|&s| {
                if s == 0 {
                    Action::Idle
                } else {
                    Action::Run(ids[(s - 1) % ids.len()])
                }
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Latency is invariant under rotation of the schedule string —
    /// round-robin repetition erases the starting point.
    #[test]
    fn latency_invariant_under_rotation(
        specs in constraint_specs(),
        symbols in schedule_symbols(3),
        rot in 0usize..6,
    ) {
        let model = single_op_model(&specs);
        let s1 = to_schedule(&model, &symbols);
        let mut rotated = symbols.clone();
        rotated.rotate_left(rot % symbols.len());
        let s2 = to_schedule(&model, &rotated);
        for c in model.constraints() {
            let l1 = s1.latency(model.comm(), &c.task).unwrap();
            let l2 = s2.latency(model.comm(), &c.task).unwrap();
            prop_assert_eq!(l1, l2, "rotation changed latency");
        }
    }

    /// Doubling the schedule string (S -> SS) never changes the
    /// generated infinite trace, hence never the latency.
    #[test]
    fn latency_invariant_under_doubling(
        specs in constraint_specs(),
        symbols in schedule_symbols(3),
    ) {
        let model = single_op_model(&specs);
        let s1 = to_schedule(&model, &symbols);
        let doubled: Vec<usize> =
            symbols.iter().chain(symbols.iter()).copied().collect();
        let s2 = to_schedule(&model, &doubled);
        for c in model.constraints() {
            prop_assert_eq!(
                s1.latency(model.comm(), &c.task).unwrap(),
                s2.latency(model.comm(), &c.task).unwrap()
            );
        }
    }

    /// Inserting an idle action never decreases any latency.
    #[test]
    fn idle_insertion_is_monotone(
        specs in constraint_specs(),
        symbols in schedule_symbols(3),
        pos in 0usize..7,
    ) {
        let model = single_op_model(&specs);
        let s1 = to_schedule(&model, &symbols);
        let mut padded = symbols.clone();
        padded.insert(pos % (symbols.len() + 1), 0);
        let s2 = to_schedule(&model, &padded);
        for c in model.constraints() {
            let l1 = s1.latency(model.comm(), &c.task).unwrap();
            let l2 = s2.latency(model.comm(), &c.task).unwrap();
            match (l1, l2) {
                (None, _) => {} // infinite stays infinite or stays none
                (Some(a), Some(b)) => prop_assert!(b >= a,
                    "padding reduced latency {a} -> {b}"),
                (Some(_), None) => prop_assert!(false, "padding made latency infinite"),
            }
        }
    }

    /// The feasibility verdict equals "every latency ≤ its deadline".
    #[test]
    fn feasibility_is_latency_vs_deadline(
        specs in constraint_specs(),
        symbols in schedule_symbols(3),
    ) {
        let model = single_op_model(&specs);
        let s = to_schedule(&model, &symbols);
        let report = s.feasibility(&model).unwrap();
        let manual = model.constraints().iter().all(|c| {
            matches!(
                s.latency(model.comm(), &c.task).unwrap(),
                Some(l) if l <= c.deadline
            )
        });
        prop_assert_eq!(report.is_feasible(), manual);
    }

    /// Pipelining preserves computation times, densities and constraint
    /// attributes.
    #[test]
    fn pipelining_preserves_model_quantities(specs in constraint_specs()) {
        let model = single_op_model(&specs);
        let p = pipeline_model(&model).unwrap();
        prop_assert_eq!(model.constraints().len(), p.model.constraints().len());
        for (c0, c1) in model.constraints().iter().zip(p.model.constraints()) {
            prop_assert_eq!(
                c0.task.computation_time(model.comm()).unwrap(),
                c1.task.computation_time(p.model.comm()).unwrap()
            );
            prop_assert_eq!(c0.period, c1.period);
            prop_assert_eq!(c0.deadline, c1.deadline);
        }
        prop_assert!((model.deadline_density() - p.model.deadline_density()).abs() < 1e-12);
        prop_assert!(p.all_unit_weight());
    }

    /// Heuristic synthesis output always verifies, and within the
    /// Theorem-3 region it always succeeds.
    #[test]
    fn synthesis_verifies_and_theorem3_holds(specs in constraint_specs()) {
        let model = single_op_model(&specs);
        let in_region = rtcg::core::heuristic::theorem3_applies(&model).unwrap();
        match rtcg::core::heuristic::synthesize(&model) {
            Ok(out) => {
                let report = out.schedule.feasibility(out.model()).unwrap();
                prop_assert!(report.is_feasible());
            }
            Err(_) => {
                prop_assert!(!in_region, "Theorem-3 instance failed: {specs:?}");
            }
        }
    }

    /// Trace round-trip: expanding a schedule and re-reading instances
    /// yields exactly the schedule's run actions, pipeline-ordered.
    #[test]
    fn expansion_round_trips_instances(
        specs in constraint_specs(),
        symbols in schedule_symbols(3),
        reps in 1usize..4,
    ) {
        let model = single_op_model(&specs);
        let s = to_schedule(&model, &symbols);
        let trace = s.expand(model.comm(), reps).unwrap();
        prop_assert!(trace.is_pipeline_ordered());
        let runs_per_rep = s
            .actions()
            .iter()
            .filter(|a| matches!(a, Action::Run(_)))
            .count();
        prop_assert_eq!(trace.instances().len(), runs_per_rep * reps);
        prop_assert_eq!(trace.len(), s.duration(model.comm()).unwrap() * reps as u64);
    }

    /// The sharing-aware density bound is sound: strictly above 1 the
    /// complete game decider must agree there is no schedule.
    #[test]
    fn density_bound_soundness(specs in constraint_specs()) {
        let model = single_op_model(&specs);
        if rtcg::core::feasibility::quick_infeasible(&model).unwrap().is_some() {
            let g = rtcg::core::feasibility::game::solve_game(
                &model,
                rtcg::core::feasibility::game::GameConfig { state_budget: 500_000, frontier: Default::default() },
            )
            .unwrap();
            prop_assert!(
                !matches!(g, rtcg::core::feasibility::game::GameOutcome::Feasible { .. }),
                "bound rejected a feasible instance: {specs:?}"
            );
        }
    }
}
