//! Cross-validation between independent implementations of the same
//! question: the simulation game vs the exact string search vs the
//! heuristic synthesizer, and schedulability analysis vs the dynamic
//! simulator.

use rtcg::core::feasibility::{exact, game, quick_infeasible};
use rtcg::core::heuristic::{synthesize_with, SynthesisConfig};
use rtcg::core::model::CommGraph;
use rtcg::prelude::*;
use rtcg::process::{edf_schedulable, rm_schedulable_exact, utilization};
use rtcg::sim::dynamic::{simulate_processes, Policy, Preemption, ProcessSim};

fn single_op_model(specs: &[(u64, u64)]) -> Model {
    let mut b = ModelBuilder::new();
    for (i, &(w, d)) in specs.iter().enumerate() {
        let e = b.element(&format!("e{i}"), w);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous(&format!("c{i}"), tg, d, d);
    }
    b.build().unwrap()
}

/// Exhaustive family of tiny instances for decider agreement.
fn tiny_instances() -> Vec<Vec<(u64, u64)>> {
    let mut cases = Vec::new();
    for w0 in 1..=2u64 {
        for d0 in w0..=4u64 {
            cases.push(vec![(w0, d0)]);
            for d1 in 1..=4u64 {
                cases.push(vec![(w0, d0), (1, d1)]);
            }
        }
    }
    cases
}

#[test]
fn game_and_search_agree_on_tiny_instances() {
    for specs in tiny_instances() {
        let m = single_op_model(&specs);
        let g = game::solve_game(&m, game::GameConfig::default()).unwrap();
        let s = exact::find_feasible(
            &m,
            exact::SearchConfig {
                max_len: 5,
                node_budget: 20_000_000,
            },
        )
        .unwrap();
        match (&g, &s.schedule) {
            (game::GameOutcome::Feasible { .. }, Some(_)) => {}
            (game::GameOutcome::Infeasible { .. }, None) => {
                assert!(s.exhausted_bound, "search must have exhausted: {specs:?}");
            }
            (g, sched) => panic!("disagreement on {specs:?}: {g:?} vs {sched:?}"),
        }
    }
}

#[test]
fn heuristic_success_implies_game_feasible() {
    // whenever the heuristic returns a schedule, the instance is
    // feasible; the complete decider must agree (on the pipelined model)
    for specs in tiny_instances() {
        let m = single_op_model(&specs);
        let cfg = SynthesisConfig {
            max_hyperperiod: 10_000,
            game_state_budget: 0, // pure constructive strategies
        };
        if let Ok(out) = synthesize_with(&m, cfg) {
            let report = out.schedule.feasibility(out.model()).unwrap();
            assert!(report.is_feasible());
            let g = game::solve_game(out.model(), game::GameConfig::default()).unwrap();
            assert!(
                matches!(g, game::GameOutcome::Feasible { .. }),
                "heuristic found a schedule the game denies: {specs:?}"
            );
        }
    }
}

#[test]
fn quick_bounds_never_reject_feasible_instances() {
    for specs in tiny_instances() {
        let m = single_op_model(&specs);
        if quick_infeasible(&m).unwrap().is_some() {
            let g = game::solve_game(&m, game::GameConfig::default()).unwrap();
            assert!(
                matches!(g, game::GameOutcome::Infeasible { .. }),
                "bounds rejected a feasible instance: {specs:?}"
            );
        }
    }
}

#[test]
fn game_schedules_always_verify() {
    for specs in tiny_instances() {
        let m = single_op_model(&specs);
        let g = game::solve_game(&m, game::GameConfig::default()).unwrap();
        if let Some(s) = g.schedule() {
            let report = s.feasibility(&m).unwrap();
            assert!(report.is_feasible(), "lasso schedule failed: {specs:?}");
        }
    }
}

fn sim_inputs(
    set: &rtcg::process::ProcessSet,
    horizon: u64,
) -> (CommGraph, Vec<Vec<rtcg::core::ElementId>>, Vec<Vec<u64>>) {
    let mut comm = CommGraph::new();
    let mut bodies = Vec::new();
    let mut arrivals = Vec::new();
    for (i, p) in set.processes().iter().enumerate() {
        let e = comm.add_element(format!("e{i}"), p.wcet).unwrap();
        bodies.push(vec![e]);
        arrivals.push(
            (0..)
                .map(|k| k * p.period)
                .take_while(|&t| t < horizon)
                .collect(),
        );
    }
    (comm, bodies, arrivals)
}

#[test]
fn edf_analysis_matches_edf_simulation() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xCAFE);
    let mut tested = 0;
    for _ in 0..80 {
        let n = rng.gen_range(2..5usize);
        let mut set = rtcg::process::ProcessSet::new();
        for i in 0..n {
            let period = [4u64, 6, 8, 12][rng.gen_range(0..4)];
            let wcet = rng.gen_range(1..=period.min(5));
            set.add(rtcg::process::Process {
                name: format!("p{i}"),
                wcet,
                period,
                deadline: period,
                kind: rtcg::process::ProcessKind::Periodic,
            })
            .unwrap();
        }
        if utilization(&set) > 1.5 {
            continue;
        }
        tested += 1;
        let predicted = edf_schedulable(&set, 1_000_000).unwrap();
        let horizon = set.hyperperiod() * 3;
        let (comm, bodies, arrivals) = sim_inputs(&set, horizon);
        let input = ProcessSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
        };
        let out = simulate_processes(&input, Policy::Edf, Preemption::Tick, horizon).unwrap();
        assert_eq!(
            out.no_misses(),
            predicted,
            "EDF analysis vs sim disagree: {:?} (U={})",
            set.processes(),
            utilization(&set)
        );
    }
    assert!(tested >= 40, "too few testable sets generated");
}

#[test]
fn rm_analysis_matches_rm_simulation() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xBEEF);
    for _ in 0..60 {
        let n = rng.gen_range(2..5usize);
        let mut set = rtcg::process::ProcessSet::new();
        for i in 0..n {
            let period = [4u64, 6, 8, 12][rng.gen_range(0..4)];
            let wcet = rng.gen_range(1..=period.min(4));
            set.add(rtcg::process::Process {
                name: format!("p{i}"),
                wcet,
                period,
                deadline: period,
                kind: rtcg::process::ProcessKind::Periodic,
            })
            .unwrap();
        }
        let predicted = rm_schedulable_exact(&set).unwrap();
        let horizon = set.hyperperiod() * 3;
        let (comm, bodies, arrivals) = sim_inputs(&set, horizon);
        let input = ProcessSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
        };
        let out = simulate_processes(&input, Policy::Rm, Preemption::Tick, horizon).unwrap();
        assert_eq!(
            out.no_misses(),
            predicted,
            "RM analysis vs sim disagree: {:?}",
            set.processes()
        );
    }
}

#[test]
fn hardness_witnesses_agree_with_game_on_tiny_encodings() {
    use rtcg::hardness::{encode_three_partition, ThreePartition};
    // the smallest well-formed instance (B = 9, items {3,3,3}) keeps the
    // game's history horizon at 20 ticks; both deciders must say feasible
    let inst = ThreePartition {
        items: vec![3, 3, 3],
        bound: 9,
    };
    assert!(inst.is_well_formed());
    let model = encode_three_partition(&inst).unwrap();
    let g = game::solve_game(
        &model,
        game::GameConfig {
            state_budget: 2_000_000,
            frontier: Default::default(),
        },
    )
    .unwrap();
    match g {
        game::GameOutcome::Feasible { ref schedule, .. } => {
            assert!(schedule.feasibility(&model).unwrap().is_feasible());
        }
        other => panic!("expected feasible, got {other:?}"),
    }
}
