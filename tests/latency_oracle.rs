//! Oracle test: `StaticSchedule::latency` against a brute-force
//! implementation of the paper's definition.
//!
//! Definition: `L` has latency `k` w.r.t. `(C, p, d)` iff the round-robin
//! trace contains an execution of `C` in every window of length `≥ k`.
//! The brute force below takes the definition literally: expand many
//! repetitions, and for each candidate `k` check every window start
//! within one period via `executed_within`. Agreement across randomized
//! models and schedules pins the production implementation (which uses
//! earliest-completion analysis and a tighter horizon bound) to the
//! definition.

use proptest::prelude::*;
use rtcg::core::schedule::{Action, StaticSchedule};
use rtcg::core::trace::Trace;
use rtcg::prelude::*;

fn single_op_model(specs: &[(u64, u64)]) -> Model {
    let mut b = ModelBuilder::new();
    for (i, &(w, d)) in specs.iter().enumerate() {
        let e = b.element(&format!("e{i}"), w);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous(&format!("c{i}"), tg, d, d);
    }
    b.build().unwrap()
}

/// Chain model: one constraint whose task graph is a chain over fresh
/// unit elements; stresses precedence in the window checker.
fn chain_model(len: usize, d: u64) -> Model {
    let mut b = ModelBuilder::new();
    let mut tb = TaskGraphBuilder::new();
    let mut prev = None;
    for k in 0..len {
        let e = b.element(&format!("e{k}"), 1);
        tb = tb.op(&format!("o{k}"), e);
        if let Some(p) = prev {
            b.channel(p, e);
            tb = tb.edge(&format!("o{}", k - 1), &format!("o{k}"));
        }
        prev = Some(e);
    }
    b.asynchronous("chain", tb.build().unwrap(), d, d);
    b.build().unwrap()
}

/// Brute-force latency: smallest k ≤ cap such that every window
/// [s, s+k] with s in one period contains an execution; None if none.
fn brute_force_latency(
    model: &Model,
    schedule: &StaticSchedule,
    task: &rtcg::core::TaskGraph,
    cap: u64,
) -> Option<u64> {
    let comm = model.comm();
    let period = schedule.duration(comm).unwrap();
    // expand generously: cap + period windows must be fully recorded
    let reps = ((cap + 2 * period) / period + 2) as usize;
    let trace: Trace = schedule.expand(comm, reps).unwrap();
    'k: for k in 0..=cap {
        for s in 0..period {
            if !trace.executed_within(task, comm, s, s + k).unwrap() {
                continue 'k;
            }
        }
        return Some(k);
    }
    None
}

fn to_schedule(model: &Model, symbols: &[usize]) -> StaticSchedule {
    let ids: Vec<ElementId> = model.comm().element_ids().collect();
    StaticSchedule::new(
        symbols
            .iter()
            .map(|&s| {
                if s == 0 {
                    Action::Idle
                } else {
                    Action::Run(ids[(s - 1) % ids.len()])
                }
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn latency_matches_brute_force_single_ops(
        specs in prop::collection::vec(
            (1u64..=2).prop_flat_map(|w| (Just(w), w..=5u64)), 1..=2),
        symbols in prop::collection::vec(0usize..=2, 1..=4),
    ) {
        let model = single_op_model(&specs);
        let schedule = to_schedule(&model, &symbols);
        let period = schedule.duration(model.comm()).unwrap();
        // cap large enough to cover any finite latency of these tiny
        // schedules: latency ≤ (ops+1)·2·period by the horizon argument
        let cap = 6 * period + 10;
        for c in model.constraints() {
            let fast = schedule.latency(model.comm(), &c.task).unwrap();
            let brute = brute_force_latency(&model, &schedule, &c.task, cap);
            prop_assert_eq!(fast, brute, "schedule {:?}", symbols);
        }
    }

    #[test]
    fn latency_matches_brute_force_chains(
        len in 2usize..=3,
        d in 4u64..=10,
        symbols in prop::collection::vec(0usize..=3, 1..=5),
    ) {
        let model = chain_model(len, d.max(len as u64));
        let schedule = to_schedule(&model, &symbols);
        let period = schedule.duration(model.comm()).unwrap();
        let cap = 2 * (len as u64 + 1) * period + 10;
        let c = &model.constraints()[0];
        let fast = schedule.latency(model.comm(), &c.task).unwrap();
        let brute = brute_force_latency(&model, &schedule, &c.task, cap);
        prop_assert_eq!(fast, brute, "len {} schedule {:?}", len, symbols);
    }
}

#[test]
fn latency_oracle_on_known_cases() {
    // hand-checked values double-covering the proptest
    let model = single_op_model(&[(1, 4)]);
    let e = model.comm().element_ids().next().unwrap();
    // [e φ φ]: worst window starts at s=1, next e spans [3,4) → latency 3
    let s = StaticSchedule::new(vec![Action::Run(e), Action::Idle, Action::Idle]);
    let c = &model.constraints()[0];
    assert_eq!(s.latency(model.comm(), &c.task).unwrap(), Some(3));
    assert_eq!(brute_force_latency(&model, &s, &c.task, 40), Some(3));

    let model = chain_model(2, 8);
    let ids: Vec<_> = model.comm().element_ids().collect();
    // reversed order forces the chain to straddle repetitions
    let s = StaticSchedule::new(vec![Action::Run(ids[1]), Action::Run(ids[0])]);
    let c = &model.constraints()[0];
    let fast = s.latency(model.comm(), &c.task).unwrap();
    assert_eq!(fast, brute_force_latency(&model, &s, &c.task, 60));
    assert_eq!(fast, Some(3));
}
