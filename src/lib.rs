//! # rtcg — graph-based computation model for hard-real-time systems
//!
//! Façade crate re-exporting the whole workspace: a reproduction of
//! **A. K. Mok, "A Graph-Based Computation Model for Real-Time Systems",
//! ICPP 1985**. See the README for the architecture and `DESIGN.md` for
//! the paper-to-module map.
//!
//! * [`core`] — the model `M = (G, T)`, execution-trace semantics, static
//!   schedules, exact latency analysis, feasibility deciders (simulation
//!   game, bounded exact search) and Theorem-3 heuristic synthesis.
//! * [`graph`] — the directed-graph substrate.
//! * [`process`] — the process-based baseline of \[MOK 83\] (RM/DM/EDF/LLF).
//! * [`synth`] — program synthesis: straight-line code, monitors,
//!   software pipelining, shared-operation merging.
//! * [`sim`] — discrete-time simulator, invocation generators, run-time
//!   schedulers (table-driven and dynamic).
//! * [`lang`] — a CONSORT-flavoured requirements-specification language.
//! * [`hardness`] — NP-hardness experiment kit (Theorem 2 reductions).
//! * [`multi`] — the paper's deferred multiprocessor decomposition:
//!   partitioning, deadline slicing, per-processor synthesis and the
//!   "similar-looking" communication-network scheduling problem.

#![forbid(unsafe_code)]

pub use rtcg_core as core;
pub use rtcg_engine as engine;
pub use rtcg_graph as graph;
pub use rtcg_hardness as hardness;
pub use rtcg_lang as lang;
pub use rtcg_multi as multi;
pub use rtcg_process as process;
pub use rtcg_sim as sim;
pub use rtcg_synth as synth;

/// Prelude: the types most applications need, plus the unified
/// analysis facade.
pub mod prelude {
    pub use rtcg_core::prelude::*;
    pub use rtcg_engine::{
        analyze_once, AnalysisMode, AnalysisReport, AnalysisRequest, Engine, EngineError,
        EngineStats, Verdict,
    };
}
