#!/usr/bin/env bash
# Regenerates the checked-in perf trajectory files the same way CI does.
#
#   scripts/bench.sh            full run (regenerates BENCH_leafcheck.json
#                               and BENCH_batch.json)
#   scripts/bench.sh --quick    CI smoke mode (fewer candidates/iterations)
#
# The leafcheck bench asserts the >=3x compiled-vs-cached speedup gate
# and verdict bit-identity on every candidate; the batch bench asserts
# the >=3x cross-request cache-reuse gate at bit-identical verdicts. A
# regression in either fails the script.

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--quick" ]]; then
    export RTCG_BENCH_QUICK=1
fi

cargo bench -p rtcg-bench --bench leafcheck
cargo bench -p rtcg-bench --bench batch
