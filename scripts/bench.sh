#!/usr/bin/env bash
# Regenerates the checked-in perf trajectory files the same way CI does.
#
#   scripts/bench.sh            full run (regenerates BENCH_leafcheck.json,
#                               BENCH_batch.json, BENCH_bitparallel.json,
#                               BENCH_serve.json, BENCH_corpus.json and
#                               BENCH_multilane.json)
#   scripts/bench.sh --quick    CI smoke mode (fewer candidates/iterations)
#
# The leafcheck bench asserts the >=3x compiled-vs-cached speedup gate
# and verdict bit-identity on every candidate; the batch bench asserts
# the >=3x cross-request cache-reuse gate at bit-identical verdicts; the
# bitparallel bench asserts the >=10x aggregate check_batch-vs-scalar
# speedup gate over the leafcheck scenarios (with a >=3x per-scenario
# floor), again at bit-identical verdicts; the serve bench asserts the
# >=5x resident-session leaf-eval reuse gate over cold per-edit analysis
# on a chain-family edit stream, with every resident report bit-identical
# to its cold counterpart; the corpus bench generates a 1000-spec fleet
# (150 in --quick mode), snapshots the cold engine's memo to disk, and
# asserts the >=3x warm-replay throughput gate with every warm verdict
# bit-identical and zero warm leaf evals; the multilane bench asserts
# the >=3x aggregate candidate-reduction gate of the canonical m=2 lane
# search over the naive per-slot product enumerator, at bit-identical
# verdicts. A regression in any fails the script.

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--quick" ]]; then
    export RTCG_BENCH_QUICK=1
fi

cargo bench -p rtcg-bench --bench leafcheck
cargo bench -p rtcg-bench --bench batch
cargo bench -p rtcg-bench --bench bitparallel
cargo bench -p rtcg-bench --bench serve
cargo bench -p rtcg-bench --bench corpus
cargo bench -p rtcg-bench --bench multilane
