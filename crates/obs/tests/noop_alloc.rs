//! The uninstalled ("no-op") hot path must not allocate.
//!
//! A counting global allocator wraps the system one; with no recorder
//! installed, driving every macro through its fast path must leave the
//! allocation counter untouched. This test binary must never install a
//! recorder, so it lives alone in its own integration-test crate —
//! don't add recorder-installing tests here.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn uninstalled_macros_do_not_allocate() {
    assert!(rtcg_obs::recorder().is_none(), "test requires no recorder");
    // warm anything lazily initialized (the epoch Instant) outside the
    // measured window
    let _ = rtcg_obs::epoch();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        rtcg_obs::counter!("alloc.test.counter");
        rtcg_obs::counter!("alloc.test.counter", i & 3);
        rtcg_obs::gauge!("alloc.test.gauge", i as i64);
        rtcg_obs::histogram!("alloc.test.hist", i);
        rtcg_obs::event!("alloc.test.event", "test", i);
        let _span = rtcg_obs::span!("alloc.test.span", "test");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "no-op instrumentation path allocated {} time(s)",
        after - before
    );
}

#[test]
fn uninstalled_span_records_no_time() {
    // Span with no recorder holds no Instant: dropping it is free and
    // must not allocate either
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..1000 {
        let s = rtcg_obs::Span::begin("alloc.test.direct", "test");
        drop(s);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0);
}
