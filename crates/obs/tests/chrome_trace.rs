//! The Chrome `trace_event` exporter must produce JSON that a strict
//! parser accepts — validated here with serde_json (dev-dependency
//! only; the obs crate itself stays dependency-free).
//!
//! Installing a recorder is process-global and one-way, so every test
//! in this binary shares the single installed `MemoryRecorder`.

use rtcg_obs::MemoryRecorder;
use std::sync::OnceLock;

fn recorder() -> &'static MemoryRecorder {
    static REC: OnceLock<&'static MemoryRecorder> = OnceLock::new();
    REC.get_or_init(MemoryRecorder::install)
}

fn populate() -> &'static MemoryRecorder {
    let rec = recorder();
    rec.reset();
    {
        let _outer = rtcg_obs::span!("outer \"quoted\" name", "search");
        let _inner = rtcg_obs::span!("inner", "search");
        rtcg_obs::counter!("trace.counter", 3);
        rtcg_obs::gauge!("trace.gauge", -7);
        rtcg_obs::histogram!("trace.hist", 42);
        rtcg_obs::event!("trace.event\\with\\backslashes", "sim");
        rtcg_obs::event!("trace.plain_event", "sim", 99);
    }
    rec
}

#[test]
fn chrome_trace_parses_with_serde_json() {
    let rec = populate();
    let json = rec.chrome_trace_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(v["displayTimeUnit"], "ms");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    // 2 spans (ph:X) + 2 instant events (ph:i)
    assert_eq!(events.iter().filter(|e| e["ph"] == "X").count(), 2);
    assert_eq!(events.iter().filter(|e| e["ph"] == "i").count(), 2);
    for e in events {
        assert!(e["name"].is_string());
        assert!(e["cat"].is_string());
        assert!(e["ts"].is_number());
        assert_eq!(e["pid"], 1);
        assert_eq!(e["tid"], 1);
    }
    // escaping survived the round trip
    assert!(events.iter().any(|e| e["name"] == "outer \"quoted\" name"));
    assert!(events
        .iter()
        .any(|e| e["name"] == "trace.event\\with\\backslashes"));
}

#[test]
fn span_durations_are_microseconds_and_ordered() {
    let rec = populate();
    let json = rec.chrome_trace_json();
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    let spans: Vec<&serde_json::Value> = v["traceEvents"]
        .as_array()
        .unwrap()
        .iter()
        .filter(|e| e["ph"] == "X")
        .collect();
    for s in &spans {
        assert!(s["dur"].as_u64().unwrap() >= 1, "dur floored to 1µs");
    }
    // the inner span completes (and is recorded) before the outer one
    let ix = |name: &str| {
        spans
            .iter()
            .position(|s| s["name"].as_str().unwrap().contains(name))
            .unwrap()
    };
    assert!(ix("inner") < ix("outer"));
}

#[test]
fn metrics_jsonl_lines_parse_individually() {
    let rec = populate();
    let jsonl = rec.metrics_jsonl();
    let mut types = std::collections::BTreeSet::new();
    for line in jsonl.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("each line valid");
        types.insert(v["type"].as_str().expect("type tag").to_string());
        assert!(v["name"].is_string());
    }
    for t in ["counter", "gauge", "histogram", "span", "event"] {
        assert!(types.contains(t), "missing {t} line in:\n{jsonl}");
    }
}
