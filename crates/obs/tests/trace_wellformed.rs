//! Well-formedness of the Chrome trace export over *random* span
//! trees: every parent id refers to an exported span, request ids and
//! flow arrows are consistent, and the hand-emitted JSON round-trips
//! through the vendored `serde_json` parser unchanged.
//!
//! Snapshots are built directly (no global recorder), so this binary
//! can run any number of cases without touching the process-wide
//! recorder slot.

use proptest::prelude::*;
use rtcg_obs::{FlowPhase, FlowRecord, MetricsSnapshot, SpanRecord};
use std::collections::BTreeSet;
use std::time::Duration;

const NAMES: [&str; 5] = [
    "engine.analyze",
    "feasibility.exact",
    "engine.batch",
    "sim.run",
    "synthesis.latency",
];
const CATS: [&str; 3] = ["engine", "search", "sim"];

/// Raw per-span draw: (entropy for parent/name, has_parent, request
/// tag 0=none, start µs, dur µs, tid).
type RawSpan = (usize, bool, u64, u64, u64, u32);

/// Turns raw draws into a *valid* span tree: ids are 1-based and
/// unique, parents always point at an earlier span.
fn build_snapshot(raw: &[RawSpan]) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for (i, &(entropy, has_parent, request, start, dur, tid)) in raw.iter().enumerate() {
        let parent = if has_parent && i > 0 {
            Some(((entropy % i) + 1) as u64)
        } else {
            None
        };
        snap.spans.push(SpanRecord {
            name: NAMES[entropy % NAMES.len()],
            cat: CATS[entropy % CATS.len()],
            start: Duration::from_micros(start),
            dur: Duration::from_micros(dur),
            id: (i + 1) as u64,
            parent,
            request: (request > 0).then_some(request),
            tid,
        });
    }
    // one produce/consume flow pair per distinct request id
    let requests: BTreeSet<u64> = snap.spans.iter().filter_map(|s| s.request).collect();
    for r in requests {
        snap.flows.push(FlowRecord {
            request: r,
            phase: FlowPhase::Produce,
            at: Duration::from_micros(r),
            tid: 1,
        });
        snap.flows.push(FlowRecord {
            request: r,
            phase: FlowPhase::Consume,
            at: Duration::from_micros(r + 1),
            tid: 2,
        });
    }
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chrome_trace_is_wellformed_over_random_span_trees(
        raw in prop::collection::vec(
            (0..1000usize, any::<bool>(), 0..4u64, 0..100_000u64, 1..50_000u64, 1..5u32),
            1..40usize,
        )
    ) {
        let snap = build_snapshot(&raw);
        let json = rtcg_obs::chrome_trace_json(&snap);

        // parses as strict JSON
        let v: serde_json::Value = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("invalid trace JSON: {e:?}\n{json}"));
        let events = v["traceEvents"].as_array().expect("traceEvents array");
        prop_assert_eq!(events.len(), snap.spans.len() + snap.flows.len());

        // every exported span id is unique; every parent_id resolves
        let mut ids = BTreeSet::new();
        for e in events.iter().filter(|e| e["ph"] == "X") {
            let id = e["args"]["span_id"].as_u64().expect("span_id present");
            prop_assert!(ids.insert(id), "duplicate span_id {}", id);
        }
        for e in events.iter().filter(|e| e["ph"] == "X") {
            if let Some(p) = e["args"]["parent_id"].as_u64() {
                prop_assert!(ids.contains(&p), "dangling parent_id {}", p);
            }
            if let Some(r) = e["args"]["request_id"].as_u64() {
                // the request must have a produce and a consume arrow
                let arrows = |ph: &str| {
                    events.iter().any(|f| f["ph"] == ph && f["id"].as_u64() == Some(r))
                };
                prop_assert!(arrows("s"), "request {} missing produce arrow", r);
                prop_assert!(arrows("f"), "request {} missing consume arrow", r);
            }
        }

        // flow arrows come in matched produce/consume pairs
        let starts = events.iter().filter(|e| e["ph"] == "s").count();
        let finishes = events.iter().filter(|e| e["ph"] == "f").count();
        prop_assert_eq!(starts, finishes);

        // round-trip: parse → re-serialize → parse is a fixed point
        let again: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        prop_assert_eq!(v, again);

        // the JSONL export of the same snapshot is line-wise valid JSON
        for line in rtcg_obs::metrics_jsonl(&snap).lines() {
            let parsed: Result<serde_json::Value, _> = serde_json::from_str(line);
            prop_assert!(parsed.is_ok(), "bad jsonl line: {}", line);
        }
    }
}
