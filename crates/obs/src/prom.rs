//! Prometheus text exposition (version 0.0.4) for metric snapshots,
//! plus a strict validator used by tests and the CI smoke job.
//!
//! Mapping:
//! - counters → `# TYPE rtcg_<name> counter` with one sample;
//! - gauges → `gauge` samples, except the `engine.shard.NN.<suffix>`
//!   family which is rewritten into one metric per suffix with a
//!   `shard="NN"` label (`rtcg_engine_shard_hits{shard="03"} 7`) so a
//!   scraper can aggregate/facet by shard instead of by metric name;
//! - histograms → `summary` with `quantile="0.5"/"0.9"/"0.99"`
//!   samples plus `_sum`, `_count`, and a companion `_max` gauge.
//!
//! Metric names are `rtcg_` + the dotted obs name with every
//! non-`[a-zA-Z0-9_:]` byte replaced by `_`.

use crate::memory::MetricsSnapshot;
use std::fmt::Write as _;

/// Prefix applied to every exposed metric name.
const PREFIX: &str = "rtcg_";

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(PREFIX.len() + name.len());
    out.push_str(PREFIX);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Splits `engine.shard.NN.suffix` into `(suffix, "NN")`.
fn shard_family(name: &str) -> Option<(&str, &str)> {
    let rest = name.strip_prefix("engine.shard.")?;
    let (shard, suffix) = rest.split_once('.')?;
    if shard.len() == 2 && shard.bytes().all(|b| b.is_ascii_digit()) && !suffix.is_empty() {
        Some((suffix, shard))
    } else {
        None
    }
}

/// Renders a snapshot in Prometheus text exposition format. Output
/// always ends with a newline (required by the format) and passes
/// [`validate_prometheus_text`].
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }

    // Gauges: pull the per-shard family out into labelled metrics,
    // grouped so each suffix gets exactly one TYPE line.
    let mut shard_rows: Vec<(&str, &str, i64)> = Vec::new();
    for (name, v) in &snap.gauges {
        match shard_family(name) {
            Some((suffix, shard)) => shard_rows.push((suffix, shard, *v)),
            None => {
                let n = sanitize(name);
                let _ = writeln!(out, "# TYPE {n} gauge");
                let _ = writeln!(out, "{n} {v}");
            }
        }
    }
    shard_rows.sort();
    let mut last_suffix = "";
    for (suffix, shard, v) in shard_rows {
        let n = sanitize(&format!("engine.shard.{suffix}"));
        if suffix != last_suffix {
            let _ = writeln!(out, "# TYPE {n} gauge");
            last_suffix = suffix;
        }
        let _ = writeln!(out, "{n}{{shard=\"{shard}\"}} {v}");
    }

    for h in &snap.histograms {
        let n = sanitize(h.name);
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, p) in [("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0)] {
            let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {}", h.percentile(p));
        }
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
        let _ = writeln!(out, "# TYPE {n}_max gauge");
        let _ = writeln!(out, "{n}_max {}", h.max);
    }
    out
}

/// Error from [`validate_prometheus_text`], with the 1-based offending
/// line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for PromError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "prometheus text line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PromError {}

fn is_name_char(c: char, first: bool) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || (!first && c.is_ascii_digit())
}

fn parse_name(s: &str) -> Option<(&str, &str)> {
    let mut end = 0;
    for (i, c) in s.char_indices() {
        if is_name_char(c, i == 0) {
            end = i + c.len_utf8();
        } else {
            break;
        }
    }
    if end == 0 {
        None
    } else {
        Some((&s[..end], &s[end..]))
    }
}

fn err(line: usize, message: impl Into<String>) -> PromError {
    PromError {
        line,
        message: message.into(),
    }
}

/// Strictly validates Prometheus text exposition: every sample line is
/// `name[{label="value",...}] <number>`, every sample's family was
/// declared by a preceding `# TYPE` line, and summary `quantile`
/// samples only appear under `summary` families. Returns the number of
/// sample lines.
pub fn validate_prometheus_text(text: &str) -> Result<usize, PromError> {
    let mut types: Vec<(String, String)> = Vec::new();
    let mut samples = 0usize;
    for (ix, raw) in text.lines().enumerate() {
        let lineno = ix + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| err(lineno, "TYPE without a metric name"))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| err(lineno, "TYPE without a kind"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ) {
                    return Err(err(lineno, format!("unknown metric kind {kind:?}")));
                }
                types.push((name.to_string(), kind.to_string()));
            }
            // HELP and free comments are fine.
            continue;
        }
        let (name, rest) = parse_name(line)
            .ok_or_else(|| err(lineno, "sample line does not start with a metric name"))?;
        let rest = if let Some(labels) = rest.strip_prefix('{') {
            let close = labels
                .find('}')
                .ok_or_else(|| err(lineno, "unterminated label set"))?;
            let body = &labels[..close];
            if !body.is_empty() {
                for pair in body.split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| err(lineno, format!("label without '=': {pair:?}")))?;
                    if parse_name(k).is_none_or(|(n, rest)| n != k || !rest.is_empty()) {
                        return Err(err(lineno, format!("invalid label name {k:?}")));
                    }
                    if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
                        return Err(err(lineno, format!("label value not quoted: {v:?}")));
                    }
                }
            }
            &labels[close + 1..]
        } else {
            rest
        };
        let value = rest.trim();
        if value.is_empty() || value.split_whitespace().count() != 1 {
            return Err(err(lineno, "expected exactly one value after the name"));
        }
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(err(lineno, format!("unparseable sample value {value:?}")));
        }
        // The sample must belong to a declared family: exact name, or
        // a summary/histogram child (_sum/_count/_bucket).
        let family = types.iter().find(|(n, _)| {
            n == name
                || (name.strip_suffix("_sum") == Some(n.as_str()))
                || (name.strip_suffix("_count") == Some(n.as_str()))
                || (name.strip_suffix("_bucket") == Some(n.as_str()))
        });
        let Some((family_name, kind)) = family else {
            return Err(err(
                lineno,
                format!("sample {name:?} has no # TYPE declaration"),
            ));
        };
        if line.contains("quantile=") && kind != "summary" && family_name == name {
            return Err(err(
                lineno,
                format!("quantile label on non-summary family {family_name:?}"),
            ));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryRecorder, Recorder};

    #[test]
    fn exposition_round_trips_through_validator() {
        let r = MemoryRecorder::new();
        r.counter_add("engine.cache.hit", 3);
        r.gauge_set("search.frontier_depth", 5);
        r.gauge_set("engine.shard.03.hits", 7);
        r.gauge_set("engine.shard.03.misses", 2);
        r.gauge_set("engine.shard.11.hits", 1);
        for v in [1u64, 2, 300] {
            r.histogram_record("engine.request_us", v);
        }
        let text = prometheus_text(&r.snapshot());
        assert!(text.ends_with('\n'));
        assert!(text.contains("# TYPE rtcg_engine_cache_hit counter\n"));
        assert!(text.contains("rtcg_engine_cache_hit 3\n"));
        assert!(text.contains("rtcg_engine_shard_hits{shard=\"03\"} 7\n"));
        assert!(text.contains("rtcg_engine_shard_hits{shard=\"11\"} 1\n"));
        assert!(text.contains("rtcg_engine_shard_misses{shard=\"03\"} 2\n"));
        assert!(!text.contains("rtcg_engine_shard_03"), "no per-shard names");
        assert!(text.contains("# TYPE rtcg_engine_request_us summary\n"));
        assert!(text.contains("rtcg_engine_request_us{quantile=\"0.9\"}"));
        assert!(text.contains("rtcg_engine_request_us_sum 303\n"));
        assert!(text.contains("rtcg_engine_request_us_count 3\n"));
        assert!(text.contains("rtcg_engine_request_us_max 300\n"));
        let samples = validate_prometheus_text(&text).expect("valid exposition");
        // 1 counter + 1 gauge + 3 shard rows + summary(3q + sum + count) + max
        assert_eq!(samples, 11);
    }

    #[test]
    fn snapshot_metrics_expose_and_validate() {
        // the exact names the engine's snapshot save/load paths publish
        let r = MemoryRecorder::new();
        r.histogram_record("engine.snapshot.save_us", 120);
        r.histogram_record("engine.snapshot.load_us", 80);
        r.counter_add("engine.snapshot.bytes", 4096);
        r.counter_add("engine.snapshot.sections_loaded", 3);
        r.counter_add("engine.snapshot.sections_skipped", 1);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("# TYPE rtcg_engine_snapshot_save_us summary\n"));
        assert!(text.contains("# TYPE rtcg_engine_snapshot_load_us summary\n"));
        assert!(text.contains("rtcg_engine_snapshot_save_us_count 1\n"));
        assert!(text.contains("rtcg_engine_snapshot_load_us_sum 80\n"));
        assert!(text.contains("rtcg_engine_snapshot_bytes 4096\n"));
        assert!(text.contains("rtcg_engine_snapshot_sections_loaded 3\n"));
        assert!(text.contains("rtcg_engine_snapshot_sections_skipped 1\n"));
        validate_prometheus_text(&text).expect("valid exposition");
    }

    #[test]
    fn one_type_line_per_shard_suffix() {
        let r = MemoryRecorder::new();
        for shard in ["00", "01", "02"] {
            let name: &'static str =
                Box::leak(format!("engine.shard.{shard}.hits").into_boxed_str());
            r.gauge_set(name, 1);
        }
        let text = prometheus_text(&r.snapshot());
        assert_eq!(
            text.matches("# TYPE rtcg_engine_shard_hits gauge").count(),
            1
        );
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus_text("no_type_decl 1\n").is_err());
        assert!(
            validate_prometheus_text("# TYPE m gauge\nm {broken\n").is_err(),
            "unterminated labels"
        );
        assert!(
            validate_prometheus_text("# TYPE m gauge\nm not_a_number\n").is_err(),
            "bad value"
        );
        assert!(
            validate_prometheus_text("# TYPE m wat\nm 1\n").is_err(),
            "unknown kind"
        );
        assert!(
            validate_prometheus_text("# TYPE m gauge\nm{quantile=\"0.5\"} 1\n").is_err(),
            "quantile on a gauge"
        );
        assert_eq!(
            validate_prometheus_text("# TYPE m gauge\nm{a=\"b\"} 1.5\nm 2\n"),
            Ok(2)
        );
        assert_eq!(validate_prometheus_text(""), Ok(0));
    }

    #[test]
    fn shard_family_parser_is_strict() {
        assert_eq!(shard_family("engine.shard.07.hits"), Some(("hits", "07")));
        assert_eq!(
            shard_family("engine.shard.12.poison_recoveries"),
            Some(("poison_recoveries", "12"))
        );
        assert_eq!(shard_family("engine.shard.7.hits"), None);
        assert_eq!(shard_family("engine.shard.xx.hits"), None);
        assert_eq!(shard_family("engine.shard.07"), None);
        assert_eq!(shard_family("engine.cache.hit"), None);
    }
}
