//! The collecting recorder: aggregates counters, gauges, histograms,
//! spans, events, and flows in memory for later snapshot/export.

use crate::hist::{HistogramRegistry, HistogramSnapshot};
use crate::trace::{EventRecord, FlowRecord, SpanRecord};
use crate::{FlowPhase, Recorder, SpanData};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Everything a [`MemoryRecorder`] has collected, frozen at one
/// moment. All lists are sorted by name (spans/events by time).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: Vec<(&'static str, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(&'static str, i64)>,
    /// Histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Instantaneous events in emission order.
    pub events: Vec<EventRecord>,
    /// Cross-thread request handoffs in emission order.
    pub flows: Vec<FlowRecord>,
}

impl MetricsSnapshot {
    /// The value of a counter, 0 if never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Total time spent in spans with this name.
    pub fn span_total(&self, name: &str) -> Duration {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur)
            .sum()
    }
}

/// A [`Recorder`] that aggregates everything in memory.
///
/// Counters/gauges/spans/events/flows take a mutex per call — fine for
/// a profiler. Histograms go through the lock-free
/// [`HistogramRegistry`] because leaf-eval latency recording sits on
/// the search hot path where a shared mutex would serialize workers.
/// Production cost is unaffected either way: the default state is "no
/// recorder installed" and instrumentation sites short-circuit before
/// reaching any recorder.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, i64>>,
    histograms: HistogramRegistry,
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
    flows: Mutex<Vec<FlowRecord>>,
}

impl MemoryRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Leaks a fresh recorder, installs it globally, and returns it.
    /// If a recorder is already installed this panics — installation
    /// is once-per-process by design (see [`crate::set_recorder`]).
    pub fn install() -> &'static MemoryRecorder {
        let r: &'static MemoryRecorder = Box::leak(Box::new(MemoryRecorder::new()));
        crate::set_recorder(r).expect("a global recorder is already installed");
        r
    }

    /// Freezes current state into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(&n, &v)| (n, v))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(&n, &v)| (n, v))
                .collect(),
            histograms: self.histograms.snapshot(),
            spans: self.spans.lock().unwrap().clone(),
            events: self.events.lock().unwrap().clone(),
            flows: self.flows.lock().unwrap().clone(),
        }
    }

    /// Reads one gauge without freezing a full snapshot — cheap enough
    /// for a live sampler polling `search.progress.*` while the span
    /// and event lists are large and growing.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.lock().unwrap().get(name).copied()
    }

    /// Clears all collected data (counters, gauges, histograms, spans,
    /// events, flows). Lets one installed recorder serve several
    /// measured phases.
    pub fn reset(&self) {
        self.counters.lock().unwrap().clear();
        self.gauges.lock().unwrap().clear();
        self.histograms.reset();
        self.spans.lock().unwrap().clear();
        self.events.lock().unwrap().clear();
        self.flows.lock().unwrap().clear();
    }

    /// Renders collected spans and events as Chrome `trace_event` JSON.
    pub fn chrome_trace_json(&self) -> String {
        crate::trace::chrome_trace_json(&self.snapshot())
    }

    /// Renders collected metrics as JSON Lines, one metric per line.
    pub fn metrics_jsonl(&self) -> String {
        crate::trace::metrics_jsonl(&self.snapshot())
    }

    /// Renders collected metrics in Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        crate::prom::prometheus_text(&self.snapshot())
    }
}

impl Recorder for MemoryRecorder {
    fn counter_add(&self, name: &'static str, delta: u64) {
        *self.counters.lock().unwrap().entry(name).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &'static str, value: i64) {
        self.gauges.lock().unwrap().insert(name, value);
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        self.histograms.record(name, value);
    }

    fn span_complete(&self, span: SpanData) {
        self.spans.lock().unwrap().push(SpanRecord {
            name: span.name,
            cat: span.cat,
            start: span.start,
            dur: span.dur,
            id: span.id,
            parent: span.parent,
            request: span.request,
            tid: span.tid,
        });
    }

    fn event(&self, name: &'static str, cat: &'static str, at: Duration, value: Option<i64>) {
        self.events.lock().unwrap().push(EventRecord {
            name,
            cat,
            at,
            value,
            tid: crate::thread_ordinal(),
        });
    }

    fn flow(&self, request: u64, phase: FlowPhase, at: Duration, tid: u32) {
        self.flows.lock().unwrap().push(FlowRecord {
            request,
            phase,
            at,
            tid,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, start_us: u64, dur_us: u64) -> SpanData {
        SpanData {
            name,
            cat: "c",
            start: Duration::from_micros(start_us),
            dur: Duration::from_micros(dur_us),
            id: 1,
            parent: None,
            request: None,
            tid: 1,
        }
    }

    #[test]
    fn counters_accumulate() {
        let r = MemoryRecorder::new();
        r.counter_add("a", 1);
        r.counter_add("a", 2);
        r.counter_add("b", 5);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 3);
        assert_eq!(s.counter("b"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn gauges_take_last_value() {
        let r = MemoryRecorder::new();
        r.gauge_set("g", 10);
        r.gauge_set("g", -4);
        assert_eq!(r.snapshot().gauge("g"), Some(-4));
        assert_eq!(r.snapshot().gauge("missing"), None);
    }

    #[test]
    fn histogram_stats_and_percentiles() {
        let r = MemoryRecorder::new();
        for v in [0u64, 1, 1, 2, 3, 8, 100] {
            r.histogram_record("h", v);
        }
        let s = r.snapshot();
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 115);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        assert!((h.mean() - 115.0 / 7.0).abs() < 1e-9);
        // rank math: p0 -> first non-empty bucket, p100 -> max
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 100);
        // 4 of 7 observations are <= 3, so the median lands in bucket
        // [2,3]
        assert_eq!(h.percentile(50.0), 3);
    }

    #[test]
    fn spans_and_events_are_kept_in_order() {
        let r = MemoryRecorder::new();
        r.span_complete(span("a", 1, 2));
        r.span_complete(span("b", 5, 1));
        r.event("e", "c", Duration::from_micros(3), Some(42));
        let s = r.snapshot();
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[0].name, "a");
        assert_eq!(s.span_total("a"), Duration::from_micros(2));
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events[0].value, Some(42));
        assert!(s.events[0].tid > 0);
    }

    #[test]
    fn flows_are_collected() {
        let r = MemoryRecorder::new();
        r.flow(7, FlowPhase::Produce, Duration::from_micros(1), 1);
        r.flow(7, FlowPhase::Consume, Duration::from_micros(2), 2);
        let s = r.snapshot();
        assert_eq!(s.flows.len(), 2);
        assert_eq!(s.flows[0].phase, FlowPhase::Produce);
        assert_eq!(s.flows[1].tid, 2);
    }

    #[test]
    fn reset_clears_everything() {
        let r = MemoryRecorder::new();
        r.counter_add("a", 1);
        r.gauge_set("g", 1);
        r.histogram_record("h", 1);
        r.span_complete(span("s", 0, 0));
        r.event("e", "c", Duration::ZERO, None);
        r.flow(1, FlowPhase::Produce, Duration::ZERO, 1);
        r.reset();
        let s = r.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.gauges.is_empty());
        assert!(s.histograms.is_empty());
        assert!(s.spans.is_empty());
        assert!(s.events.is_empty());
        assert!(s.flows.is_empty());
    }
}
