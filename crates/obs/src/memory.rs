//! The collecting recorder: aggregates counters, gauges, histograms,
//! spans, and events in memory for later snapshot/export.

use crate::trace::{EventRecord, SpanRecord};
use crate::Recorder;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Number of power-of-two histogram buckets: bucket 0 holds the value
/// 0, bucket `i >= 1` holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }
}

fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Upper bound (inclusive) of a bucket, for percentile estimates.
fn bucket_upper(ix: usize) -> u64 {
    if ix == 0 {
        0
    } else if ix >= 64 {
        u64::MAX
    } else {
        (1u64 << ix) - 1
    }
}

/// Read-only view of one histogram at snapshot time.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Per-bucket observation counts; see [`HISTOGRAM_BUCKETS`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observed value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `p`-th percentile (0.0..=100.0): the upper bound of
    /// the bucket containing that rank, clamped to the observed max.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (ix, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(ix).min(self.max);
            }
        }
        self.max
    }
}

/// Everything a [`MemoryRecorder`] has collected, frozen at one
/// moment. All lists are sorted by name (spans/events by time).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: Vec<(&'static str, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(&'static str, i64)>,
    /// Histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Instantaneous events in emission order.
    pub events: Vec<EventRecord>,
}

impl MetricsSnapshot {
    /// The value of a counter, 0 if never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Total time spent in spans with this name.
    pub fn span_total(&self, name: &str) -> Duration {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur)
            .sum()
    }
}

/// A [`Recorder`] that aggregates everything in memory.
///
/// Collection-side cost is a mutex acquisition per call — fine for a
/// profiler, irrelevant for production since the default state is "no
/// recorder installed" and instrumentation sites short-circuit before
/// reaching any recorder.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, i64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
}

impl MemoryRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Leaks a fresh recorder, installs it globally, and returns it.
    /// If a recorder is already installed this panics — installation
    /// is once-per-process by design (see [`crate::set_recorder`]).
    pub fn install() -> &'static MemoryRecorder {
        let r: &'static MemoryRecorder = Box::leak(Box::new(MemoryRecorder::new()));
        crate::set_recorder(r).expect("a global recorder is already installed");
        r
    }

    /// Freezes current state into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(&n, &v)| (n, v))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(&n, &v)| (n, v))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(&name, h)| HistogramSnapshot {
                    name,
                    count: h.count,
                    sum: h.sum,
                    min: if h.count == 0 { 0 } else { h.min },
                    max: h.max,
                    buckets: h.buckets,
                })
                .collect(),
            spans: self.spans.lock().unwrap().clone(),
            events: self.events.lock().unwrap().clone(),
        }
    }

    /// Clears all collected data (counters, gauges, histograms, spans,
    /// events). Lets one installed recorder serve several measured
    /// phases.
    pub fn reset(&self) {
        self.counters.lock().unwrap().clear();
        self.gauges.lock().unwrap().clear();
        self.histograms.lock().unwrap().clear();
        self.spans.lock().unwrap().clear();
        self.events.lock().unwrap().clear();
    }

    /// Renders collected spans and events as Chrome `trace_event` JSON.
    pub fn chrome_trace_json(&self) -> String {
        crate::trace::chrome_trace_json(&self.snapshot())
    }

    /// Renders collected metrics as JSON Lines, one metric per line.
    pub fn metrics_jsonl(&self) -> String {
        crate::trace::metrics_jsonl(&self.snapshot())
    }
}

impl Recorder for MemoryRecorder {
    fn counter_add(&self, name: &'static str, delta: u64) {
        *self.counters.lock().unwrap().entry(name).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &'static str, value: i64) {
        self.gauges.lock().unwrap().insert(name, value);
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        self.histograms
            .lock()
            .unwrap()
            .entry(name)
            .or_insert_with(Histogram::new)
            .record(value);
    }

    fn span_complete(&self, name: &'static str, cat: &'static str, start: Duration, dur: Duration) {
        self.spans.lock().unwrap().push(SpanRecord {
            name,
            cat,
            start,
            dur,
        });
    }

    fn event(&self, name: &'static str, cat: &'static str, at: Duration, value: Option<i64>) {
        self.events.lock().unwrap().push(EventRecord {
            name,
            cat,
            at,
            value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MemoryRecorder::new();
        r.counter_add("a", 1);
        r.counter_add("a", 2);
        r.counter_add("b", 5);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 3);
        assert_eq!(s.counter("b"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn gauges_take_last_value() {
        let r = MemoryRecorder::new();
        r.gauge_set("g", 10);
        r.gauge_set("g", -4);
        assert_eq!(r.snapshot().gauge("g"), Some(-4));
        assert_eq!(r.snapshot().gauge("missing"), None);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_stats_and_percentiles() {
        let r = MemoryRecorder::new();
        for v in [0u64, 1, 1, 2, 3, 8, 100] {
            r.histogram_record("h", v);
        }
        let s = r.snapshot();
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 115);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        assert!((h.mean() - 115.0 / 7.0).abs() < 1e-9);
        // rank math: p0 -> first non-empty bucket, p100 -> max
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 100);
        // 4 of 7 observations are <= 3, so the median lands in bucket
        // [2,3]
        assert_eq!(h.percentile(50.0), 3);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = HistogramSnapshot {
            name: "empty",
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn spans_and_events_are_kept_in_order() {
        let r = MemoryRecorder::new();
        r.span_complete("a", "c", Duration::from_micros(1), Duration::from_micros(2));
        r.span_complete("b", "c", Duration::from_micros(5), Duration::from_micros(1));
        r.event("e", "c", Duration::from_micros(3), Some(42));
        let s = r.snapshot();
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[0].name, "a");
        assert_eq!(s.span_total("a"), Duration::from_micros(2));
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events[0].value, Some(42));
    }

    #[test]
    fn reset_clears_everything() {
        let r = MemoryRecorder::new();
        r.counter_add("a", 1);
        r.gauge_set("g", 1);
        r.histogram_record("h", 1);
        r.span_complete("s", "c", Duration::ZERO, Duration::ZERO);
        r.event("e", "c", Duration::ZERO, None);
        r.reset();
        let s = r.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.gauges.is_empty());
        assert!(s.histograms.is_empty());
        assert!(s.spans.is_empty());
        assert!(s.events.is_empty());
    }
}
