//! Zero-dependency observability for the rtcg workspace.
//!
//! The layer is deliberately std-only (the workspace builds with no
//! registry access): spans are [`std::time::Instant`] pairs, counters
//! are plain `u64`s aggregated under a mutex in the collecting
//! recorder, histograms use lock-free fixed power-of-two buckets
//! ([`HistogramRegistry`]).
//!
//! The design follows the `log` crate: instrumented code talks to a
//! process-global [`Recorder`] installed once via [`set_recorder`].
//! When nothing is installed — the default for every library consumer —
//! each instrumentation site costs one relaxed-ish atomic load and a
//! branch, with no allocation and no time query. The macros
//! ([`counter!`], [`gauge!`], [`histogram!`], [`event!`], [`span!`])
//! compile to that guarded call.
//!
//! # Span trees and request correlation
//!
//! Spans form trees: every live span records its id in a thread-local
//! so spans opened beneath it become its children, and a
//! [`RequestScope`] tags all spans opened inside it with a per-request
//! correlation id. Handing a request to another thread is expressed
//! with [`request_handoff`] on the producing thread and
//! [`RequestScope::adopt`] on the consuming one; recorders see the
//! pair as [`FlowPhase::Produce`]/[`FlowPhase::Consume`] flow events,
//! which the Chrome trace exporter renders as cross-thread arrows.
//!
//! ```
//! let recorder = rtcg_obs::MemoryRecorder::install();
//! {
//!     let _req = rtcg_obs::RequestScope::open();
//!     let _timer = rtcg_obs::span!("search.exact", "feasibility");
//!     rtcg_obs::counter!("search.nodes_expanded");
//!     rtcg_obs::counter!("search.nodes_expanded", 41);
//! }
//! let snap = recorder.snapshot();
//! assert_eq!(snap.counter("search.nodes_expanded"), 42);
//! assert_eq!(snap.spans.len(), 1);
//! assert!(snap.spans[0].request.is_some());
//! ```

mod hist;
mod memory;
mod prom;
mod trace;

pub use hist::{
    AtomicHistogram, HistogramRegistry, HistogramSnapshot, HISTOGRAM_BUCKETS, MAX_HISTOGRAMS,
};
pub use memory::{MemoryRecorder, MetricsSnapshot};
pub use prom::{prometheus_text, validate_prometheus_text, PromError};
pub use trace::{chrome_trace_json, metrics_jsonl, EventRecord, FlowRecord, SpanRecord};

use std::cell::Cell;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Everything known about a span at completion time; what
/// [`Recorder::span_complete`] receives.
#[derive(Debug, Clone, Copy)]
pub struct SpanData {
    /// Span name (interned).
    pub name: &'static str,
    /// Trace category.
    pub cat: &'static str,
    /// Offset of the span's start from [`epoch`].
    pub start: Duration,
    /// Span length.
    pub dur: Duration,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the span this one was opened under, if any.
    pub parent: Option<u64>,
    /// Correlation id of the enclosing [`RequestScope`], if any.
    pub request: Option<u64>,
    /// Ordinal of the thread the span ran on; see [`thread_ordinal`].
    pub tid: u32,
}

/// Direction of a cross-thread request handoff; see
/// [`Recorder::flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    /// The producing side ([`request_handoff`]); Chrome trace `ph:"s"`.
    Produce,
    /// The consuming side ([`RequestScope::adopt`]); Chrome `ph:"f"`.
    Consume,
}

/// Sink for instrumentation produced by the rtcg crates.
///
/// All methods default to no-ops so recorders only override what they
/// collect. Metric names are `&'static str` by design: instrumentation
/// sites name their metrics statically, which keeps the uninstalled
/// path allocation-free and lets recorders key registries by pointer
/// without copying.
pub trait Recorder: Sync {
    /// Adds `delta` to a monotonic counter.
    fn counter_add(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets a point-in-time gauge.
    fn gauge_set(&self, name: &'static str, value: i64) {
        let _ = (name, value);
    }

    /// Records one observation into a histogram.
    fn histogram_record(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Records a completed span.
    fn span_complete(&self, span: SpanData) {
        let _ = span;
    }

    /// Records an instantaneous event, optionally carrying a value
    /// (e.g. the tick at which a fault was injected).
    fn event(&self, name: &'static str, cat: &'static str, at: Duration, value: Option<i64>) {
        let _ = (name, cat, at, value);
    }

    /// Records one side of a cross-thread request handoff. The
    /// `Produce` and `Consume` records sharing a `request` id pair up
    /// into one flow arrow in trace exports.
    fn flow(&self, request: u64, phase: FlowPhase, at: Duration, tid: u32) {
        let _ = (request, phase, at, tid);
    }
}

/// The always-discarding recorder; what the world sees before
/// [`set_recorder`] is called.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopRecorder;

impl Recorder for NopRecorder {}

// `&'static dyn Recorder` is a fat pointer and cannot live in an
// AtomicPtr directly; a leaked cell holding it can.
struct RecorderCell(&'static dyn Recorder);

static RECORDER: AtomicPtr<RecorderCell> = AtomicPtr::new(std::ptr::null_mut());

/// Error returned when a recorder is already installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetRecorderError;

impl std::fmt::Display for SetRecorderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("a global recorder is already installed")
    }
}

impl std::error::Error for SetRecorderError {}

/// Installs the process-global recorder. First caller wins; later
/// calls fail so an installed collector is never silently replaced.
pub fn set_recorder(r: &'static dyn Recorder) -> Result<(), SetRecorderError> {
    // Pin the epoch no later than installation so span offsets are
    // never negative relative to it.
    let _ = epoch();
    let cell = Box::into_raw(Box::new(RecorderCell(r)));
    RECORDER
        .compare_exchange(
            std::ptr::null_mut(),
            cell,
            Ordering::AcqRel,
            Ordering::Acquire,
        )
        .map(|_| ())
        .map_err(|_| {
            // Lost the race; reclaim our cell.
            drop(unsafe { Box::from_raw(cell) });
            SetRecorderError
        })
}

/// The installed recorder, if any. This is the hot-path guard: one
/// atomic load and a null check.
#[inline]
pub fn recorder() -> Option<&'static dyn Recorder> {
    let p = RECORDER.load(Ordering::Acquire);
    if p.is_null() {
        None
    } else {
        // Safety: the cell was leaked by set_recorder and never freed
        // after a successful install.
        Some(unsafe { (*p).0 })
    }
}

/// The process time origin all span/event offsets are measured from.
/// Fixed at the first call (which [`set_recorder`] guarantees happens
/// no later than installation).
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

// Span and request ids start at 1 so 0 can mean "none" in the
// thread-local cells without an Option's niche bookkeeping.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU32 = AtomicU32::new(1);

thread_local! {
    /// Id of the innermost live span on this thread; 0 when none.
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
    /// Correlation id of the active request scope; 0 when none.
    static CURRENT_REQUEST: Cell<u64> = const { Cell::new(0) };
    /// Lazily assigned small ordinal for this thread; 0 = unassigned.
    static THREAD_ORDINAL: Cell<u32> = const { Cell::new(0) };
}

/// Small process-unique ordinal for the calling thread, assigned on
/// first use (the main thread is typically 1). Trace exports use these
/// as Chrome `tid`s so lanes are stable and compact.
pub fn thread_ordinal() -> u32 {
    THREAD_ORDINAL.with(|c| {
        let t = c.get();
        if t != 0 {
            t
        } else {
            let t = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(t);
            t
        }
    })
}

/// The correlation id of the [`RequestScope`] active on this thread.
pub fn current_request() -> Option<u64> {
    let r = CURRENT_REQUEST.with(Cell::get);
    if r == 0 {
        None
    } else {
        Some(r)
    }
}

/// Allocates a fresh request correlation id without opening a scope,
/// for callers that create ids on one thread and adopt them on another
/// (e.g. a batch coordinator labelling jobs before workers claim
/// them). Returns `None` when no recorder is installed — the
/// uninstalled path stays one atomic load.
pub fn allocate_request_id() -> Option<u64> {
    recorder().map(|_| NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed))
}

/// Marks the producing side of a cross-thread handoff of `request`:
/// call on the thread that created/owns the request right before
/// making it claimable by workers. Pairs with [`RequestScope::adopt`].
pub fn request_handoff(request: u64) {
    if let Some(r) = recorder() {
        r.flow(
            request,
            FlowPhase::Produce,
            Instant::now().saturating_duration_since(epoch()),
            thread_ordinal(),
        );
    }
}

/// RAII guard that tags every span opened on this thread (while the
/// guard lives) with a request correlation id. Scopes nest; dropping
/// restores the previous request id.
#[must_use = "a request scope tags spans until it is dropped"]
pub struct RequestScope {
    id: u64,
    prev: u64,
    active: bool,
}

impl RequestScope {
    /// Opens a scope with a freshly allocated correlation id. Inert
    /// (no id, no thread-local writes) when no recorder is installed.
    pub fn open() -> RequestScope {
        match allocate_request_id() {
            Some(id) => Self::enter(id),
            None => RequestScope {
                id: 0,
                prev: 0,
                active: false,
            },
        }
    }

    /// Adopts a request id allocated elsewhere (see
    /// [`allocate_request_id`]) on this thread, emitting the
    /// [`FlowPhase::Consume`] half of the handoff arrow.
    pub fn adopt(id: u64) -> RequestScope {
        let scope = Self::enter(id);
        if let Some(r) = recorder() {
            r.flow(
                id,
                FlowPhase::Consume,
                Instant::now().saturating_duration_since(epoch()),
                thread_ordinal(),
            );
        }
        scope
    }

    fn enter(id: u64) -> RequestScope {
        let prev = CURRENT_REQUEST.with(|c| c.replace(id));
        RequestScope {
            id,
            prev,
            active: true,
        }
    }

    /// The scope's correlation id; `None` when the scope is inert.
    pub fn id(&self) -> Option<u64> {
        if self.active {
            Some(self.id)
        } else {
            None
        }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        if self.active {
            CURRENT_REQUEST.with(|c| c.set(self.prev));
        }
    }
}

/// RAII span timer: measures from construction to drop and reports to
/// the recorder that was installed at construction time. When no
/// recorder is installed the guard holds no timestamp, allocates no
/// ids, and drop does nothing.
#[must_use = "a span measures until it is dropped; binding it to _ ends it immediately"]
pub struct Span {
    name: &'static str,
    cat: &'static str,
    start: Option<Instant>,
    id: u64,
    /// Parent span id at open time (0 = root); doubles as the value to
    /// restore into the thread-local on drop, since RAII spans nest
    /// strictly on a thread.
    parent: u64,
    request: u64,
}

impl Span {
    /// Starts a span. Prefer the [`span!`] macro.
    pub fn begin(name: &'static str, cat: &'static str) -> Span {
        if recorder().is_none() {
            return Span {
                name,
                cat,
                start: None,
                id: 0,
                parent: 0,
                request: 0,
            };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT_PARENT.with(|c| c.replace(id));
        Span {
            name,
            cat,
            start: Some(Instant::now()),
            id,
            parent,
            request: CURRENT_REQUEST.with(Cell::get),
        }
    }

    /// This span's id, if it is live (a recorder was installed at
    /// construction).
    pub fn id(&self) -> Option<u64> {
        if self.start.is_some() {
            Some(self.id)
        } else {
            None
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            CURRENT_PARENT.with(|c| c.set(self.parent));
            if let Some(r) = recorder() {
                r.span_complete(SpanData {
                    name: self.name,
                    cat: self.cat,
                    start: start.saturating_duration_since(epoch()),
                    dur: start.elapsed(),
                    id: self.id,
                    parent: if self.parent == 0 {
                        None
                    } else {
                        Some(self.parent)
                    },
                    request: if self.request == 0 {
                        None
                    } else {
                        Some(self.request)
                    },
                    tid: thread_ordinal(),
                });
            }
        }
    }
}

/// Increments a named counter: `counter!("search.nodes_expanded")` or
/// `counter!("sim.ticks", horizon)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1u64)
    };
    ($name:expr, $delta:expr) => {
        if let Some(__r) = $crate::recorder() {
            __r.counter_add($name, $delta as u64);
        }
    };
}

/// Sets a named gauge: `gauge!("sim.ready_queue_len", len)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        if let Some(__r) = $crate::recorder() {
            __r.gauge_set($name, $value as i64);
        }
    };
}

/// Records a histogram observation: `histogram!("sim.block_ticks", n)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        if let Some(__r) = $crate::recorder() {
            __r.histogram_record($name, $value as u64);
        }
    };
}

/// Records an instantaneous event, optionally with a value:
/// `event!("sim.fault_injected", "faults")` or
/// `event!("sim.fault_injected", "faults", tick)`.
#[macro_export]
macro_rules! event {
    ($name:expr, $cat:expr) => {
        if let Some(__r) = $crate::recorder() {
            __r.event(
                $name,
                $cat,
                std::time::Instant::now().saturating_duration_since($crate::epoch()),
                None,
            );
        }
    };
    ($name:expr, $cat:expr, $value:expr) => {
        if let Some(__r) = $crate::recorder() {
            __r.event(
                $name,
                $cat,
                std::time::Instant::now().saturating_duration_since($crate::epoch()),
                Some($value as i64),
            );
        }
    };
}

/// Opens an RAII span: `let _t = span!("feasibility.exact", "search");`.
/// The category defaults to `"rtcg"`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::begin($name, "rtcg")
    };
    ($name:expr, $cat:expr) => {
        $crate::Span::begin($name, $cat)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_recorder_accepts_everything() {
        let r = NopRecorder;
        r.counter_add("c", 1);
        r.gauge_set("g", -3);
        r.histogram_record("h", 9);
        r.span_complete(SpanData {
            name: "s",
            cat: "cat",
            start: Duration::ZERO,
            dur: Duration::from_micros(5),
            id: 1,
            parent: None,
            request: None,
            tid: 1,
        });
        r.event("e", "cat", Duration::ZERO, Some(7));
        r.flow(1, FlowPhase::Produce, Duration::ZERO, 1);
    }

    #[test]
    fn uninstalled_macros_are_inert() {
        // The global registry may be populated by other tests in this
        // binary; only exercise the guard when it is actually empty.
        if recorder().is_none() {
            counter!("never.recorded");
            gauge!("never.recorded", 1);
            histogram!("never.recorded", 1);
            event!("never.recorded", "t");
            let span = span!("never.recorded");
            assert!(span.start.is_none());
            assert!(span.id().is_none());
            let scope = RequestScope::open();
            assert!(scope.id().is_none());
            assert!(current_request().is_none());
            assert!(allocate_request_id().is_none());
        }
    }

    #[test]
    fn epoch_is_stable() {
        assert_eq!(epoch(), epoch());
    }

    #[test]
    fn thread_ordinals_are_distinct() {
        let mine = thread_ordinal();
        assert!(mine > 0);
        assert_eq!(mine, thread_ordinal(), "stable per thread");
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(mine, other);
    }
}
