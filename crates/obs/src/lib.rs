//! Zero-dependency observability for the rtcg workspace.
//!
//! The layer is deliberately std-only (the workspace builds with no
//! registry access): spans are [`std::time::Instant`] pairs, counters
//! are plain `u64`s aggregated under a mutex in the collecting
//! recorder, histograms use fixed power-of-two buckets.
//!
//! The design follows the `log` crate: instrumented code talks to a
//! process-global [`Recorder`] installed once via [`set_recorder`].
//! When nothing is installed — the default for every library consumer —
//! each instrumentation site costs one relaxed-ish atomic load and a
//! branch, with no allocation and no time query. The macros
//! ([`counter!`], [`gauge!`], [`histogram!`], [`event!`], [`span!`])
//! compile to that guarded call.
//!
//! ```
//! let recorder = rtcg_obs::MemoryRecorder::install();
//! {
//!     let _timer = rtcg_obs::span!("search.exact", "feasibility");
//!     rtcg_obs::counter!("search.nodes_expanded");
//!     rtcg_obs::counter!("search.nodes_expanded", 41);
//! }
//! let snap = recorder.snapshot();
//! assert_eq!(snap.counter("search.nodes_expanded"), 42);
//! assert_eq!(snap.spans.len(), 1);
//! ```

mod memory;
mod trace;

pub use memory::{HistogramSnapshot, MemoryRecorder, MetricsSnapshot, HISTOGRAM_BUCKETS};
pub use trace::{chrome_trace_json, metrics_jsonl, EventRecord, SpanRecord};

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Sink for instrumentation produced by the rtcg crates.
///
/// All methods default to no-ops so recorders only override what they
/// collect. Metric names are `&'static str` by design: instrumentation
/// sites name their metrics statically, which keeps the uninstalled
/// path allocation-free and lets recorders key registries by pointer
/// without copying.
pub trait Recorder: Sync {
    /// Adds `delta` to a monotonic counter.
    fn counter_add(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets a point-in-time gauge.
    fn gauge_set(&self, name: &'static str, value: i64) {
        let _ = (name, value);
    }

    /// Records one observation into a histogram.
    fn histogram_record(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Records a completed span. `start` is the offset from [`epoch`];
    /// `dur` is the span's length.
    fn span_complete(&self, name: &'static str, cat: &'static str, start: Duration, dur: Duration) {
        let _ = (name, cat, start, dur);
    }

    /// Records an instantaneous event, optionally carrying a value
    /// (e.g. the tick at which a fault was injected).
    fn event(&self, name: &'static str, cat: &'static str, at: Duration, value: Option<i64>) {
        let _ = (name, cat, at, value);
    }
}

/// The always-discarding recorder; what the world sees before
/// [`set_recorder`] is called.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopRecorder;

impl Recorder for NopRecorder {}

// `&'static dyn Recorder` is a fat pointer and cannot live in an
// AtomicPtr directly; a leaked cell holding it can.
struct RecorderCell(&'static dyn Recorder);

static RECORDER: AtomicPtr<RecorderCell> = AtomicPtr::new(std::ptr::null_mut());

/// Error returned when a recorder is already installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetRecorderError;

impl std::fmt::Display for SetRecorderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("a global recorder is already installed")
    }
}

impl std::error::Error for SetRecorderError {}

/// Installs the process-global recorder. First caller wins; later
/// calls fail so an installed collector is never silently replaced.
pub fn set_recorder(r: &'static dyn Recorder) -> Result<(), SetRecorderError> {
    // Pin the epoch no later than installation so span offsets are
    // never negative relative to it.
    let _ = epoch();
    let cell = Box::into_raw(Box::new(RecorderCell(r)));
    RECORDER
        .compare_exchange(
            std::ptr::null_mut(),
            cell,
            Ordering::AcqRel,
            Ordering::Acquire,
        )
        .map(|_| ())
        .map_err(|_| {
            // Lost the race; reclaim our cell.
            drop(unsafe { Box::from_raw(cell) });
            SetRecorderError
        })
}

/// The installed recorder, if any. This is the hot-path guard: one
/// atomic load and a null check.
#[inline]
pub fn recorder() -> Option<&'static dyn Recorder> {
    let p = RECORDER.load(Ordering::Acquire);
    if p.is_null() {
        None
    } else {
        // Safety: the cell was leaked by set_recorder and never freed
        // after a successful install.
        Some(unsafe { (*p).0 })
    }
}

/// The process time origin all span/event offsets are measured from.
/// Fixed at the first call (which [`set_recorder`] guarantees happens
/// no later than installation).
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// RAII span timer: measures from construction to drop and reports to
/// the recorder that was installed at construction time. When no
/// recorder is installed the guard holds no timestamp and drop does
/// nothing.
#[must_use = "a span measures until it is dropped; binding it to _ ends it immediately"]
pub struct Span {
    name: &'static str,
    cat: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Starts a span. Prefer the [`span!`] macro.
    pub fn begin(name: &'static str, cat: &'static str) -> Span {
        Span {
            name,
            cat,
            start: recorder().map(|_| Instant::now()),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            if let Some(r) = recorder() {
                r.span_complete(
                    self.name,
                    self.cat,
                    start.saturating_duration_since(epoch()),
                    start.elapsed(),
                );
            }
        }
    }
}

/// Increments a named counter: `counter!("search.nodes_expanded")` or
/// `counter!("sim.ticks", horizon)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1u64)
    };
    ($name:expr, $delta:expr) => {
        if let Some(__r) = $crate::recorder() {
            __r.counter_add($name, $delta as u64);
        }
    };
}

/// Sets a named gauge: `gauge!("sim.ready_queue_len", len)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        if let Some(__r) = $crate::recorder() {
            __r.gauge_set($name, $value as i64);
        }
    };
}

/// Records a histogram observation: `histogram!("sim.block_ticks", n)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        if let Some(__r) = $crate::recorder() {
            __r.histogram_record($name, $value as u64);
        }
    };
}

/// Records an instantaneous event, optionally with a value:
/// `event!("sim.fault_injected", "faults")` or
/// `event!("sim.fault_injected", "faults", tick)`.
#[macro_export]
macro_rules! event {
    ($name:expr, $cat:expr) => {
        if let Some(__r) = $crate::recorder() {
            __r.event(
                $name,
                $cat,
                std::time::Instant::now().saturating_duration_since($crate::epoch()),
                None,
            );
        }
    };
    ($name:expr, $cat:expr, $value:expr) => {
        if let Some(__r) = $crate::recorder() {
            __r.event(
                $name,
                $cat,
                std::time::Instant::now().saturating_duration_since($crate::epoch()),
                Some($value as i64),
            );
        }
    };
}

/// Opens an RAII span: `let _t = span!("feasibility.exact", "search");`.
/// The category defaults to `"rtcg"`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::begin($name, "rtcg")
    };
    ($name:expr, $cat:expr) => {
        $crate::Span::begin($name, $cat)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_recorder_accepts_everything() {
        let r = NopRecorder;
        r.counter_add("c", 1);
        r.gauge_set("g", -3);
        r.histogram_record("h", 9);
        r.span_complete("s", "cat", Duration::ZERO, Duration::from_micros(5));
        r.event("e", "cat", Duration::ZERO, Some(7));
    }

    #[test]
    fn uninstalled_macros_are_inert() {
        // The global registry may be populated by other tests in this
        // binary; only exercise the guard when it is actually empty.
        if recorder().is_none() {
            counter!("never.recorded");
            gauge!("never.recorded", 1);
            histogram!("never.recorded", 1);
            event!("never.recorded", "t");
            let span = span!("never.recorded");
            assert!(span.start.is_none());
        }
    }

    #[test]
    fn epoch_is_stable() {
        assert_eq!(epoch(), epoch());
    }
}
