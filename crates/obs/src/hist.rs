//! Lock-free fixed-bucket histograms.
//!
//! The collecting recorder's hot path for [`crate::histogram!`] used to
//! be a `Mutex<BTreeMap>` acquisition per observation; with per-leaf
//! latency recording in the exact search that mutex would serialize
//! every worker of a batch run. [`HistogramRegistry`] replaces it with
//! a fixed array of [`AtomicHistogram`] slots: registration is one
//! `OnceLock` CAS per metric name per process, recording is five
//! relaxed atomic RMWs (count, sum, min, max, one bucket), and
//! snapshots read the atomics without stopping writers.
//!
//! Buckets are powers of two: bucket 0 holds the value 0, bucket
//! `i >= 1` holds values in `[2^(i-1), 2^i)` — the same layout the
//! mutex-based histogram used, so percentile estimates are unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Number of power-of-two histogram buckets: bucket 0 holds the value
/// 0, bucket `i >= 1` holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Maximum distinct histogram metrics one registry tracks. Observations
/// for names beyond this are counted in
/// [`HistogramRegistry::dropped`] instead of being silently lost.
pub const MAX_HISTOGRAMS: usize = 64;

pub(crate) fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Upper bound (inclusive) of a bucket, for percentile estimates.
pub(crate) fn bucket_upper(ix: usize) -> u64 {
    if ix == 0 {
        0
    } else if ix >= 64 {
        u64::MAX
    } else {
        (1u64 << ix) - 1
    }
}

/// One lock-free histogram: all fields are relaxed atomics, so
/// concurrent `record` calls never contend on anything wider than a
/// cache line's worth of RMWs. `sum` wraps on overflow (2^64 total —
/// unreachable for latency metrics in any realistic run).
#[derive(Debug)]
pub struct AtomicHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    /// Initialized to `u64::MAX`; `fetch_min` per record.
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl AtomicHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        AtomicHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one observation. Lock-free: five relaxed RMWs.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes current state. Concurrent writers may land between the
    /// field reads — each read is itself atomic, so counts are merely
    /// *slightly* stale, never torn.
    pub fn snapshot(&self, name: &'static str) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            name,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Zeroes every field (for [`crate::MemoryRecorder::reset`]).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

#[derive(Debug)]
struct Slot {
    name: OnceLock<&'static str>,
    hist: AtomicHistogram,
}

/// Fixed-capacity name → [`AtomicHistogram`] registry with a lock-free
/// record path. Lookup is a linear scan over registered slots (metric
/// cardinality is small and names are interned `&'static str`s, so
/// most comparisons are a pointer/length check).
#[derive(Debug)]
pub struct HistogramRegistry {
    slots: [Slot; MAX_HISTOGRAMS],
    dropped: AtomicU64,
}

impl HistogramRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        HistogramRegistry {
            slots: std::array::from_fn(|_| Slot {
                name: OnceLock::new(),
                hist: AtomicHistogram::new(),
            }),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records `value` into the named histogram, registering the name
    /// on first use. Lock-free after registration; observations beyond
    /// [`MAX_HISTOGRAMS`] distinct names increment the drop counter.
    pub fn record(&self, name: &'static str, value: u64) {
        for slot in &self.slots {
            match slot.name.get() {
                Some(&n) if names_equal(n, name) => {
                    slot.hist.record(value);
                    return;
                }
                Some(_) => continue,
                None => {
                    if slot.name.set(name).is_ok() {
                        slot.hist.record(value);
                        return;
                    }
                    // lost the registration race — the winner may have
                    // claimed this slot for *our* name
                    if slot.name.get().is_some_and(|&n| names_equal(n, name)) {
                        slot.hist.record(value);
                        return;
                    }
                }
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations dropped because the registry was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshots of every histogram with at least one observation,
    /// sorted by name.
    pub fn snapshot(&self) -> Vec<HistogramSnapshot> {
        let mut out: Vec<HistogramSnapshot> = self
            .slots
            .iter()
            .filter_map(|s| s.name.get().map(|&n| s.hist.snapshot(n)))
            .filter(|h| h.count > 0)
            .collect();
        out.sort_by_key(|h| h.name);
        out
    }

    /// Zeroes every histogram. Names stay registered (a name is a
    /// process-lifetime interned string; re-registering would race with
    /// concurrent recorders for no benefit).
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.hist.reset();
        }
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl Default for HistogramRegistry {
    fn default() -> Self {
        HistogramRegistry::new()
    }
}

/// Names are `&'static str` and usually literal-interned, so compare
/// the pointer first and fall back to content equality (distinct crates
/// may duplicate the literal).
fn names_equal(a: &'static str, b: &'static str) -> bool {
    std::ptr::eq(a.as_ptr(), b.as_ptr()) || a == b
}

/// Read-only view of one histogram at snapshot time.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping).
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Per-bucket observation counts; see [`HISTOGRAM_BUCKETS`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observed value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `p`-th percentile (0.0..=100.0): the upper bound of
    /// the bucket containing that rank, clamped to the observed max.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (ix, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(ix).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn records_and_snapshots() {
        let reg = HistogramRegistry::new();
        for v in [0u64, 1, 1, 2, 3, 8, 100] {
            reg.record("h", v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        let h = &snap[0];
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 115);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        assert!((h.mean() - 115.0 / 7.0).abs() < 1e-9);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(50.0), 3);
        assert_eq!(h.percentile(100.0), 100);
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        let reg = HistogramRegistry::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let reg = &reg;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        reg.record("shared", i + t);
                        reg.record("mine", t);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        let shared = snap.iter().find(|h| h.name == "shared").unwrap();
        assert_eq!(shared.count, 4000);
        let mine = snap.iter().find(|h| h.name == "mine").unwrap();
        assert_eq!(mine.count, 4000);
        assert_eq!(mine.max, 3);
        assert_eq!(reg.dropped(), 0);
    }

    #[test]
    fn overflowing_registry_counts_drops() {
        let reg = HistogramRegistry::new();
        // MAX_HISTOGRAMS distinct names fill the table...
        let names: Vec<&'static str> = (0..MAX_HISTOGRAMS + 1)
            .map(|i| Box::leak(format!("hist.{i}").into_boxed_str()) as &'static str)
            .collect();
        for &n in &names[..MAX_HISTOGRAMS] {
            reg.record(n, 1);
        }
        assert_eq!(reg.dropped(), 0);
        // ...the next name has nowhere to go
        reg.record(names[MAX_HISTOGRAMS], 1);
        assert_eq!(reg.dropped(), 1);
        // existing names still record fine
        reg.record(names[0], 2);
        assert_eq!(reg.snapshot()[0].count, 2);
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let reg = HistogramRegistry::new();
        reg.record("h", 9);
        reg.reset();
        assert!(reg.snapshot().is_empty(), "zero-count snapshots omitted");
        reg.record("h", 1);
        let snap = reg.snapshot();
        assert_eq!(snap[0].count, 1);
        assert_eq!(snap[0].min, 1);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = HistogramSnapshot {
            name: "empty",
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
    }
}
