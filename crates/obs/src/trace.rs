//! Export formats: Chrome `trace_event` JSON (loadable in
//! `chrome://tracing` or Perfetto) and JSON Lines metrics dumps.
//!
//! JSON is emitted by hand — the obs layer must stay std-only — but
//! both formats are strict JSON and round-trip through any parser.
//!
//! Spans carry ids, parent ids, and request correlation ids, so the
//! Chrome export reconstructs one causal tree per request: spans land
//! on their real thread lane (`tid` = [`crate::thread_ordinal`]),
//! parent/request ids ride in `args`, and
//! [`FlowPhase::Produce`]/[`FlowPhase::Consume`] pairs become
//! `ph:"s"`/`ph:"f"` flow arrows keyed by request id.

use crate::memory::MetricsSnapshot;
use crate::FlowPhase;
use std::fmt::Write as _;
use std::time::Duration;

/// One completed span as reported to a recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name.
    pub name: &'static str,
    /// Category (Chrome trace `cat` field).
    pub cat: &'static str,
    /// Offset from [`crate::epoch`].
    pub start: Duration,
    /// Span length.
    pub dur: Duration,
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span's id, if the span was nested.
    pub parent: Option<u64>,
    /// Correlation id of the enclosing request scope, if any.
    pub request: Option<u64>,
    /// Ordinal of the thread the span ran on.
    pub tid: u32,
}

/// One instantaneous event as reported to a recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event name.
    pub name: &'static str,
    /// Category.
    pub cat: &'static str,
    /// Offset from [`crate::epoch`].
    pub at: Duration,
    /// Optional payload (e.g. a tick number).
    pub value: Option<i64>,
    /// Ordinal of the thread the event fired on.
    pub tid: u32,
}

/// One side of a cross-thread request handoff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    /// The request correlation id being handed off.
    pub request: u64,
    /// Producing or consuming side.
    pub phase: FlowPhase,
    /// Offset from [`crate::epoch`].
    pub at: Duration,
    /// Ordinal of the thread this side ran on.
    pub tid: u32,
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a snapshot's spans, events, and flows in Chrome
/// `trace_event` format: complete (`"ph":"X"`) events for spans with
/// span/parent/request ids in `args`, instant (`"ph":"i"`) events for
/// point events, flow start/finish (`"ph":"s"`/`"ph":"f"`) pairs for
/// request handoffs, timestamps in microseconds since [`crate::epoch`].
pub fn chrome_trace_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for s in &snap.spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        push_json_string(&mut out, s.name);
        out.push_str(",\"cat\":");
        push_json_string(&mut out, s.cat);
        let _ = write!(
            out,
            ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            s.start.as_micros(),
            s.dur.as_micros().max(1),
            s.tid.max(1)
        );
        let _ = write!(out, ",\"args\":{{\"span_id\":{}", s.id);
        if let Some(p) = s.parent {
            let _ = write!(out, ",\"parent_id\":{p}");
        }
        if let Some(r) = s.request {
            let _ = write!(out, ",\"request_id\":{r}");
        }
        out.push_str("}}");
    }
    for e in &snap.events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        push_json_string(&mut out, e.name);
        out.push_str(",\"cat\":");
        push_json_string(&mut out, e.cat);
        let _ = write!(
            out,
            ",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":1,\"tid\":{}",
            e.at.as_micros(),
            e.tid.max(1)
        );
        if let Some(v) = e.value {
            let _ = write!(out, ",\"args\":{{\"value\":{v}}}");
        }
        out.push('}');
    }
    for f in &snap.flows {
        if !first {
            out.push(',');
        }
        first = false;
        // One flow arrow per request id: "s" on the producer lane,
        // "f" (binding to the enclosing slice, bp:"e") on the consumer.
        let ph = match f.phase {
            FlowPhase::Produce => "\"ph\":\"s\"",
            FlowPhase::Consume => "\"ph\":\"f\",\"bp\":\"e\"",
        };
        let _ = write!(
            out,
            "{{\"name\":\"request\",\"cat\":\"flow\",{},\"id\":{},\"ts\":{},\"pid\":1,\"tid\":{}}}",
            ph,
            f.request,
            f.at.as_micros(),
            f.tid.max(1)
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders a snapshot as JSON Lines: one object per metric with a
/// `"type"` discriminator (`counter` / `gauge` / `histogram` / `span`
/// / `event` / `flow`). Span and event times are in microseconds.
pub fn metrics_jsonl(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str("{\"type\":\"counter\",\"name\":");
        push_json_string(&mut out, name);
        let _ = writeln!(out, ",\"value\":{v}}}");
    }
    for (name, v) in &snap.gauges {
        out.push_str("{\"type\":\"gauge\",\"name\":");
        push_json_string(&mut out, name);
        let _ = writeln!(out, ",\"value\":{v}}}");
    }
    for h in &snap.histograms {
        out.push_str("{\"type\":\"histogram\",\"name\":");
        push_json_string(&mut out, h.name);
        let _ = writeln!(
            out,
            ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            h.count,
            h.sum,
            h.min,
            h.max,
            h.percentile(50.0),
            h.percentile(90.0),
            h.percentile(99.0)
        );
    }
    for s in &snap.spans {
        out.push_str("{\"type\":\"span\",\"name\":");
        push_json_string(&mut out, s.name);
        out.push_str(",\"cat\":");
        push_json_string(&mut out, s.cat);
        let _ = write!(
            out,
            ",\"ts_us\":{},\"dur_us\":{},\"id\":{}",
            s.start.as_micros(),
            s.dur.as_micros(),
            s.id
        );
        if let Some(p) = s.parent {
            let _ = write!(out, ",\"parent\":{p}");
        }
        if let Some(r) = s.request {
            let _ = write!(out, ",\"request\":{r}");
        }
        let _ = writeln!(out, ",\"tid\":{}}}", s.tid);
    }
    for e in &snap.events {
        out.push_str("{\"type\":\"event\",\"name\":");
        push_json_string(&mut out, e.name);
        out.push_str(",\"cat\":");
        push_json_string(&mut out, e.cat);
        let _ = write!(out, ",\"ts_us\":{}", e.at.as_micros());
        if let Some(v) = e.value {
            let _ = write!(out, ",\"value\":{v}");
        }
        out.push_str("}\n");
    }
    for f in &snap.flows {
        let phase = match f.phase {
            FlowPhase::Produce => "produce",
            FlowPhase::Consume => "consume",
        };
        let _ = writeln!(
            out,
            "{{\"type\":\"flow\",\"request\":{},\"phase\":\"{}\",\"ts_us\":{},\"tid\":{}}}",
            f.request,
            phase,
            f.at.as_micros(),
            f.tid
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryRecorder;
    use crate::Recorder;
    use crate::SpanData;

    fn sample_snapshot() -> MetricsSnapshot {
        let r = MemoryRecorder::new();
        r.counter_add("search.nodes_expanded", 12);
        r.gauge_set("sim.ready", 3);
        r.histogram_record("sim.block_ticks", 4);
        r.span_complete(SpanData {
            name: "feasibility.exact",
            cat: "search",
            start: Duration::from_micros(10),
            dur: Duration::from_micros(250),
            id: 2,
            parent: Some(1),
            request: Some(9),
            tid: 3,
        });
        r.event(
            "sim.fault_injected",
            "faults",
            Duration::from_micros(40),
            Some(7),
        );
        r.flow(9, FlowPhase::Produce, Duration::from_micros(5), 1);
        r.flow(9, FlowPhase::Consume, Duration::from_micros(8), 3);
        r.snapshot()
    }

    #[test]
    fn chrome_trace_has_expected_fields() {
        let json = chrome_trace_json(&sample_snapshot());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"feasibility.exact\""));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":250"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"span_id\":2"));
        assert!(json.contains("\"parent_id\":1"));
        assert!(json.contains("\"request_id\":9"));
        assert!(json.contains("\"args\":{\"value\":7}"));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\""));
        assert!(json.contains("\"id\":9"));
    }

    #[test]
    fn empty_snapshot_still_valid_shape() {
        let json = chrome_trace_json(&MetricsSnapshot::default());
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let jsonl = metrics_jsonl(&sample_snapshot());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines[0].contains("\"type\":\"counter\""));
        assert!(jsonl.contains("\"value\":12"));
        assert!(jsonl.contains("\"p90\":"));
        assert!(jsonl.contains("\"type\":\"flow\""));
        assert!(jsonl.contains("\"phase\":\"produce\""));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
