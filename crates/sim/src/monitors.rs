//! Monitor contention simulation.
//!
//! The naive process synthesis guards every shared functional element
//! with a monitor (\[HOAR 74\]); a process executing a guarded element
//! holds its monitor for the element's whole computation time, blocking
//! any other process that reaches an element guarded by the same
//! monitor — classic priority inversion. "We can reduce the size of
//! critical sections by software pipelining": after pipelining, each
//! unit-time sub-function is its own critical section, so the worst
//! blocking imposed on a high-priority process drops from the element's
//! full weight to one tick. This simulator measures exactly that.
//!
//! Semantics: tick-preemptive scheduling (EDF or RM); a job that has
//! begun a monitored element holds the monitor until the element
//! completes; a job whose *next* unit would enter a held monitor is not
//! runnable; each tick the highest-priority ready-but-blocked job
//! accrues one tick of blocking.

use crate::dynamic::Policy;
use crate::error::SimError;
use rtcg_core::model::{CommGraph, ElementId};
use rtcg_core::time::Time;
use rtcg_core::trace::{Slot, Trace};
use rtcg_process::ProcessSet;
use rtcg_synth::MonitorId;
use std::collections::BTreeMap;

/// Input to the monitor-aware simulator.
#[derive(Debug, Clone)]
pub struct MonitorSim<'a> {
    /// Process attributes.
    pub set: &'a ProcessSet,
    /// Element weights.
    pub comm: &'a CommGraph,
    /// Straight-line bodies (element sequences).
    pub bodies: &'a [Vec<ElementId>],
    /// Release instants per process.
    pub arrivals: &'a [Vec<Time>],
    /// Which elements are guarded, and by which monitor.
    pub monitored: &'a BTreeMap<ElementId, MonitorId>,
}

/// Per-process contention statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingStats {
    /// Process name.
    pub name: String,
    /// Jobs released.
    pub released: usize,
    /// Jobs that missed their deadline.
    pub missed: usize,
    /// Total ticks this process's top-priority job sat blocked on a
    /// monitor held by a lower-priority job.
    pub blocked_ticks: Time,
    /// Longest single blocking episode.
    pub max_blocking: Time,
}

/// Result of a monitor-aware simulation.
#[derive(Debug, Clone)]
pub struct MonitorOutcome {
    /// Execution trace.
    pub trace: Trace,
    /// Per-process statistics.
    pub stats: Vec<BlockingStats>,
}

impl MonitorOutcome {
    /// True iff no deadline was missed.
    pub fn no_misses(&self) -> bool {
        self.stats.iter().all(|s| s.missed == 0)
    }

    /// Worst blocking episode across all processes.
    pub fn worst_blocking(&self) -> Time {
        self.stats.iter().map(|s| s.max_blocking).max().unwrap_or(0)
    }
}

struct Job {
    proc_ix: usize,
    release: Time,
    abs_deadline: Time,
    slots: Vec<(ElementId, u32)>,
    progress: usize,
    seq: usize,
    current_block: Time,
}

impl Job {
    fn remaining(&self) -> usize {
        self.slots.len() - self.progress
    }

    fn next_slot(&self) -> (ElementId, u32) {
        self.slots[self.progress]
    }
}

/// Runs the monitor-aware simulation for `horizon` ticks under `policy`
/// (EDF or RM; other policies error with `ZeroHorizon`-style misuse is
/// not possible — they are simply mapped to their priority rules too).
pub fn simulate_with_monitors(
    input: &MonitorSim<'_>,
    policy: Policy,
    horizon: Time,
) -> Result<MonitorOutcome, SimError> {
    if horizon == 0 {
        return Err(SimError::ZeroHorizon);
    }
    let _span = rtcg_obs::span!("sim.monitors", "sim");
    let n = input.set.len();
    if input.bodies.len() != n {
        return Err(SimError::ArrivalStreamMismatch {
            got: input.bodies.len(),
            expected: n,
        });
    }
    if input.arrivals.len() != n {
        return Err(SimError::ArrivalStreamMismatch {
            got: input.arrivals.len(),
            expected: n,
        });
    }
    let mut expanded: Vec<Vec<(ElementId, u32)>> = Vec::with_capacity(n);
    for (ix, body) in input.bodies.iter().enumerate() {
        let mut slots = Vec::new();
        for &e in body {
            let w = input.comm.wcet(e)?;
            for k in 0..w {
                slots.push((e, k as u32));
            }
        }
        if slots.is_empty() {
            // a zero-slot job would pass the release and deadline checks
            // but have no next slot to run — reject up front
            return Err(SimError::EmptyProcessBody {
                process: input.set.processes()[ix].name.clone(),
            });
        }
        expanded.push(slots);
    }
    // rm_order/dm_order are permutations of 0..n: invert them once into
    // rank tables instead of a per-tick position scan
    let mut rm_rank = vec![0u64; n];
    let mut dm_rank = vec![0u64; n];
    for (pos, id) in input.set.rm_order().into_iter().enumerate() {
        rm_rank[id.index()] = pos as u64;
    }
    for (pos, id) in input.set.dm_order().into_iter().enumerate() {
        dm_rank[id.index()] = pos as u64;
    }

    let mut pending: Vec<Job> = Vec::new();
    let mut trace = Trace::new();
    let mut stats: Vec<BlockingStats> = input
        .set
        .processes()
        .iter()
        .map(|p| BlockingStats {
            name: p.name.clone(),
            released: 0,
            missed: 0,
            blocked_ticks: 0,
            max_blocking: 0,
        })
        .collect();
    let mut cursor = vec![0usize; n];
    let mut seq = 0usize;
    // monitor -> seq of the holding job
    let mut held: BTreeMap<MonitorId, usize> = BTreeMap::new();

    for now in 0..horizon {
        // releases
        for (ix, stream) in input.arrivals.iter().enumerate() {
            while cursor[ix] < stream.len() && stream[cursor[ix]] == now {
                pending.push(Job {
                    proc_ix: ix,
                    release: now,
                    abs_deadline: now + input.set.processes()[ix].deadline,
                    slots: expanded[ix].clone(),
                    progress: 0,
                    seq,
                    current_block: 0,
                });
                seq += 1;
                stats[ix].released += 1;
                cursor[ix] += 1;
            }
        }
        // deadline misses: abort, releasing any monitor held
        let mut i = 0;
        while i < pending.len() {
            if pending[i].abs_deadline <= now && pending[i].remaining() > 0 {
                stats[pending[i].proc_ix].missed += 1;
                let s = pending[i].seq;
                held.retain(|_, &mut holder| holder != s);
                pending.remove(i);
            } else {
                i += 1;
            }
        }
        if pending.is_empty() {
            trace.push_idle();
            continue;
        }
        // priority order of all pending jobs
        let prio = |j: &Job| -> (u64, usize) {
            match policy {
                Policy::Edf => (j.abs_deadline, j.seq),
                Policy::Rm => (rm_rank[j.proc_ix], j.seq),
                Policy::Dm => (dm_rank[j.proc_ix], j.seq),
                Policy::Llf => (
                    j.abs_deadline.saturating_sub(now + j.remaining() as u64),
                    j.seq,
                ),
                Policy::Fifo => (j.release, j.seq),
            }
        };
        let mut order: Vec<usize> = (0..pending.len()).collect();
        order.sort_by_key(|&ix| prio(&pending[ix]));

        // a job is runnable unless its next slot enters a monitor held
        // by a different job
        let runnable = |j: &Job, held: &BTreeMap<MonitorId, usize>| -> bool {
            let (elem, offset) = j.next_slot();
            if offset > 0 {
                return true; // continuing an element it already holds
            }
            match input.monitored.get(&elem) {
                Some(m) => held.get(m).is_none_or(|&holder| holder == j.seq),
                None => true,
            }
        };
        let chosen = order
            .iter()
            .copied()
            .enumerate()
            .find(|&(_, ix)| runnable(&pending[ix], &held));
        // blocking accounting: every job with higher priority than the
        // chosen one that was blocked on a monitor accrues a tick
        if let Some((chosen_pos, chosen_ix)) = chosen {
            for &ix in &order[..chosen_pos] {
                let j = &mut pending[ix];
                j.current_block += 1;
                rtcg_obs::counter!("sim.monitor_block_ticks");
                if j.current_block == 1 {
                    rtcg_obs::event!("sim.monitor_block", "sim", now);
                }
                let st = &mut stats[j.proc_ix];
                st.blocked_ticks += 1;
                st.max_blocking = st.max_blocking.max(j.current_block);
            }
            // run the chosen job one tick
            let job = &mut pending[chosen_ix];
            job.current_block = 0;
            let (elem, offset) = job.next_slot();
            let w = input.comm.wcet(elem)?;
            if offset == 0 {
                if let Some(&m) = input.monitored.get(&elem) {
                    held.insert(m, job.seq);
                }
            }
            trace.push_slot_raw(Slot::Busy {
                element: elem,
                offset,
            });
            job.progress += 1;
            if offset as u64 + 1 == w {
                // element finished: release its monitor
                if let Some(&m) = input.monitored.get(&elem) {
                    if held.get(&m) == Some(&job.seq) {
                        held.remove(&m);
                    }
                }
            }
            if job.remaining() == 0 {
                pending.remove(chosen_ix);
            }
        } else {
            // total deadlock cannot happen with properly nested single
            // monitors; defensive: idle
            trace.push_idle();
        }
    }
    rtcg_obs::counter!("sim.ticks", horizon);
    for st in &stats {
        if st.max_blocking > 0 {
            rtcg_obs::histogram!("sim.max_blocking", st.max_blocking);
        }
    }
    Ok(MonitorOutcome { trace, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_process::{Process, ProcessKind};

    /// Two processes sharing element `s` (weight w_s, monitored):
    /// lo (releases at 0, body [s, tail]) and hi (releases at 1, body
    /// [s]). hi has the earlier deadline → EDF prefers it, but lo holds
    /// the monitor for w_s ticks.
    type Scenario = (
        ProcessSet,
        CommGraph,
        Vec<Vec<ElementId>>,
        Vec<Vec<Time>>,
        BTreeMap<ElementId, MonitorId>,
    );

    fn setup(w_s: u64, pipelined: bool) -> Scenario {
        let mut comm = CommGraph::new();
        let mut monitored = BTreeMap::new();
        let mut lo_body = Vec::new();
        let mut hi_body = Vec::new();
        if pipelined {
            // w_s unit stages, each its own critical section under the
            // same monitor
            for k in 0..w_s {
                let st = comm.add_element(format!("s{k}"), 1).unwrap();
                monitored.insert(st, MonitorId(0));
                lo_body.push(st);
                hi_body.push(st);
            }
        } else {
            let s = comm.add_element("s", w_s).unwrap();
            monitored.insert(s, MonitorId(0));
            lo_body.push(s);
            hi_body.push(s);
        }
        let tail = comm.add_element("tail", 2).unwrap();
        lo_body.push(tail);
        let mut set = ProcessSet::new();
        set.add(Process {
            name: "lo".into(),
            wcet: w_s + 2,
            period: 100,
            deadline: 100,
            kind: ProcessKind::Sporadic,
        })
        .unwrap();
        set.add(Process {
            name: "hi".into(),
            wcet: w_s,
            period: 100,
            deadline: 20,
            kind: ProcessKind::Sporadic,
        })
        .unwrap();
        let arrivals = vec![vec![0], vec![1]];
        (set, comm, vec![lo_body, hi_body], arrivals, monitored)
    }

    fn run(w_s: u64, pipelined: bool) -> MonitorOutcome {
        let (set, comm, bodies, arrivals, monitored) = setup(w_s, pipelined);
        let input = MonitorSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
            monitored: &monitored,
        };
        simulate_with_monitors(&input, Policy::Edf, 60).unwrap()
    }

    #[test]
    fn atomic_critical_section_blocks_for_full_weight() {
        let out = run(4, false);
        // hi releases at 1 while lo is 1 tick into its 4-tick s → hi
        // blocks for the remaining 3 ticks
        let hi = &out.stats[1];
        assert_eq!(hi.max_blocking, 3, "{:?}", out.stats);
        assert!(out.no_misses());
    }

    #[test]
    fn pipelined_critical_sections_block_one_tick() {
        let out = run(4, true);
        let hi = &out.stats[1];
        assert!(
            hi.max_blocking <= 1,
            "pipelined blocking should be ≤ 1, got {:?}",
            out.stats
        );
        assert!(out.no_misses());
    }

    #[test]
    fn blocking_grows_with_section_weight() {
        for w in [2u64, 4, 6] {
            let atomic = run(w, false).stats[1].max_blocking;
            let piped = run(w, true).stats[1].max_blocking;
            assert_eq!(atomic, w - 1, "atomic w={w}");
            assert!(piped <= 1, "pipelined w={w}");
        }
    }

    #[test]
    fn unmonitored_elements_never_block() {
        let (set, comm, bodies, arrivals, _) = setup(4, false);
        let empty = BTreeMap::new();
        let input = MonitorSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
            monitored: &empty,
        };
        let out = simulate_with_monitors(&input, Policy::Edf, 60).unwrap();
        // without monitors, hi preempts mid-element: zero blocking
        assert_eq!(out.stats[1].blocked_ticks, 0);
    }

    #[test]
    fn monitor_released_on_deadline_abort() {
        // lo's job misses its deadline while holding the monitor; hi
        // must still get in afterwards
        let mut comm = CommGraph::new();
        let s = comm.add_element("s", 10).unwrap();
        let mut monitored = BTreeMap::new();
        monitored.insert(s, MonitorId(0));
        let mut set = ProcessSet::new();
        set.add(Process {
            name: "lo".into(),
            wcet: 10,
            period: 100,
            deadline: 10, // will start at 0, hi preempts → lo misses
            kind: ProcessKind::Sporadic,
        })
        .unwrap();
        set.add(Process {
            name: "hi".into(),
            wcet: 10,
            period: 100,
            deadline: 40,
            kind: ProcessKind::Sporadic,
        })
        .unwrap();
        let bodies = vec![vec![s], vec![s]];
        let arrivals: Vec<Vec<Time>> = vec![vec![0], vec![2]];
        let input = MonitorSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
            monitored: &monitored,
        };
        // EDF: lo's deadline (10) < hi's (42) → lo runs; but lo cannot
        // finish 10 ticks by t=10 if hi... actually lo CAN: it runs
        // 0..10 and completes exactly at its deadline. Use RM instead:
        // hi has shorter... simplest: give lo deadline 5 → aborted at 5
        let mut set2 = ProcessSet::new();
        set2.add(Process {
            name: "lo".into(),
            wcet: 5,
            period: 100,
            deadline: 5,
            kind: ProcessKind::Sporadic,
        })
        .unwrap();
        set2.add(Process {
            name: "hi".into(),
            wcet: 10,
            period: 100,
            deadline: 40,
            kind: ProcessKind::Sporadic,
        })
        .unwrap();
        // lo's body is 10 ticks of s but wcet 5 → it can never finish;
        // it is aborted at t=5 holding the monitor
        let input2 = MonitorSim {
            set: &set2,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
            monitored: &monitored,
        };
        let out = simulate_with_monitors(&input2, Policy::Edf, 60).unwrap();
        assert_eq!(out.stats[0].missed, 1);
        // hi completed despite lo's abort while holding the monitor
        assert_eq!(out.stats[1].missed, 0, "{:?}", out.stats);
        let _ = input;
    }

    #[test]
    fn empty_body_rejected_not_panicked() {
        // a zero-slot body used to survive release and deadline checks
        // and then panic indexing its (empty) slot list
        let (set, comm, mut bodies, arrivals, monitored) = setup(2, false);
        bodies[1].clear();
        let input = MonitorSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
            monitored: &monitored,
        };
        assert!(matches!(
            simulate_with_monitors(&input, Policy::Edf, 10),
            Err(SimError::EmptyProcessBody { ref process }) if process == "hi"
        ));
    }

    #[test]
    fn input_validation() {
        let (set, comm, bodies, _, monitored) = setup(2, false);
        let input = MonitorSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &[],
            monitored: &monitored,
        };
        assert!(matches!(
            simulate_with_monitors(&input, Policy::Edf, 10),
            Err(SimError::ArrivalStreamMismatch { .. })
        ));
    }
}
