//! Micro-dispatchers: the per-tick cost of run-time scheduling.
//!
//! "Even though optimal static schedules are hard to compute in general
//! … the run-time scheduler is very efficient once a feasible static
//! schedule has been found off-line." This module isolates exactly that
//! cost so E7 can measure it: the table-driven dispatcher does one array
//! read per tick; a dynamic EDF dispatcher maintains a binary heap of
//! ready jobs; an LLF dispatcher must rescan laxities every tick (laxity
//! changes as time passes, so a heap cannot be kept valid).

use rtcg_core::model::ElementId;
use rtcg_core::schedule::{Action, StaticSchedule};
use rtcg_core::time::Time;
use std::collections::BinaryHeap;

/// A per-tick dispatcher: returns what to run at each tick.
pub trait Dispatcher {
    /// Advance one tick and return the element to execute (or `None` to
    /// idle).
    fn next(&mut self) -> Option<ElementId>;
}

/// Table-driven dispatcher: O(1) array read per tick (round-robin over
/// the expanded static schedule).
#[derive(Debug, Clone)]
pub struct TableDispatcher {
    slots: Vec<Option<ElementId>>,
    pos: usize,
}

impl TableDispatcher {
    /// Expands a static schedule into per-tick slots. `wcet_of` supplies
    /// element weights.
    pub fn new(schedule: &StaticSchedule, mut wcet_of: impl FnMut(ElementId) -> Time) -> Self {
        let mut slots = Vec::new();
        for &a in schedule.actions() {
            match a {
                Action::Idle => slots.push(None),
                Action::Run(e) => {
                    for _ in 0..wcet_of(e).max(1) {
                        slots.push(Some(e));
                    }
                }
            }
        }
        // Counters go on construction, not in `next()`: E7 measures the
        // per-tick dispatch at nanosecond scale and even a guarded no-op
        // would distort it.
        rtcg_obs::counter!("dispatch.tables_built");
        rtcg_obs::counter!("dispatch.table_slots", slots.len() as u64);
        TableDispatcher { slots, pos: 0 }
    }

    /// Table length in ticks.
    pub fn period(&self) -> usize {
        self.slots.len()
    }
}

impl Dispatcher for TableDispatcher {
    fn next(&mut self) -> Option<ElementId> {
        let out = self.slots[self.pos];
        self.pos += 1;
        if self.pos == self.slots.len() {
            self.pos = 0;
        }
        out
    }
}

/// A synthetic ready job for the dynamic dispatchers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyJob {
    /// Element to run.
    pub element: ElementId,
    /// Absolute deadline.
    pub deadline: Time,
    /// Remaining work.
    pub remaining: Time,
    /// Release period (the job re-releases this long after its release).
    pub period: Time,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    deadline: Time,
    ix: usize,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-deadline-first
        other
            .deadline
            .cmp(&self.deadline)
            .then(other.ix.cmp(&self.ix))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// EDF dispatcher over a fixed set of periodic jobs: heap pop/push per
/// tick, O(log n).
#[derive(Debug, Clone)]
pub struct EdfDispatcher {
    jobs: Vec<ReadyJob>,
    heap: BinaryHeap<HeapEntry>,
    now: Time,
}

impl EdfDispatcher {
    /// Builds a dispatcher over synthetic periodic jobs (each re-released
    /// `period` after completion).
    pub fn new(jobs: Vec<ReadyJob>) -> Self {
        let heap = jobs
            .iter()
            .enumerate()
            .map(|(ix, j)| HeapEntry {
                deadline: j.deadline,
                ix,
            })
            .collect();
        rtcg_obs::counter!("dispatch.edf_jobs", jobs.len() as u64);
        EdfDispatcher { jobs, heap, now: 0 }
    }
}

impl Dispatcher for EdfDispatcher {
    fn next(&mut self) -> Option<ElementId> {
        self.now += 1;
        let entry = self.heap.pop()?;
        let job = &mut self.jobs[entry.ix];
        let elem = job.element;
        job.remaining = job.remaining.saturating_sub(1);
        if job.remaining == 0 {
            // re-release the next instance
            job.deadline += job.period;
            job.remaining = job.period / 2 + 1;
        }
        self.heap.push(HeapEntry {
            deadline: job.deadline,
            ix: entry.ix,
        });
        Some(elem)
    }
}

/// LLF dispatcher: linear scan per tick, O(n) (laxity decays with time,
/// invalidating any precomputed order).
#[derive(Debug, Clone)]
pub struct LlfDispatcher {
    jobs: Vec<ReadyJob>,
    now: Time,
}

impl LlfDispatcher {
    /// Builds a dispatcher over synthetic periodic jobs.
    pub fn new(jobs: Vec<ReadyJob>) -> Self {
        rtcg_obs::counter!("dispatch.llf_jobs", jobs.len() as u64);
        LlfDispatcher { jobs, now: 0 }
    }
}

impl Dispatcher for LlfDispatcher {
    fn next(&mut self) -> Option<ElementId> {
        self.now += 1;
        let now = self.now;
        let ix = self
            .jobs
            .iter()
            .enumerate()
            .min_by_key(|(i, j)| (j.deadline.saturating_sub(now + j.remaining), *i))
            .map(|(i, _)| i)?;
        let job = &mut self.jobs[ix];
        let elem = job.element;
        job.remaining = job.remaining.saturating_sub(1);
        if job.remaining == 0 {
            job.deadline += job.period;
            job.remaining = job.period / 2 + 1;
        }
        Some(elem)
    }
}

/// Builds `n` synthetic ready jobs for dispatcher benchmarks.
pub fn synthetic_jobs(n: usize) -> Vec<ReadyJob> {
    (0..n)
        .map(|i| ReadyJob {
            element: ElementId::new(i as u32),
            deadline: (i as Time + 2) * 3,
            remaining: (i as Time % 5) + 1,
            period: (i as Time % 7) * 2 + 4,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_dispatcher_cycles() {
        let e = ElementId::new(0);
        let s = StaticSchedule::new(vec![Action::Run(e), Action::Idle]);
        let mut d = TableDispatcher::new(&s, |_| 2);
        assert_eq!(d.period(), 3);
        assert_eq!(d.next(), Some(e));
        assert_eq!(d.next(), Some(e));
        assert_eq!(d.next(), None);
        // wraps around
        assert_eq!(d.next(), Some(e));
    }

    #[test]
    fn edf_dispatcher_picks_earliest_deadline() {
        let jobs = vec![
            ReadyJob {
                element: ElementId::new(0),
                deadline: 10,
                remaining: 3,
                period: 10,
            },
            ReadyJob {
                element: ElementId::new(1),
                deadline: 5,
                remaining: 2,
                period: 10,
            },
        ];
        let mut d = EdfDispatcher::new(jobs);
        assert_eq!(d.next(), Some(ElementId::new(1)));
        assert_eq!(d.next(), Some(ElementId::new(1)));
        // job 1 re-released with deadline 15; job 0 (dl 10) now earliest
        assert_eq!(d.next(), Some(ElementId::new(0)));
    }

    #[test]
    fn llf_dispatcher_picks_least_laxity() {
        let jobs = vec![
            ReadyJob {
                element: ElementId::new(0),
                deadline: 20,
                remaining: 1,
                period: 8,
            },
            ReadyJob {
                element: ElementId::new(1),
                deadline: 10,
                remaining: 8,
                period: 8,
            },
        ];
        // laxities at t=1: job0: 20-1-1=18, job1: 10-1-8=1 → job1
        let mut d = LlfDispatcher::new(jobs);
        assert_eq!(d.next(), Some(ElementId::new(1)));
    }

    #[test]
    fn dispatchers_never_stall_on_nonempty_jobs() {
        let mut edf = EdfDispatcher::new(synthetic_jobs(16));
        let mut llf = LlfDispatcher::new(synthetic_jobs(16));
        for _ in 0..10_000 {
            assert!(edf.next().is_some());
            assert!(llf.next().is_some());
        }
    }

    #[test]
    fn synthetic_jobs_well_formed() {
        let jobs = synthetic_jobs(32);
        assert_eq!(jobs.len(), 32);
        assert!(jobs.iter().all(|j| j.remaining >= 1 && j.period >= 4));
    }

    #[test]
    fn empty_dispatchers_idle() {
        let mut edf = EdfDispatcher::new(vec![]);
        assert_eq!(edf.next(), None);
        let mut llf = LlfDispatcher::new(vec![]);
        assert_eq!(llf.next(), None);
    }
}
