//! Data-freshness analysis over execution traces.
//!
//! The paper's closing research direction: "we can pose the problems of
//! maintaining the logical integrity of real-time systems in terms of
//! relations on the data values that are being passed along the edges of
//! the communication graph". The executable core of that idea is *data
//! age*: the execution semantics say a consumer uses "the latest output"
//! of each producer, so for every consumer instance and each in-channel
//! we can compute how stale the consumed value was — and for any
//! source→sink path, the end-to-end *reaction latency* (how old the
//! source sample embedded in a sink output can be).
//!
//! A control engineer reads these as the sample-age guarantees of the
//! synthesized schedule — the quantity that determines control-loop
//! phase margin.

use crate::error::SimError;
use rtcg_core::model::{CommGraph, ElementId};
use rtcg_core::time::Time;
use rtcg_core::trace::{Instance, Trace};

/// Age statistics of the values consumed by one element from one
/// producer over a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelFreshness {
    /// Producing element.
    pub from: ElementId,
    /// Consuming element.
    pub to: ElementId,
    /// Number of consumer instances that had a value available.
    pub samples: usize,
    /// Consumer instances that ran before any producer output existed.
    pub starved: usize,
    /// Worst age at consumption start: `consumer.start − producer.finish`
    /// of the latest completed producer instance.
    pub worst_age: Option<Time>,
    /// Sum of ages (for averaging).
    pub total_age: Time,
}

impl ChannelFreshness {
    /// Mean age over sampled consumptions.
    pub fn mean_age(&self) -> Option<f64> {
        if self.samples == 0 {
            None
        } else {
            Some(self.total_age as f64 / self.samples as f64)
        }
    }
}

/// Computes freshness for one communication channel over a trace: each
/// complete consumer instance uses the latest producer instance that
/// finished at or before the consumer's start (the paper's "latest
/// output" rule).
pub fn channel_freshness(
    trace: &Trace,
    comm: &CommGraph,
    from: ElementId,
    to: ElementId,
) -> Result<ChannelFreshness, SimError> {
    let w_from = comm.wcet(from)?;
    let w_to = comm.wcet(to)?;
    let by_elem = trace.instances_by_element();
    let empty: Vec<Instance> = Vec::new();
    let producers: Vec<&Instance> = by_elem
        .get(&from)
        .unwrap_or(&empty)
        .iter()
        .filter(|i| i.len == w_from)
        .collect();
    let consumers: Vec<&Instance> = by_elem
        .get(&to)
        .unwrap_or(&empty)
        .iter()
        .filter(|i| i.len == w_to)
        .collect();

    let mut out = ChannelFreshness {
        from,
        to,
        samples: 0,
        starved: 0,
        worst_age: None,
        total_age: 0,
    };
    for c in consumers {
        // latest producer finishing at or before the consumer's start
        let latest = producers
            .iter()
            .take_while(|p| p.finish() <= c.start)
            .last();
        match latest {
            Some(p) => {
                let age = c.start - p.finish();
                out.samples += 1;
                out.total_age += age;
                out.worst_age = Some(out.worst_age.map_or(age, |w| w.max(age)));
            }
            None => out.starved += 1,
        }
    }
    Ok(out)
}

/// Worst-case *reaction latency* of a producer→consumer chain over a
/// trace: the maximum, over complete sink instances (that were not
/// starved), of `sink.finish − source.finish` where the source value is
/// propagated through the chain by the latest-output rule at every hop.
///
/// `path` lists the elements of the chain (length ≥ 2). Returns `None`
/// when no sink instance had a fully-propagated value.
pub fn reaction_latency(
    trace: &Trace,
    comm: &CommGraph,
    path: &[ElementId],
) -> Result<Option<Time>, SimError> {
    if path.len() < 2 {
        return Ok(Some(0));
    }
    for &e in path {
        comm.wcet(e)?;
    }
    let by_elem = trace.instances_by_element();
    let empty: Vec<Instance> = Vec::new();
    let complete = |e: ElementId| -> Vec<Instance> {
        let w = comm.wcet(e).expect("validated");
        by_elem
            .get(&e)
            .unwrap_or(&empty)
            .iter()
            .filter(|i| i.len == w)
            .copied()
            .collect()
    };
    let sink_instances = complete(*path.last().expect("len >= 2"));
    let mut worst: Option<Time> = None;
    'sink: for sink in &sink_instances {
        // walk backwards: at each hop, the latest upstream instance
        // finishing at or before the downstream instance's start
        let mut downstream = *sink;
        for &hop in path[..path.len() - 1].iter().rev() {
            let ups = complete(hop);
            let latest = ups
                .iter()
                .take_while(|p| p.finish() <= downstream.start)
                .last()
                .copied();
            match latest {
                Some(p) => downstream = p,
                None => continue 'sink, // starved somewhere upstream
            }
        }
        let latency = sink.finish() - downstream.finish();
        worst = Some(worst.map_or(latency, |w| w.max(latency)));
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::model::CommGraph;

    fn comm() -> (CommGraph, ElementId, ElementId, ElementId) {
        let mut g = CommGraph::new();
        let a = g.add_element("a", 1).unwrap();
        let b = g.add_element("b", 1).unwrap();
        let c = g.add_element("c", 2).unwrap();
        g.add_channel(a, b).unwrap();
        g.add_channel(b, c).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn fresh_consumption_zero_age() {
        let (g, a, b, _) = comm();
        let mut t = Trace::new();
        t.push_execution(a, 1).unwrap(); // finishes 1
        t.push_execution(b, 1).unwrap(); // starts 1 — age 0
        let f = channel_freshness(&t, &g, a, b).unwrap();
        assert_eq!(f.samples, 1);
        assert_eq!(f.starved, 0);
        assert_eq!(f.worst_age, Some(0));
        assert_eq!(f.mean_age(), Some(0.0));
    }

    #[test]
    fn stale_consumption_measured() {
        let (g, a, b, _) = comm();
        let mut t = Trace::new();
        t.push_execution(a, 1).unwrap(); // [0,1)
        for _ in 0..4 {
            t.push_idle();
        }
        t.push_execution(b, 1).unwrap(); // starts 5 — age 4
        t.push_execution(a, 1).unwrap(); // [6,7)
        t.push_execution(b, 1).unwrap(); // starts 7 — age 0
        let f = channel_freshness(&t, &g, a, b).unwrap();
        assert_eq!(f.samples, 2);
        assert_eq!(f.worst_age, Some(4));
        assert_eq!(f.mean_age(), Some(2.0));
    }

    #[test]
    fn starvation_counted() {
        let (g, a, b, _) = comm();
        let mut t = Trace::new();
        t.push_execution(b, 1).unwrap(); // no producer yet
        t.push_execution(a, 1).unwrap();
        t.push_execution(b, 1).unwrap();
        let f = channel_freshness(&t, &g, a, b).unwrap();
        assert_eq!(f.starved, 1);
        assert_eq!(f.samples, 1);
    }

    #[test]
    fn latest_output_rule_takes_newest() {
        let (g, a, b, _) = comm();
        let mut t = Trace::new();
        t.push_execution(a, 1).unwrap(); // [0,1)
        t.push_execution(a, 1).unwrap(); // [1,2) — the latest
        t.push_idle();
        t.push_execution(b, 1).unwrap(); // starts 3 — age 1 (not 2)
        let f = channel_freshness(&t, &g, a, b).unwrap();
        assert_eq!(f.worst_age, Some(1));
    }

    #[test]
    fn in_flight_producer_not_used() {
        let (g, _, b, c) = comm();
        // c is mid-execution when b... reversed: use b -> c channel;
        // b finishes exactly at c's start → usable (finish ≤ start)
        let mut t = Trace::new();
        t.push_execution(b, 1).unwrap(); // [0,1)
        t.push_execution(c, 2).unwrap(); // starts 1
        let f = channel_freshness(&t, &g, b, c).unwrap();
        assert_eq!(f.samples, 1);
        assert_eq!(f.worst_age, Some(0));
    }

    #[test]
    fn reaction_latency_over_chain() {
        let (g, a, b, c) = comm();
        let mut t = Trace::new();
        t.push_execution(a, 1).unwrap(); // a: [0,1)
        t.push_idle();
        t.push_execution(b, 1).unwrap(); // b: [2,3) consumed a@[0,1)
        t.push_idle();
        t.push_execution(c, 2).unwrap(); // c: [4,6) consumed b@[2,3)
        let r = reaction_latency(&t, &g, &[a, b, c]).unwrap();
        // source a finishes 1, sink c finishes 6 → reaction 5
        assert_eq!(r, Some(5));
    }

    #[test]
    fn reaction_latency_none_when_starved() {
        let (g, a, b, c) = comm();
        let mut t = Trace::new();
        t.push_execution(b, 1).unwrap();
        t.push_execution(c, 2).unwrap(); // b had no 'a' input
        let r = reaction_latency(&t, &g, &[a, b, c]).unwrap();
        assert_eq!(r, None);
    }

    #[test]
    fn reaction_latency_picks_worst_sink() {
        let (g, a, b, _) = comm();
        let mut t = Trace::new();
        t.push_execution(a, 1).unwrap(); // [0,1)
        t.push_execution(b, 1).unwrap(); // [1,2): reaction 1
        for _ in 0..5 {
            t.push_idle();
        }
        t.push_execution(b, 1).unwrap(); // [7,8): still consumes a@[0,1) → 7
        let r = reaction_latency(&t, &g, &[a, b]).unwrap();
        assert_eq!(r, Some(7));
    }

    #[test]
    fn trivial_paths() {
        let (g, a, ..) = comm();
        let t = Trace::new();
        assert_eq!(reaction_latency(&t, &g, &[a]).unwrap(), Some(0));
        assert_eq!(reaction_latency(&t, &g, &[]).unwrap(), Some(0));
    }

    #[test]
    fn unknown_elements_error() {
        let (g, a, ..) = comm();
        let t = Trace::new();
        let ghost = ElementId::new(99);
        assert!(channel_freshness(&t, &g, a, ghost).is_err());
        assert!(reaction_latency(&t, &g, &[a, ghost]).is_err());
    }

    #[test]
    fn schedule_freshness_end_to_end() {
        // the quickstart-style pipeline: measure sample age under the
        // synthesized schedule
        use rtcg_core::model::ModelBuilder;
        use rtcg_core::task::TaskGraphBuilder;
        let mut bld = ModelBuilder::new();
        let s = bld.element("sense", 1);
        let f = bld.element("filter", 1);
        bld.channel(s, f);
        let tg = TaskGraphBuilder::new()
            .op("s", s)
            .op("f", f)
            .edge("s", "f")
            .build()
            .unwrap();
        bld.periodic("loop", tg, 8, 8);
        let m = bld.build().unwrap();
        let out = rtcg_core::heuristic::synthesize(&m).unwrap();
        let trace = out.schedule.expand(out.model().comm(), 10).unwrap();
        let ns = out.model().comm().lookup("sense").unwrap();
        let nf = out.model().comm().lookup("filter").unwrap();
        let fr = channel_freshness(&trace, out.model().comm(), ns, nf).unwrap();
        assert!(fr.samples > 0);
        assert!(fr.worst_age.unwrap() <= 8, "{fr:?}");
        let r = reaction_latency(&trace, out.model().comm(), &[ns, nf]).unwrap();
        assert!(r.unwrap() <= 16, "{r:?}");
    }
}
