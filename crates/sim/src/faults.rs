//! Fault injection over execution traces.
//!
//! The paper's conclusion proposes "devis\[ing\] more domain-specific
//! fault-tolerance techniques" on top of the model, reasoning about "the
//! data values that are being passed along the edges". The prerequisite
//! for any such technique is knowing how a schedule *degrades* when
//! executions are lost — an element instance that produces a garbage
//! value (a transient fault) is, for timing purposes, an execution that
//! never happened. This module injects exactly that: it erases selected
//! instances from a trace (turning their slots idle) and re-runs the
//! exact window analysis, measuring how many faults a schedule absorbs
//! before constraints start missing — its *fault margin*.

use crate::error::SimError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtcg_core::model::{ElementId, Model};
use rtcg_core::time::Time;
use rtcg_core::trace::{Slot, Trace};

/// Which instances to erase.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlan {
    /// Erase each instance independently with probability
    /// `permille/1000`, from a seeded RNG.
    Random {
        /// Per-instance drop probability in permille.
        permille: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Erase every instance of the element that *starts* in
    /// `[from, to)`.
    Window {
        /// Element whose instances are hit.
        element: ElementId,
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive).
        to: Time,
    },
    /// Erase the `k`-th instance (in start order) of the element.
    Nth {
        /// Element whose instance is hit.
        element: ElementId,
        /// 0-based instance index.
        k: usize,
    },
}

/// Applies the plan: returns the degraded trace and the number of
/// instances erased.
pub fn inject(trace: &Trace, plan: &FaultPlan) -> (Trace, usize) {
    let instances = trace.instances();
    let mut doomed: Vec<(Time, Time)> = Vec::new(); // [start, finish)
    match plan {
        FaultPlan::Random { permille, seed } => {
            let mut rng = ChaCha8Rng::seed_from_u64(*seed);
            for inst in &instances {
                if rng.gen_range(0..1000) < *permille {
                    doomed.push((inst.start, inst.finish()));
                }
            }
        }
        FaultPlan::Window { element, from, to } => {
            for inst in &instances {
                if inst.element == *element && inst.start >= *from && inst.start < *to {
                    doomed.push((inst.start, inst.finish()));
                }
            }
        }
        FaultPlan::Nth { element, k } => {
            if let Some(inst) = instances.iter().filter(|i| i.element == *element).nth(*k) {
                doomed.push((inst.start, inst.finish()));
            }
        }
    }
    let mut slots = trace.slots().to_vec();
    for &(a, b) in &doomed {
        rtcg_obs::event!("sim.fault_injected", "faults", a);
        for slot in slots.iter_mut().take(b as usize).skip(a as usize) {
            *slot = Slot::Idle;
        }
    }
    rtcg_obs::counter!("sim.faults_injected", doomed.len() as u64);
    (Trace::from_slots(slots), doomed.len())
}

/// Outcome of checking a degraded trace against a model's asynchronous
/// constraints over every window inside `[0, horizon)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationReport {
    /// Windows checked.
    pub windows: usize,
    /// Windows missing an execution after the faults.
    pub violated: usize,
}

impl DegradationReport {
    /// True when no window was violated.
    pub fn intact(&self) -> bool {
        self.violated == 0
    }
}

/// Checks every deadline window of every asynchronous constraint whose
/// window closes within the trace.
pub fn check_degradation(model: &Model, trace: &Trace) -> Result<DegradationReport, SimError> {
    let _span = rtcg_obs::span!("sim.check_degradation", "faults");
    let comm = model.comm();
    let mut windows = 0usize;
    let mut violated = 0usize;
    for (_, c) in model.asynchronous() {
        let d = c.deadline;
        if trace.len() < d {
            continue;
        }
        for s in 0..=(trace.len() - d) {
            windows += 1;
            if !trace.executed_within(&c.task, comm, s, s + d)? {
                violated += 1;
            }
        }
    }
    Ok(DegradationReport { windows, violated })
}

/// The *fault margin* of a schedule w.r.t. one element: the largest
/// number of consecutive instances of `element` (starting from the
/// `k`-th) that can be erased before some window of some asynchronous
/// constraint misses. Returns the count (capped at `cap`).
pub fn fault_margin(
    model: &Model,
    trace: &Trace,
    element: ElementId,
    cap: usize,
) -> Result<usize, SimError> {
    let _span = rtcg_obs::span!("sim.fault_margin", "faults");
    let total = trace
        .instances()
        .iter()
        .filter(|i| i.element == element)
        .count();
    // pick a mid-trace anchor so edge effects don't flatter the result
    let anchor = total / 3;
    for k in 0..cap.min(total.saturating_sub(anchor)) {
        // erase k+1 consecutive instances starting at the anchor; after
        // each erasure the surviving instances shift down, so erasing at
        // the fixed anchor index walks forward through consecutive ones
        let mut degraded = trace.clone();
        for _ in 0..=k {
            let (t, _) = inject(&degraded, &FaultPlan::Nth { element, k: anchor });
            degraded = t;
        }
        let report = check_degradation(model, &degraded)?;
        if !report.intact() {
            return Ok(k);
        }
    }
    Ok(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::model::ModelBuilder;
    use rtcg_core::schedule::{Action, StaticSchedule};
    use rtcg_core::task::TaskGraphBuilder;

    /// Single unit constraint, schedule [e φ], slack-rich deadline.
    fn setup(d: u64) -> (Model, Trace) {
        let mut b = ModelBuilder::new();
        let e = b.element("e", 1);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous("c", tg, d, d);
        let m = b.build().unwrap();
        let s = StaticSchedule::new(vec![Action::Run(e), Action::Idle]);
        let t = s.expand(m.comm(), 20).unwrap();
        (m, t)
    }

    #[test]
    fn nth_injection_erases_one_instance() {
        let (m, t) = setup(6);
        let e = m.comm().lookup("e").unwrap();
        let before = t.instances().len();
        let (t2, n) = inject(&t, &FaultPlan::Nth { element: e, k: 3 });
        assert_eq!(n, 1);
        assert_eq!(t2.instances().len(), before - 1);
        // the erased instance was at start 6 (period 2, k=3)
        assert!(t2.instances().iter().all(|i| i.start != 6));
    }

    #[test]
    fn window_injection_erases_range() {
        let (m, t) = setup(6);
        let e = m.comm().lookup("e").unwrap();
        let (t2, n) = inject(
            &t,
            &FaultPlan::Window {
                element: e,
                from: 4,
                to: 12,
            },
        );
        // instances start at 0,2,4,...: starts 4,6,8,10 erased
        assert_eq!(n, 4);
        assert!(t2.instances().iter().all(|i| i.start < 4 || i.start >= 12));
    }

    #[test]
    fn random_injection_is_seeded() {
        let (_, t) = setup(6);
        let plan = FaultPlan::Random {
            permille: 300,
            seed: 7,
        };
        let (a, na) = inject(&t, &plan);
        let (b, nb) = inject(&t, &plan);
        assert_eq!(na, nb);
        assert_eq!(a, b);
        assert!(na > 0, "300 permille over 20 instances should hit");
    }

    #[test]
    fn degradation_detected_exactly_when_window_breaks() {
        // d=3: instances every 2 ticks; erasing ONE creates a gap of 4
        // between surviving starts: window of 3 between them misses
        let (m, t) = setup(3);
        let e = m.comm().lookup("e").unwrap();
        assert!(check_degradation(&m, &t).unwrap().intact());
        let (t2, _) = inject(&t, &FaultPlan::Nth { element: e, k: 5 });
        let rep = check_degradation(&m, &t2).unwrap();
        assert!(!rep.intact(), "{rep:?}");

        // d=6: one erased instance still leaves an execution in every
        // 6-window (gap 4 + span 1 ≤ 6)
        let (m, t) = setup(6);
        let e = m.comm().lookup("e").unwrap();
        let (t2, _) = inject(&t, &FaultPlan::Nth { element: e, k: 5 });
        assert!(check_degradation(&m, &t2).unwrap().intact());
    }

    #[test]
    fn fault_margin_tracks_slack() {
        // more deadline slack → absorbs more consecutive faults
        let (m3, t3) = setup(3);
        let e3 = m3.comm().lookup("e").unwrap();
        let (m9, t9) = setup(9);
        let e9 = m9.comm().lookup("e").unwrap();
        let margin_tight = fault_margin(&m3, &t3, e3, 8).unwrap();
        let margin_loose = fault_margin(&m9, &t9, e9, 8).unwrap();
        assert!(
            margin_loose > margin_tight,
            "{margin_loose} vs {margin_tight}"
        );
        assert_eq!(margin_tight, 0, "d=3 tolerates no loss");
        // d=9: gap after k losses = 2(k+1); need 2(k+1)+1 ≤ 9 → k ≤ 3
        assert_eq!(margin_loose, 3);
    }

    #[test]
    fn empty_window_plan_erases_nothing() {
        let (m, t) = setup(6);
        let e = m.comm().lookup("e").unwrap();
        // from == to: the window is empty by construction
        let (t2, n) = inject(
            &t,
            &FaultPlan::Window {
                element: e,
                from: 8,
                to: 8,
            },
        );
        assert_eq!(n, 0);
        assert_eq!(t2, t);
        // permille 0: random plan that can never fire
        let (t3, n3) = inject(
            &t,
            &FaultPlan::Random {
                permille: 0,
                seed: 1,
            },
        );
        assert_eq!(n3, 0);
        assert_eq!(t3, t);
    }

    #[test]
    fn fault_at_tick_zero_erases_first_instance() {
        let (m, t) = setup(6);
        let e = m.comm().lookup("e").unwrap();
        let (t2, n) = inject(&t, &FaultPlan::Nth { element: e, k: 0 });
        assert_eq!(n, 1);
        // the very first slot is now idle, later instances untouched
        assert!(t2.instances().iter().all(|i| i.start != 0));
        assert_eq!(t2.instances().len(), t.instances().len() - 1);
        // a window anchored at tick 0 now only sees the survivor at 2
        assert!(check_degradation(&m, &t2).unwrap().intact());
    }

    #[test]
    fn all_slots_faulted_leaves_empty_trace() {
        let (m, t) = setup(6);
        let e = m.comm().lookup("e").unwrap();
        let (t2, n) = inject(
            &t,
            &FaultPlan::Window {
                element: e,
                from: 0,
                to: t.len(),
            },
        );
        assert_eq!(n, t.instances().len());
        assert!(t2.instances().is_empty());
        // every deadline window must now be violated
        let rep = check_degradation(&m, &t2).unwrap();
        assert!(rep.windows > 0);
        assert_eq!(rep.violated, rep.windows);
    }

    #[test]
    fn nth_beyond_last_instance_is_noop() {
        let (m, t) = setup(6);
        let e = m.comm().lookup("e").unwrap();
        let count = t.instances().len();
        let (t2, n) = inject(
            &t,
            &FaultPlan::Nth {
                element: e,
                k: count + 5,
            },
        );
        assert_eq!(n, 0);
        assert_eq!(t2, t);
    }

    #[test]
    fn fault_margin_with_zero_cap_or_absent_element() {
        let (m, t) = setup(9);
        let e = m.comm().lookup("e").unwrap();
        // cap 0: nothing to probe, margin is the cap
        assert_eq!(fault_margin(&m, &t, e, 0).unwrap(), 0);
        // an element with no instances in the trace: the probe loop has
        // nothing to erase, so the schedule absorbs the full cap
        let ghost = rtcg_core::model::ElementId::new(99);
        assert_eq!(fault_margin(&m, &t, ghost, 4).unwrap(), 4);
    }

    #[test]
    fn check_degradation_short_trace_checks_no_windows() {
        // deadline longer than the trace: no window closes inside it
        let (m, _) = setup(50);
        let short = {
            let s = StaticSchedule::new(vec![Action::Idle]);
            s.expand(m.comm(), 10).unwrap()
        };
        let rep = check_degradation(&m, &short).unwrap();
        assert_eq!(rep.windows, 0);
        assert!(rep.intact());
    }

    #[test]
    fn chain_constraints_degrade_through_any_member() {
        let mut b = ModelBuilder::new();
        let u = b.element("u", 1);
        let v = b.element("v", 1);
        b.channel(u, v);
        let tg = TaskGraphBuilder::new()
            .op("u", u)
            .op("v", v)
            .edge("u", "v")
            .build()
            .unwrap();
        // d = 3 is exactly the schedule's latency: zero slack, so any
        // lost execution must break some window
        b.asynchronous("chain", tg, 3, 3);
        let m = b.build().unwrap();
        let s = StaticSchedule::new(vec![Action::Run(u), Action::Run(v)]);
        let t = s.expand(m.comm(), 20).unwrap();
        assert!(check_degradation(&m, &t).unwrap().intact());
        // killing a v instance breaks windows even though u is intact
        let (t2, _) = inject(&t, &FaultPlan::Nth { element: v, k: 6 });
        assert!(!check_degradation(&m, &t2).unwrap().intact());
    }
}
