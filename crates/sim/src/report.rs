//! One reporting surface for every simulator backend.
//!
//! The crate grew three executors with three outcome types —
//! [`SimOutcome`](crate::dynamic::SimOutcome) (dynamic priority
//! scheduling), [`MonitorOutcome`](crate::monitors::MonitorOutcome)
//! (priority scheduling with monitor blocking), and
//! [`TableRun`](crate::table::TableRun) (the synthesized cyclic
//! executor) — and every consumer that wanted a verdict had to know
//! which one it was holding. [`SimReport`] is the convergence point:
//! did anything miss, what was the worst observed time, and one
//! uniform row per process/constraint for tabular display.

use crate::dynamic::SimOutcome;
use crate::monitors::MonitorOutcome;
use crate::table::TableRun;
use rtcg_core::time::Time;

/// One uniform line of a simulation report: a process (dynamic
/// simulators) or a constraint (table executor).
#[derive(Debug, Clone)]
pub struct SimRow {
    /// Process or constraint name.
    pub name: String,
    /// Jobs released / invocation windows whose deadline closed within
    /// the horizon.
    pub released: usize,
    /// Jobs or windows that met their deadline.
    pub met: usize,
    /// Jobs or windows that missed.
    pub missed: usize,
    /// Worst observed time for this row — response time, or longest
    /// blocking episode for monitor simulations. `None` when nothing
    /// completed.
    pub worst: Option<Time>,
}

/// Uniform verdict surface over simulation outcomes. Consumers (the
/// CLI, experiment binaries) can render any simulator's result without
/// matching on its concrete outcome type.
pub trait SimReport {
    /// One row per process/constraint, in declaration order.
    fn rows(&self) -> Vec<SimRow>;

    /// True iff nothing missed a deadline.
    fn no_misses(&self) -> bool {
        self.rows().iter().all(|r| r.missed == 0)
    }

    /// Worst observed time across all rows (see each implementor for
    /// what "worst" measures).
    fn worst_case(&self) -> Option<Time> {
        self.rows().iter().filter_map(|r| r.worst).max()
    }
}

impl SimReport for SimOutcome {
    fn rows(&self) -> Vec<SimRow> {
        self.stats
            .iter()
            .map(|s| SimRow {
                name: s.name.clone(),
                released: s.released,
                met: s.completed,
                missed: s.missed,
                worst: s.worst_response,
            })
            .collect()
    }
}

impl SimReport for MonitorOutcome {
    /// `worst` per row is the longest blocking episode, the quantity
    /// monitor simulations exist to measure.
    fn rows(&self) -> Vec<SimRow> {
        self.stats
            .iter()
            .map(|s| SimRow {
                name: s.name.clone(),
                released: s.released,
                met: s.released.saturating_sub(s.missed),
                missed: s.missed,
                worst: Some(s.max_blocking),
            })
            .collect()
    }
}

impl SimReport for TableRun {
    fn rows(&self) -> Vec<SimRow> {
        self.outcomes
            .iter()
            .map(|o| SimRow {
                name: o.name.clone(),
                released: o.checked,
                met: o.met,
                missed: o.missed,
                worst: o.worst_response,
            })
            .collect()
    }
}

/// Renders a report as the CLI's standard fixed-width listing.
pub fn render_rows(report: &dyn SimReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for r in report.rows() {
        let _ = writeln!(
            out,
            "  {:<16} invocations={:<6} met={:<6} missed={:<4} worst={}",
            r.name,
            r.released,
            r.met,
            r.missed,
            r.worst.map_or("-".to_string(), |w| w.to_string())
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ConstraintOutcome;
    use rtcg_core::trace::Trace;

    fn table_run(rows: Vec<ConstraintOutcome>) -> TableRun {
        TableRun {
            trace: Trace::new(),
            invocations: vec![Vec::new(); rows.len()],
            outcomes: rows,
        }
    }

    #[test]
    fn table_run_report_agrees_with_inherent_methods() {
        let run = table_run(vec![
            ConstraintOutcome {
                name: "a".into(),
                checked: 10,
                met: 10,
                missed: 0,
                worst_response: Some(3),
            },
            ConstraintOutcome {
                name: "b".into(),
                checked: 5,
                met: 4,
                missed: 1,
                worst_response: Some(7),
            },
        ]);
        assert_eq!(SimReport::no_misses(&run), run.all_met());
        assert_eq!(run.worst_case(), Some(7));
        let rows = run.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].missed, 1);
        let text = render_rows(&run);
        assert!(text.contains("a ") && text.contains("worst=7"), "{text}");
    }

    #[test]
    fn all_met_run_reports_no_misses() {
        let run = table_run(vec![ConstraintOutcome {
            name: "only".into(),
            checked: 3,
            met: 3,
            missed: 0,
            worst_response: None,
        }]);
        assert!(SimReport::no_misses(&run));
        assert_eq!(run.worst_case(), None);
    }
}
