//! Dynamic process-set simulation — the \[MOK 83\] run-time baseline.
//!
//! Simulates a single processor running a process set under a classical
//! policy (EDF, RM, DM, LLF, FIFO) with explicit job releases, producing
//! an execution trace, per-process response-time statistics and deadline
//! misses. Preemption granularity is configurable: per tick (classical
//! preemptive), at element boundaries (the paper's pipeline-ordering
//! discipline — an element execution is never torn), or none.

use crate::error::SimError;
use rtcg_core::model::{CommGraph, ElementId};
use rtcg_core::time::Time;
use rtcg_core::trace::{Slot, Trace};
use rtcg_process::ProcessSet;

/// Scheduling policy of the dynamic simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Earliest absolute deadline first.
    Edf,
    /// Fixed priority, rate-monotonic order.
    Rm,
    /// Fixed priority, deadline-monotonic order.
    Dm,
    /// Least laxity first (`deadline − now − remaining`).
    Llf,
    /// First released, first served.
    Fifo,
}

/// When a running job may be preempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preemption {
    /// At every tick.
    Tick,
    /// Only between element executions (pipeline ordering preserved).
    ElementBoundary,
    /// Never: a job runs to completion once started.
    None,
}

/// Simulation input: a process set with straight-line bodies.
#[derive(Debug, Clone)]
pub struct ProcessSim<'a> {
    /// The process attributes.
    pub set: &'a ProcessSet,
    /// Element-name weights (bodies execute elements of this graph).
    pub comm: &'a CommGraph,
    /// Straight-line body of each process (element executions in order);
    /// total weight must equal the process `wcet`.
    pub bodies: &'a [Vec<ElementId>],
    /// Release instants per process.
    pub arrivals: &'a [Vec<Time>],
}

/// Per-process simulation statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcStats {
    /// Process name.
    pub name: String,
    /// Jobs released within the horizon.
    pub released: usize,
    /// Jobs completed by their deadline.
    pub completed: usize,
    /// Jobs that missed their deadline (aborted at the deadline).
    pub missed: usize,
    /// Worst response time among completed jobs.
    pub worst_response: Option<Time>,
}

/// Result of a dynamic simulation.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The execution trace (horizon ticks).
    pub trace: Trace,
    /// Per-process statistics.
    pub stats: Vec<ProcStats>,
    /// Number of preemptions that occurred.
    pub preemptions: usize,
}

impl SimOutcome {
    /// True iff no job missed its deadline.
    pub fn no_misses(&self) -> bool {
        self.stats.iter().all(|s| s.missed == 0)
    }
}

struct Job {
    proc_ix: usize,
    release: Time,
    abs_deadline: Time,
    /// expanded unit slots of the body: (element, offset-within-element)
    slots: Vec<(ElementId, u32)>,
    progress: usize,
    seq: usize,
}

impl Job {
    fn remaining(&self) -> u64 {
        (self.slots.len() - self.progress) as u64
    }

    fn at_element_boundary(&self) -> bool {
        self.progress == 0 || self.progress >= self.slots.len() || self.slots[self.progress].1 == 0
    }
}

/// Runs the simulation for `horizon` ticks.
pub fn simulate_processes(
    input: &ProcessSim<'_>,
    policy: Policy,
    preemption: Preemption,
    horizon: Time,
) -> Result<SimOutcome, SimError> {
    if horizon == 0 {
        return Err(SimError::ZeroHorizon);
    }
    let _span = rtcg_obs::span!("sim.dynamic", "sim");
    let n = input.set.len();
    if input.bodies.len() != n {
        return Err(SimError::ArrivalStreamMismatch {
            got: input.bodies.len(),
            expected: n,
        });
    }
    if input.arrivals.len() != n {
        return Err(SimError::ArrivalStreamMismatch {
            got: input.arrivals.len(),
            expected: n,
        });
    }
    // expand bodies to unit slots, validating weights
    let mut expanded: Vec<Vec<(ElementId, u32)>> = Vec::with_capacity(n);
    for body in input.bodies {
        let mut slots = Vec::new();
        for &e in body {
            let w = input.comm.wcet(e)?;
            for k in 0..w {
                slots.push((e, k as u32));
            }
        }
        expanded.push(slots);
    }

    // fixed-priority tables
    let rm = input.set.rm_order();
    let dm = input.set.dm_order();
    let prio_of = |proc_ix: usize, order: &[rtcg_process::ProcessId]| {
        order
            .iter()
            .position(|id| id.index() == proc_ix)
            .expect("process in order")
    };

    let mut pending: Vec<Job> = Vec::new();
    let mut trace = Trace::new();
    let mut stats: Vec<ProcStats> = input
        .set
        .processes()
        .iter()
        .map(|p| ProcStats {
            name: p.name.clone(),
            released: 0,
            completed: 0,
            missed: 0,
            worst_response: None,
        })
        .collect();
    let mut preemptions = 0usize;
    // obs counters are accumulated locally and emitted once after the
    // loop: a recorder call per tick would dominate the ~50ns tick cost
    let mut idle_ticks = 0u64;
    let mut dispatch_decisions = 0u64;
    let mut seq = 0usize;
    let mut arrival_cursor = vec![0usize; n];
    let mut running: Option<usize> = None; // index into pending

    for now in 0..horizon {
        // releases
        for (ix, stream) in input.arrivals.iter().enumerate() {
            while arrival_cursor[ix] < stream.len() && stream[arrival_cursor[ix]] == now {
                let p = &input.set.processes()[ix];
                pending.push(Job {
                    proc_ix: ix,
                    release: now,
                    abs_deadline: now + p.deadline,
                    slots: expanded[ix].clone(),
                    progress: 0,
                    seq,
                });
                seq += 1;
                stats[ix].released += 1;
                arrival_cursor[ix] += 1;
            }
        }
        // abort jobs whose deadline passed (count as miss once)
        let mut i = 0;
        while i < pending.len() {
            if pending[i].abs_deadline <= now && pending[i].remaining() > 0 {
                stats[pending[i].proc_ix].missed += 1;
                let removed = i;
                pending.remove(removed);
                match running {
                    Some(r) if r == removed => running = None,
                    Some(r) if r > removed => running = Some(r - 1),
                    _ => {}
                }
            } else {
                i += 1;
            }
        }
        if pending.is_empty() {
            idle_ticks += 1;
            trace.push_idle();
            running = None;
            continue;
        }
        // pick the job to run this tick
        dispatch_decisions += 1;
        let preferred = pick(&pending, policy, now, &rm, &dm, &prio_of);
        let chosen = match (running, preemption) {
            (Some(r), Preemption::None) => r,
            (Some(r), Preemption::ElementBoundary) => {
                if pending[r].at_element_boundary() {
                    preferred
                } else {
                    r
                }
            }
            (Some(_), Preemption::Tick) | (None, _) => preferred,
        };
        if let Some(r) = running {
            if r != chosen && pending[r].remaining() > 0 {
                preemptions += 1;
                rtcg_obs::event!("sim.preemption", "sim", now);
            }
        }
        let job = &mut pending[chosen];
        let (elem, offset) = job.slots[job.progress];
        trace = {
            let mut t = trace;
            t.push_slot_raw(Slot::Busy {
                element: elem,
                offset,
            });
            t
        };
        job.progress += 1;
        if job.remaining() == 0 {
            let resp = now + 1 - job.release;
            rtcg_obs::histogram!("sim.response_time", resp);
            let ix = job.proc_ix;
            stats[ix].completed += 1;
            stats[ix].worst_response = Some(stats[ix].worst_response.map_or(resp, |w| w.max(resp)));
            pending.remove(chosen);
            running = None;
        } else {
            running = Some(chosen);
        }
    }
    rtcg_obs::counter!("sim.ticks", horizon);
    rtcg_obs::counter!("sim.idle_ticks", idle_ticks);
    rtcg_obs::counter!("sim.dispatch_decisions", dispatch_decisions);
    rtcg_obs::counter!("sim.preemptions", preemptions as u64);
    rtcg_obs::counter!(
        "sim.jobs_released",
        stats.iter().map(|s| s.released as u64).sum::<u64>()
    );
    rtcg_obs::counter!(
        "sim.jobs_completed",
        stats.iter().map(|s| s.completed as u64).sum::<u64>()
    );
    rtcg_obs::counter!(
        "sim.deadline_misses",
        stats.iter().map(|s| s.missed as u64).sum::<u64>()
    );
    Ok(SimOutcome {
        trace,
        stats,
        preemptions,
    })
}

fn pick(
    pending: &[Job],
    policy: Policy,
    now: Time,
    rm: &[rtcg_process::ProcessId],
    dm: &[rtcg_process::ProcessId],
    prio_of: &impl Fn(usize, &[rtcg_process::ProcessId]) -> usize,
) -> usize {
    let key = |j: &Job| -> (u64, usize) {
        match policy {
            Policy::Edf => (j.abs_deadline, j.seq),
            Policy::Rm => (prio_of(j.proc_ix, rm) as u64, j.seq),
            Policy::Dm => (prio_of(j.proc_ix, dm) as u64, j.seq),
            Policy::Llf => {
                let laxity = j.abs_deadline.saturating_sub(now + j.remaining());
                (laxity, j.seq)
            }
            Policy::Fifo => (j.release, j.seq),
        }
    };
    pending
        .iter()
        .enumerate()
        .min_by_key(|(_, j)| key(j))
        .map(|(i, _)| i)
        .expect("pending non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::model::CommGraph;
    use rtcg_process::{Process, ProcessKind, ProcessSet};

    fn setup(
        specs: &[(u64, u64, u64)],
    ) -> (ProcessSet, CommGraph, Vec<Vec<ElementId>>, Vec<Vec<Time>>) {
        let mut comm = CommGraph::new();
        let mut set = ProcessSet::new();
        let mut bodies = Vec::new();
        let mut arrivals = Vec::new();
        for (i, &(w, p, d)) in specs.iter().enumerate() {
            let e = comm.add_element(format!("e{i}"), w).unwrap();
            set.add(Process {
                name: format!("p{i}"),
                wcet: w,
                period: p,
                deadline: d,
                kind: ProcessKind::Periodic,
            })
            .unwrap();
            bodies.push(vec![e]);
            arrivals.push((0..).map(|k| k * p).take_while(|&t| t < 10_000).collect());
        }
        (set, comm, bodies, arrivals)
    }

    fn run(
        specs: &[(u64, u64, u64)],
        policy: Policy,
        preemption: Preemption,
        horizon: Time,
    ) -> SimOutcome {
        let (set, comm, bodies, arrivals) = setup(specs);
        let input = ProcessSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
        };
        simulate_processes(&input, policy, preemption, horizon).unwrap()
    }

    #[test]
    fn single_process_runs_cleanly() {
        let out = run(&[(2, 5, 5)], Policy::Edf, Preemption::Tick, 50);
        assert!(out.no_misses());
        assert_eq!(out.stats[0].released, 10);
        assert_eq!(out.stats[0].completed, 10);
        assert_eq!(out.stats[0].worst_response, Some(2));
        assert_eq!(out.preemptions, 0);
    }

    #[test]
    fn edf_schedules_full_utilization() {
        // U = 1/2 + 1/2: EDF fine, RM fine here (harmonic)
        let out = run(&[(1, 2, 2), (2, 4, 4)], Policy::Edf, Preemption::Tick, 400);
        assert!(out.no_misses(), "{:?}", out.stats);
    }

    #[test]
    fn rm_misses_where_edf_succeeds() {
        // classic: (2,5),(4,10)... U = 0.8; try the known RM-failing set
        // (3,6),(4,9)? U=0.944: RM unschedulable, EDF schedulable.
        let specs = &[(3, 6, 6), (4, 9, 9)];
        let edf = run(specs, Policy::Edf, Preemption::Tick, 1800);
        assert!(edf.no_misses(), "EDF: {:?}", edf.stats);
        let rm = run(specs, Policy::Rm, Preemption::Tick, 1800);
        assert!(!rm.no_misses(), "RM should miss: {:?}", rm.stats);
    }

    #[test]
    fn llf_matches_edf_optimality() {
        let specs = &[(3, 6, 6), (4, 9, 9)];
        let llf = run(specs, Policy::Llf, Preemption::Tick, 1800);
        assert!(llf.no_misses(), "{:?}", llf.stats);
    }

    #[test]
    fn fifo_is_fragile() {
        // a long job released just before a tight one starves it
        let mut comm = CommGraph::new();
        let long = comm.add_element("long", 5).unwrap();
        let short = comm.add_element("short", 1).unwrap();
        let mut set = ProcessSet::new();
        set.add(Process {
            name: "long".into(),
            wcet: 5,
            period: 100,
            deadline: 100,
            kind: ProcessKind::Sporadic,
        })
        .unwrap();
        set.add(Process {
            name: "short".into(),
            wcet: 1,
            period: 100,
            deadline: 2,
            kind: ProcessKind::Sporadic,
        })
        .unwrap();
        let bodies = vec![vec![long], vec![short]];
        let arrivals = vec![vec![0], vec![1]];
        let input = ProcessSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
        };
        let fifo = simulate_processes(&input, Policy::Fifo, Preemption::Tick, 50).unwrap();
        assert_eq!(fifo.stats[1].missed, 1, "{:?}", fifo.stats);
        let edf = simulate_processes(&input, Policy::Edf, Preemption::Tick, 50).unwrap();
        assert!(edf.no_misses(), "{:?}", edf.stats);
    }

    #[test]
    fn preemption_counted_and_boundary_respected() {
        // long low-priority job released at t=3 (just before the short
        // job's t=4 release) + frequent short high-priority job
        let (set, comm, bodies, _) = setup(&[(1, 4, 4), (6, 24, 24)]);
        let arrivals = vec![
            (0..60).map(|k| k * 4).collect::<Vec<Time>>(),
            vec![3, 27, 51],
        ];
        let input = ProcessSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
        };
        // tick preemption: the 6-tick element is torn, short job meets
        let tick = simulate_processes(&input, Policy::Edf, Preemption::Tick, 240).unwrap();
        assert!(tick.preemptions > 0);
        assert!(tick.no_misses(), "{:?}", tick.stats);
        // element-boundary preemption: the 6-tick element is atomic, so a
        // short job released one tick after it starts waits 5 ticks and
        // completes with response 6 > 4 → misses appear
        let nb = simulate_processes(&input, Policy::Edf, Preemption::ElementBoundary, 240).unwrap();
        assert!(!nb.no_misses(), "{:?}", nb.stats);
    }

    #[test]
    fn multi_element_bodies_traced_in_order() {
        let mut comm = CommGraph::new();
        let a = comm.add_element("a", 1).unwrap();
        let b = comm.add_element("b", 2).unwrap();
        let mut set = ProcessSet::new();
        set.add(Process {
            name: "p".into(),
            wcet: 3,
            period: 10,
            deadline: 10,
            kind: ProcessKind::Periodic,
        })
        .unwrap();
        let bodies = vec![vec![a, b]];
        let arrivals = vec![vec![0]];
        let input = ProcessSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
        };
        let out = simulate_processes(&input, Policy::Edf, Preemption::Tick, 10).unwrap();
        let insts = out.trace.instances();
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0].element, a);
        assert_eq!(insts[1].element, b);
        assert_eq!(insts[1].len, 2);
        assert!(out.trace.is_pipeline_ordered());
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let (set, comm, bodies, _) = setup(&[(1, 4, 4)]);
        let input = ProcessSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &[],
        };
        assert!(matches!(
            simulate_processes(&input, Policy::Edf, Preemption::Tick, 10),
            Err(SimError::ArrivalStreamMismatch { .. })
        ));
    }

    #[test]
    fn zero_horizon_rejected() {
        let (set, comm, bodies, arrivals) = setup(&[(1, 4, 4)]);
        let input = ProcessSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
        };
        assert!(matches!(
            simulate_processes(&input, Policy::Edf, Preemption::Tick, 0),
            Err(SimError::ZeroHorizon)
        ));
    }

    #[test]
    fn idle_when_no_work() {
        let (set, comm, bodies, _) = setup(&[(1, 4, 4)]);
        let arrivals = vec![vec![]];
        let input = ProcessSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
        };
        let out = simulate_processes(&input, Policy::Edf, Preemption::Tick, 5).unwrap();
        assert_eq!(out.trace.len(), 5);
        assert!(out.trace.instances().is_empty());
    }

    #[test]
    fn response_time_matches_analysis() {
        // cross-validate the simulator against response-time analysis
        let specs = &[(1, 4, 4), (2, 6, 6), (3, 13, 13)];
        let out = run(specs, Policy::Rm, Preemption::Tick, 13 * 6 * 4);
        assert!(out.no_misses());
        let (set, ..) = setup(specs);
        let order = set.rm_order();
        for (ix, s) in out.stats.iter().enumerate() {
            let rta = rtcg_process::response_time(&set, &order, rtcg_process::ProcessId(ix as u32))
                .unwrap()
                .unwrap();
            assert!(
                s.worst_response.unwrap() <= rta,
                "{}: sim {} > rta {}",
                s.name,
                s.worst_response.unwrap(),
                rta
            );
        }
    }
}
