//! # rtcg-sim — discrete-time execution simulation
//!
//! The run-time half of the methodology: given a synthesized artifact (a
//! static schedule table or a set of processes), *run* it against
//! invocation streams and verify the timing constraints actually hold.
//!
//! * [`invocation`] — invocation-stream generators: periodic, sporadic at
//!   maximum rate (the adversarial pattern latency analysis assumes),
//!   seeded-random sporadic, and bursty sporadic.
//! * [`table`] — the table-driven cyclic executor generated from a
//!   feasible static schedule, with online verification that every
//!   invocation's deadline window contains an execution of its task
//!   graph.
//! * [`dynamic`] — a preemptive/non-preemptive process simulator running
//!   EDF, RM, DM, LLF or FIFO over a \[MOK 83\] process set: job
//!   releases, response times, deadline misses.
//! * [`dispatch`] — micro-dispatchers (table lookup vs heap-based EDF vs
//!   scan-based LLF) isolating the per-tick scheduling cost that the
//!   paper's "the run-time scheduler is very efficient" claim is about
//!   (benchmarked in E7).
//! * [`freshness`] — data-age and reaction-latency analysis over traces:
//!   the executable core of the paper's "logical integrity as relations
//!   on data values passed along the edges" research direction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatch;
pub mod dynamic;
pub mod error;
pub mod faults;
pub mod freshness;
pub mod gantt;
pub mod invocation;
pub mod monitors;
pub mod report;
pub mod table;

pub use dispatch::{Dispatcher, EdfDispatcher, LlfDispatcher, TableDispatcher};
pub use dynamic::{simulate_processes, Policy, Preemption, ProcessSim, SimOutcome};
pub use error::SimError;
pub use faults::{check_degradation, fault_margin, inject, DegradationReport, FaultPlan};
pub use freshness::{channel_freshness, reaction_latency, ChannelFreshness};
pub use gantt::render_gantt;
pub use invocation::InvocationPattern;
pub use monitors::{simulate_with_monitors, BlockingStats, MonitorOutcome, MonitorSim};
pub use report::{render_rows, SimReport, SimRow};
pub use table::{run_table_executor, TableRun};
