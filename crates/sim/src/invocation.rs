//! Invocation-stream generators.
//!
//! A timing constraint is exercised by a stream of invocation instants.
//! Periodic constraints are invoked every `p` from time 0; asynchronous
//! constraints may be invoked "at any integral time instant t with the
//! provision that two successive invocations […] must be at least p time
//! units apart". The patterns here cover the cases the experiments need:
//! the adversarial maximum-rate pattern (which latency analysis is tight
//! against), seeded-random sporadic traffic, and bursts.

use crate::error::SimError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtcg_core::time::Time;

/// An invocation pattern for one constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum InvocationPattern {
    /// Invoked every `period` ticks starting at `offset`.
    Periodic {
        /// Period.
        period: Time,
        /// First invocation instant.
        offset: Time,
    },
    /// Sporadic at the maximum legal rate: every `separation` ticks from
    /// `offset` — the worst case.
    SporadicMaxRate {
        /// Minimum separation.
        separation: Time,
        /// First invocation instant.
        offset: Time,
    },
    /// Sporadic with random gaps: after each invocation the next gap is
    /// uniform in `[separation, separation + spread]`, from a seeded RNG.
    SporadicRandom {
        /// Minimum separation.
        separation: Time,
        /// Maximum extra delay on top of the separation.
        spread: Time,
        /// RNG seed (streams are reproducible).
        seed: u64,
    },
    /// Bursts of `burst_len` invocations `separation` apart, then a quiet
    /// gap of `quiet` ticks.
    SporadicBurst {
        /// Minimum separation within a burst.
        separation: Time,
        /// Invocations per burst.
        burst_len: usize,
        /// Quiet time between bursts.
        quiet: Time,
    },
}

impl InvocationPattern {
    /// Generates all invocation instants strictly below `horizon`.
    pub fn generate(&self, horizon: Time) -> Result<Vec<Time>, SimError> {
        if horizon == 0 {
            return Err(SimError::ZeroHorizon);
        }
        let mut out = Vec::new();
        match *self {
            InvocationPattern::Periodic { period, offset }
            | InvocationPattern::SporadicMaxRate {
                separation: period,
                offset,
            } => {
                let mut t = offset;
                while t < horizon {
                    out.push(t);
                    t += period.max(1);
                }
            }
            InvocationPattern::SporadicRandom {
                separation,
                spread,
                seed,
            } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut t: Time = rng.gen_range(0..=separation.max(1));
                while t < horizon {
                    out.push(t);
                    let gap = separation + rng.gen_range(0..=spread);
                    t += gap.max(1);
                }
            }
            InvocationPattern::SporadicBurst {
                separation,
                burst_len,
                quiet,
            } => {
                let mut t: Time = 0;
                'outer: loop {
                    for _ in 0..burst_len.max(1) {
                        if t >= horizon {
                            break 'outer;
                        }
                        out.push(t);
                        t += separation.max(1);
                    }
                    t += quiet;
                    if t >= horizon {
                        break;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Verifies the minimum-separation contract of a stream.
    pub fn respects_separation(stream: &[Time], separation: Time) -> bool {
        stream.windows(2).all(|w| w[1] - w[0] >= separation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_stream() {
        let p = InvocationPattern::Periodic {
            period: 5,
            offset: 2,
        };
        assert_eq!(p.generate(20).unwrap(), vec![2, 7, 12, 17]);
    }

    #[test]
    fn max_rate_stream() {
        let p = InvocationPattern::SporadicMaxRate {
            separation: 4,
            offset: 0,
        };
        let s = p.generate(13).unwrap();
        assert_eq!(s, vec![0, 4, 8, 12]);
        assert!(InvocationPattern::respects_separation(&s, 4));
    }

    #[test]
    fn random_stream_reproducible_and_legal() {
        let p = InvocationPattern::SporadicRandom {
            separation: 3,
            spread: 4,
            seed: 42,
        };
        let a = p.generate(200).unwrap();
        let b = p.generate(200).unwrap();
        assert_eq!(a, b, "seeded streams are reproducible");
        assert!(!a.is_empty());
        assert!(InvocationPattern::respects_separation(&a, 3));
        assert!(a.iter().all(|&t| t < 200));

        let c = InvocationPattern::SporadicRandom {
            separation: 3,
            spread: 4,
            seed: 43,
        }
        .generate(200)
        .unwrap();
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn burst_stream_shape() {
        let p = InvocationPattern::SporadicBurst {
            separation: 2,
            burst_len: 3,
            quiet: 10,
        };
        let s = p.generate(40).unwrap();
        // bursts at 0,2,4 then next burst starts at 4+2+10=16: 16,18,20; 32,34,36
        assert_eq!(s, vec![0, 2, 4, 16, 18, 20, 32, 34, 36]);
        assert!(InvocationPattern::respects_separation(&s, 2));
    }

    #[test]
    fn zero_horizon_rejected() {
        let p = InvocationPattern::Periodic {
            period: 5,
            offset: 0,
        };
        assert_eq!(p.generate(0), Err(SimError::ZeroHorizon));
    }

    #[test]
    fn degenerate_parameters_terminate() {
        // separation 0 is clamped to 1 so generation terminates
        let p = InvocationPattern::SporadicMaxRate {
            separation: 0,
            offset: 0,
        };
        let s = p.generate(5).unwrap();
        assert_eq!(s.len(), 5);
        let p = InvocationPattern::SporadicBurst {
            separation: 0,
            burst_len: 0,
            quiet: 0,
        };
        let s = p.generate(5).unwrap();
        assert!(!s.is_empty());
    }
}
