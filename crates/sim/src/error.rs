//! Error type for the simulation crate.

use std::fmt;

/// Errors produced by simulators and generators.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Horizon must be positive.
    ZeroHorizon,
    /// The number of arrival streams did not match the number of
    /// processes/constraints.
    ArrivalStreamMismatch {
        /// Streams supplied.
        got: usize,
        /// Streams expected.
        expected: usize,
    },
    /// A process body expanded to zero execution slots — such a job
    /// could never start, let alone finish.
    EmptyProcessBody {
        /// Name of the offending process.
        process: String,
    },
    /// A process body referenced an element missing from the graph.
    Model(rtcg_core::ModelError),
    /// A process-set error.
    Process(rtcg_process::ProcessError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ZeroHorizon => write!(f, "simulation horizon must be positive"),
            SimError::ArrivalStreamMismatch { got, expected } => {
                write!(f, "expected {expected} arrival streams, got {got}")
            }
            SimError::EmptyProcessBody { process } => {
                write!(
                    f,
                    "process `{process}` has an empty body (zero execution slots)"
                )
            }
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::Process(e) => write!(f, "process error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            SimError::Process(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rtcg_core::ModelError> for SimError {
    fn from(e: rtcg_core::ModelError) -> Self {
        SimError::Model(e)
    }
}

impl From<rtcg_process::ProcessError> for SimError {
    fn from(e: rtcg_process::ProcessError) -> Self {
        SimError::Process(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SimError::ZeroHorizon.to_string().contains("horizon"));
        let e = SimError::ArrivalStreamMismatch {
            got: 1,
            expected: 3,
        };
        assert!(e.to_string().contains('3'));
    }
}
