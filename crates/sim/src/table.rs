//! The table-driven cyclic executor, with online constraint verification.
//!
//! This is the run-time system the paper's synthesis produces: a static
//! schedule repeated round-robin. [`run_table_executor`] runs it against
//! explicit invocation streams and verifies that every invocation's
//! deadline window `[t, t+d]` contains an execution of the constraint's
//! task graph — the end-to-end check that the off-line guarantee
//! (latency ≤ d) really covers arbitrary legal invocation patterns.

use crate::error::SimError;
use crate::invocation::InvocationPattern;
use rtcg_core::model::Model;
use rtcg_core::schedule::StaticSchedule;
use rtcg_core::time::Time;
use rtcg_core::trace::Trace;

/// Per-constraint outcome of a table run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintOutcome {
    /// Constraint name.
    pub name: String,
    /// Invocations whose windows closed within the horizon.
    pub checked: usize,
    /// Windows containing an execution.
    pub met: usize,
    /// Windows missing an execution.
    pub missed: usize,
    /// Worst observed response (completion − invocation), if any window
    /// was met.
    pub worst_response: Option<Time>,
}

/// Result of running the table executor.
#[derive(Debug, Clone)]
pub struct TableRun {
    /// The generated execution trace (≥ horizon ticks).
    pub trace: Trace,
    /// Invocation instants per constraint.
    pub invocations: Vec<Vec<Time>>,
    /// Per-constraint outcomes.
    pub outcomes: Vec<ConstraintOutcome>,
}

impl TableRun {
    /// True iff no constraint missed any window.
    pub fn all_met(&self) -> bool {
        self.outcomes.iter().all(|o| o.missed == 0)
    }

    /// Total windows checked.
    pub fn total_checked(&self) -> usize {
        self.outcomes.iter().map(|o| o.checked).sum()
    }
}

/// Runs the cyclic executor for at least `horizon` ticks and verifies
/// each constraint against its invocation pattern. `patterns` must have
/// one entry per model constraint, in declaration order.
pub fn run_table_executor(
    model: &Model,
    schedule: &StaticSchedule,
    patterns: &[InvocationPattern],
    horizon: Time,
) -> Result<TableRun, SimError> {
    if horizon == 0 {
        return Err(SimError::ZeroHorizon);
    }
    let _span = rtcg_obs::span!("sim.table_executor", "sim");
    if patterns.len() != model.constraints().len() {
        return Err(SimError::ArrivalStreamMismatch {
            got: patterns.len(),
            expected: model.constraints().len(),
        });
    }
    let comm = model.comm();
    let duration = schedule.duration(comm)?;
    if duration == 0 {
        // an empty schedule has nothing to repeat; the repetition count
        // below would divide by zero
        return Err(SimError::Model(rtcg_core::ModelError::EmptySchedule));
    }
    let max_d = model
        .constraints()
        .iter()
        .map(|c| c.deadline)
        .max()
        .unwrap_or(0);
    // expand far enough that every window closing before `horizon` is
    // fully recorded
    let need = horizon + max_d + duration;
    let reps = (need / duration + 1) as usize;
    let trace = schedule.expand(comm, reps)?;

    let mut invocations = Vec::with_capacity(patterns.len());
    let mut outcomes = Vec::with_capacity(patterns.len());
    for (c, pattern) in model.constraints().iter().zip(patterns) {
        let stream = pattern.generate(horizon)?;
        let mut met = 0usize;
        let mut missed = 0usize;
        let mut worst: Option<Time> = None;
        for &t in &stream {
            match trace.earliest_completion(&c.task, comm, t)? {
                Some(done) if done <= t + c.deadline => {
                    met += 1;
                    let resp = done - t;
                    rtcg_obs::histogram!("sim.response_time", resp);
                    worst = Some(worst.map_or(resp, |w: Time| w.max(resp)));
                }
                _ => missed += 1,
            }
        }
        rtcg_obs::counter!("sim.windows_checked", stream.len() as u64);
        rtcg_obs::counter!("sim.windows_missed", missed as u64);
        outcomes.push(ConstraintOutcome {
            name: c.name.clone(),
            checked: stream.len(),
            met,
            missed,
            worst_response: worst,
        });
        invocations.push(stream);
    }
    rtcg_obs::counter!("sim.ticks", horizon);
    Ok(TableRun {
        trace,
        invocations,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::heuristic::synthesize;
    use rtcg_core::model::ModelBuilder;
    use rtcg_core::schedule::Action;
    use rtcg_core::task::TaskGraphBuilder;

    fn simple_model(d: Time) -> Model {
        let mut b = ModelBuilder::new();
        let e = b.element("e", 1);
        let tg = TaskGraphBuilder::new().op("e", e).build().unwrap();
        b.asynchronous("c", tg, d, d);
        b.build().unwrap()
    }

    #[test]
    fn feasible_schedule_meets_all_invocations() {
        let m = simple_model(4);
        let e = m.comm().lookup("e").unwrap();
        let s = StaticSchedule::new(vec![Action::Run(e), Action::Idle]);
        // adversarial max-rate invocations
        let run = run_table_executor(
            &m,
            &s,
            &[InvocationPattern::SporadicMaxRate {
                separation: 4,
                offset: 0,
            }],
            200,
        )
        .unwrap();
        assert!(run.all_met(), "{:?}", run.outcomes);
        assert!(run.total_checked() >= 40);
        assert!(run.outcomes[0].worst_response.unwrap() <= 4);
    }

    #[test]
    fn infeasible_schedule_misses() {
        let m = simple_model(2);
        let e = m.comm().lookup("e").unwrap();
        // [e φ φ φ]: latency 5 > 2 → adversarial invocations miss
        let s = StaticSchedule::new(vec![
            Action::Run(e),
            Action::Idle,
            Action::Idle,
            Action::Idle,
        ]);
        let run = run_table_executor(
            &m,
            &s,
            &[InvocationPattern::SporadicMaxRate {
                separation: 2,
                offset: 0,
            }],
            100,
        )
        .unwrap();
        assert!(!run.all_met());
        assert!(run.outcomes[0].missed > 0);
    }

    #[test]
    fn offsets_shift_invocations_but_guarantee_holds() {
        // the latency guarantee is offset-independent: any offset works
        let m = simple_model(4);
        let e = m.comm().lookup("e").unwrap();
        let s = StaticSchedule::new(vec![Action::Run(e), Action::Idle]);
        for offset in 0..8 {
            let run = run_table_executor(
                &m,
                &s,
                &[InvocationPattern::SporadicMaxRate {
                    separation: 4,
                    offset,
                }],
                100,
            )
            .unwrap();
            assert!(run.all_met(), "offset {offset}");
        }
    }

    #[test]
    fn random_invocations_within_guarantee() {
        let m = simple_model(5);
        let e = m.comm().lookup("e").unwrap();
        let s = StaticSchedule::new(vec![Action::Run(e), Action::Idle]);
        for seed in 0..10 {
            let run = run_table_executor(
                &m,
                &s,
                &[InvocationPattern::SporadicRandom {
                    separation: 5,
                    spread: 7,
                    seed,
                }],
                500,
            )
            .unwrap();
            assert!(run.all_met(), "seed {seed}: {:?}", run.outcomes);
        }
    }

    #[test]
    fn synthesized_mok_example_survives_bursts() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let out = synthesize(&m).unwrap();
        let model = out.model();
        // periodic constraints follow their period; the z toggle bursts
        let patterns: Vec<InvocationPattern> = model
            .constraints()
            .iter()
            .map(|c| {
                if c.is_periodic() {
                    InvocationPattern::Periodic {
                        period: c.period,
                        offset: 0,
                    }
                } else {
                    InvocationPattern::SporadicMaxRate {
                        separation: c.period,
                        offset: 3,
                    }
                }
            })
            .collect();
        let run = run_table_executor(model, &out.schedule, &patterns, 1000).unwrap();
        assert!(run.all_met(), "{:?}", run.outcomes);
    }

    #[test]
    fn empty_schedule_rejected_not_divide_by_zero() {
        let m = simple_model(4);
        let s = StaticSchedule::new(vec![]);
        assert!(matches!(
            run_table_executor(
                &m,
                &s,
                &[InvocationPattern::Periodic {
                    period: 4,
                    offset: 0,
                }],
                100,
            ),
            Err(SimError::Model(rtcg_core::ModelError::EmptySchedule))
        ));
    }

    #[test]
    fn pattern_count_mismatch_rejected() {
        let m = simple_model(4);
        let e = m.comm().lookup("e").unwrap();
        let s = StaticSchedule::new(vec![Action::Run(e)]);
        assert!(matches!(
            run_table_executor(&m, &s, &[], 100),
            Err(SimError::ArrivalStreamMismatch { .. })
        ));
    }

    #[test]
    fn trace_is_pipeline_ordered() {
        let m = simple_model(4);
        let e = m.comm().lookup("e").unwrap();
        let s = StaticSchedule::new(vec![Action::Run(e), Action::Idle]);
        let run = run_table_executor(
            &m,
            &s,
            &[InvocationPattern::Periodic {
                period: 4,
                offset: 0,
            }],
            50,
        )
        .unwrap();
        assert!(run.trace.is_pipeline_ordered());
    }
}
