//! ASCII Gantt rendering of execution traces.
//!
//! CONSORT had a graphics front end; the terminal equivalent for this
//! library is a per-element timeline — one row per functional element,
//! one column per tick — used by the CLI and the examples to make
//! synthesized schedules inspectable at a glance.

use crate::error::SimError;
use rtcg_core::model::CommGraph;
use rtcg_core::time::Time;
use rtcg_core::trace::{Slot, Trace};
use std::fmt::Write;

/// Renders `trace[from..to)` as an ASCII Gantt chart. Each element used
/// in the window gets a row; `#` marks the first tick of an execution
/// instance, `=` continuation ticks, `.` idle. A tick ruler is printed
/// every 10 columns. Errors if the trace executes an element the graph
/// does not contain.
pub fn render_gantt(
    trace: &Trace,
    comm: &CommGraph,
    from: Time,
    to: Time,
) -> Result<String, SimError> {
    let to = to.min(trace.len());
    let from = from.min(to);
    let width = (to - from) as usize;
    let mut rows: Vec<(String, Vec<u8>)> = Vec::new();
    let mut row_of = std::collections::BTreeMap::new();
    for t in from..to {
        if let Some(Slot::Busy { element, offset }) = trace.slot(t) {
            let ix = match row_of.get(&element) {
                Some(&ix) => ix,
                None => {
                    rows.push((comm.name(element)?.to_string(), vec![b'.'; width]));
                    row_of.insert(element, rows.len() - 1);
                    rows.len() - 1
                }
            };
            rows[ix].1[(t - from) as usize] = if offset == 0 { b'#' } else { b'=' };
        }
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    // ruler
    let _ = write!(out, "{:>name_w$} ", "tick");
    for col in 0..width {
        let t = from + col as Time;
        out.push(if t.is_multiple_of(10) { '|' } else { ' ' });
    }
    out.push('\n');
    for (name, cells) in &rows {
        let _ = write!(out, "{name:>name_w$} ");
        out.push_str(std::str::from_utf8(cells).expect("ascii"));
        out.push('\n');
    }
    if rows.is_empty() {
        let _ = writeln!(out, "{:>name_w$} (all idle)", "");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::model::CommGraph;

    fn setup() -> (CommGraph, rtcg_core::ElementId, rtcg_core::ElementId) {
        let mut g = CommGraph::new();
        let a = g.add_element("alpha", 1).unwrap();
        let b = g.add_element("b", 2).unwrap();
        (g, a, b)
    }

    #[test]
    fn rows_show_instances() {
        let (g, a, b) = setup();
        let mut t = Trace::new();
        t.push_execution(a, 1).unwrap();
        t.push_execution(b, 2).unwrap();
        t.push_idle();
        let s = render_gantt(&t, &g, 0, 4).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3); // ruler + 2 rows
        let alpha = lines.iter().find(|l| l.contains("alpha")).unwrap();
        assert!(alpha.ends_with("#..."));
        let brow = lines
            .iter()
            .find(|l| l.trim_start().starts_with("b "))
            .unwrap();
        assert!(brow.ends_with(".#=."));
    }

    #[test]
    fn window_clamps_to_trace() {
        let (g, a, _) = setup();
        let mut t = Trace::new();
        t.push_execution(a, 1).unwrap();
        let s = render_gantt(&t, &g, 0, 100).unwrap();
        assert!(s.contains('#'));
        let s = render_gantt(&t, &g, 50, 100).unwrap();
        assert!(s.contains("idle") || !s.contains('#'));
    }

    #[test]
    fn empty_trace_renders_idle() {
        let (g, ..) = setup();
        let t = Trace::new();
        let s = render_gantt(&t, &g, 0, 10).unwrap();
        assert!(s.contains("all idle"));
    }

    #[test]
    fn ruler_marks_decades() {
        let (g, a, _) = setup();
        let mut t = Trace::new();
        for _ in 0..25 {
            t.push_execution(a, 1).unwrap();
        }
        let s = render_gantt(&t, &g, 0, 25).unwrap();
        let ruler = s.lines().next().unwrap();
        // pipes at ticks 0, 10, 20 (columns offset by the name gutter)
        assert_eq!(ruler.matches('|').count(), 3);
    }

    #[test]
    fn deterministic_row_order() {
        let (g, a, b) = setup();
        let mut t = Trace::new();
        t.push_execution(b, 2).unwrap();
        t.push_execution(a, 1).unwrap();
        let s = render_gantt(&t, &g, 0, 3).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        // sorted by name: alpha before b
        let ia = lines.iter().position(|l| l.contains("alpha")).unwrap();
        let ib = lines
            .iter()
            .position(|l| l.trim_start().starts_with("b "))
            .unwrap();
        assert!(ia < ib);
    }
}
