//! Adversarial decode suite for the snapshot layer: corrupt, truncated,
//! and stale files must produce structured errors or counted skips —
//! never a panic, never a poisoned shard, never a half-merged section
//! visible as a wrong verdict.

use rtcg_core::feasibility::SearchConfig;
use rtcg_engine::{AnalysisRequest, Engine, SnapshotError};

fn exact_req() -> AnalysisRequest {
    AnalysisRequest {
        search: SearchConfig {
            max_len: 6,
            node_budget: 2_000_000,
        },
        ..AnalysisRequest::exact()
    }
}

/// A snapshot with at least one result section (two entries: heuristic
/// + exact) and one candidate section, from the Mok example.
fn snapshot_bytes() -> Vec<u8> {
    let (m, _) = rtcg_core::mok_example::default_model();
    let engine = Engine::new();
    engine.analyze(&m, &AnalysisRequest::default()).unwrap();
    engine.analyze(&m, &exact_req()).unwrap();
    let (bytes, save) = engine.snapshot_bytes(&[]).unwrap();
    assert!(save.sections >= 2);
    bytes
}

/// The engine still answers correctly and no shard lock was ever
/// poisoned.
fn assert_unpoisoned(engine: &Engine) {
    let (m, _) = rtcg_core::mok_example::default_model();
    let report = engine.analyze(&m, &AnalysisRequest::default()).unwrap();
    let cold = rtcg_engine::analyze_once(&m, &AnalysisRequest::default()).unwrap();
    assert_eq!(
        report.verdict.schedule().map(|s| s.actions().to_vec()),
        cold.verdict.schedule().map(|s| s.actions().to_vec())
    );
    let stats = engine.stats();
    assert_eq!(
        stats
            .shards
            .iter()
            .map(|s| s.poison_recoveries)
            .sum::<u64>(),
        0
    );
}

/// Truncation at *every* byte offset — which covers every section
/// boundary and every mid-structure cut — must return a structured
/// error (or, for offsets that happen to decode, an `Ok` with counted
/// skips). Nothing may panic; partially merged earlier sections are
/// permitted (atomicity is per-section) but must never corrupt later
/// analysis.
#[test]
fn truncation_at_every_offset_is_structured() {
    let bytes = snapshot_bytes();
    let engine = Engine::new();
    let mut errors = 0usize;
    for cut in 0..bytes.len() {
        match engine.load_snapshot_bytes(&bytes[..cut], &mut []) {
            Ok(_) => {}
            Err(
                SnapshotError::Truncated(_)
                | SnapshotError::Malformed(_)
                | SnapshotError::BadMagic
                | SnapshotError::UnsupportedVersion(_),
            ) => errors += 1,
            Err(SnapshotError::Io(e)) => panic!("no file io involved: {e}"),
        }
    }
    assert!(errors > 0, "short prefixes must error");
    // the full file still loads after all that abuse
    let full = engine.load_snapshot_bytes(&bytes, &mut []).unwrap();
    assert_eq!(full.sections_skipped, 0);
    assert_unpoisoned(&engine);
}

/// Every single-byte flip is either a structured error or a load whose
/// stale sections were skipped and counted — never a panic. (The
/// digest check makes silently accepting corrupted content into a
/// *section merge* require an FNV collision.)
#[test]
fn byte_flips_never_panic() {
    let bytes = snapshot_bytes();
    let engine = Engine::new();
    for pos in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x01;
        match engine.load_snapshot_bytes(&corrupt, &mut []) {
            Ok(_) | Err(_) => {}
        }
    }
    assert_unpoisoned(&engine);
}

/// Flipped magic and version bytes are the two distinguished header
/// errors.
#[test]
fn header_flips_are_distinguished_errors() {
    let bytes = snapshot_bytes();
    let engine = Engine::new();
    for pos in 0..8 {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x40;
        assert!(
            matches!(
                engine.load_snapshot_bytes(&corrupt, &mut []),
                Err(SnapshotError::BadMagic)
            ),
            "magic byte {pos}"
        );
    }
    for pos in 8..12 {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x40;
        assert!(
            matches!(
                engine.load_snapshot_bytes(&corrupt, &mut []),
                Err(SnapshotError::UnsupportedVersion(_))
            ),
            "version byte {pos}"
        );
    }
    assert_unpoisoned(&engine);
}

/// A digest-mismatched section is skipped and counted while the rest
/// of the file merges normally.
#[test]
fn digest_mismatch_skips_only_that_section() {
    let (m, _) = rtcg_core::mok_example::default_model();
    let bytes = snapshot_bytes();
    let digest = m.content_digest().to_le_bytes();
    let pos = bytes
        .windows(8)
        .position(|w| w == digest)
        .expect("digest bytes present");
    let mut corrupt = bytes.clone();
    corrupt[pos] ^= 0x01;

    let engine = Engine::new();
    let load = engine.load_snapshot_bytes(&corrupt, &mut []).unwrap();
    assert_eq!(load.sections_skipped, 1);
    assert!(load.sections_loaded >= 1, "other sections still merge");
    assert_eq!(engine.stats().snapshot.sections_skipped, 1);
    assert_unpoisoned(&engine);
}

/// Appending trailing garbage after the final section is malformed —
/// the section count makes clean-EOF distinguishable from truncation.
#[test]
fn trailing_garbage_is_malformed() {
    let mut bytes = snapshot_bytes();
    bytes.push(0xAA);
    let engine = Engine::new();
    assert!(matches!(
        engine.load_snapshot_bytes(&bytes, &mut []),
        Err(SnapshotError::Malformed(_))
    ));
    assert_unpoisoned(&engine);
}

/// An empty file and a few tiny prefixes have precise errors.
#[test]
fn tiny_inputs_are_structured() {
    let engine = Engine::new();
    assert!(matches!(
        engine.load_snapshot_bytes(&[], &mut []),
        Err(SnapshotError::Truncated(_))
    ));
    assert!(matches!(
        engine.load_snapshot_bytes(b"RTCG", &mut []),
        Err(SnapshotError::Truncated(_))
    ));
    assert!(matches!(
        engine.load_snapshot_bytes(b"NOTASNAP\x01\x00\x00\x00\x00\x00\x00\x00", &mut []),
        Err(SnapshotError::BadMagic)
    ));
    assert_unpoisoned(&engine);
}
