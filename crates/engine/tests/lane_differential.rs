//! Differential pinning of the `--lanes 1` path against the
//! single-processor path.
//!
//! A one-lane request must be *bit-identical* to the scalar pipeline:
//! same verdict variant, same schedule, same search counters. The core
//! guarantees this by delegating `find_feasible_lanes(m, 1, ..)` to
//! `find_feasible`, and the engine by routing `lanes == 1` through the
//! scalar dispatch — these tests pin both contracts over randomized
//! small models so a future lane-path refactor cannot silently skew
//! the single-lane case.

use proptest::prelude::*;
use rtcg_core::feasibility::{find_feasible, find_feasible_lanes, LaneSchedule, SearchConfig};
use rtcg_core::heuristic::synthesize;
use rtcg_core::model::{Model, ModelBuilder};
use rtcg_core::task::TaskGraphBuilder;
use rtcg_engine::{AnalysisRequest, Engine, Verdict};

/// Small mixed model: 1–3 elements each with a single-op asynchronous
/// constraint, an optional 2-chain constraint, and an optional periodic
/// constraint on the first element (same family the engine differential
/// suite uses).
fn build_model(elems: &[(u64, u64)], chain_d: Option<u64>, periodic_d: Option<u64>) -> Model {
    let mut b = ModelBuilder::new();
    let mut ids = Vec::new();
    for (i, &(w, d)) in elems.iter().enumerate() {
        let e = b.element(&format!("e{i}"), w);
        ids.push(e);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous(&format!("c{i}"), tg, d, d);
    }
    if let (Some(d), true) = (chain_d, ids.len() >= 2) {
        b.channel(ids[0], ids[1]);
        let tg = TaskGraphBuilder::new()
            .op("x", ids[0])
            .op("y", ids[1])
            .chain(&["x", "y"])
            .build()
            .unwrap();
        b.asynchronous("chain", tg, d, d);
    }
    if let Some(d) = periodic_d {
        let tg = TaskGraphBuilder::new().op("p", ids[0]).build().unwrap();
        b.periodic("beat", tg, 6, d.min(6));
    }
    b.build().expect("generated model is valid")
}

/// `(elements, chain deadline, periodic deadline, max_len)`
type Spec = (Vec<(u64, u64)>, Option<u64>, Option<u64>, usize);

fn spec() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec((1u64..=2, 2u64..=9), 1..=3),
        (any::<bool>(), 4u64..=12),
        (any::<bool>(), 2u64..=6),
        1usize..=5,
    )
        .prop_map(|(elems, (wc, cd), (wp, pd), max_len)| {
            (elems, wc.then_some(cd), wp.then_some(pd), max_len)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Core contract: the one-lane search is field-for-field identical
    /// to the scalar exact search — schedule (as a single row) and all
    /// four counters.
    #[test]
    fn one_lane_search_is_bit_identical_to_scalar(
        (elems, chain_d, periodic_d, max_len) in spec()
    ) {
        let model = build_model(&elems, chain_d, periodic_d);
        let cfg = SearchConfig { max_len, node_budget: u64::MAX / 2 };
        let scalar = find_feasible(&model, cfg).unwrap();
        let lanes = find_feasible_lanes(&model, 1, cfg).unwrap();

        prop_assert_eq!(
            scalar.schedule.as_ref().map(LaneSchedule::single),
            lanes.schedule,
            "schedule divergence"
        );
        prop_assert_eq!(scalar.candidates_checked, lanes.candidates_checked);
        prop_assert_eq!(scalar.nodes_visited, lanes.nodes_visited);
        prop_assert_eq!(scalar.nodes_pruned, lanes.nodes_pruned);
        prop_assert_eq!(scalar.exhausted_bound, lanes.exhausted_bound);
    }

    /// Engine contract: an exact request with `lanes: 1` never produces
    /// a lane verdict and matches the scalar cold search bit for bit.
    #[test]
    fn engine_lanes_one_exact_matches_scalar_path(
        (elems, chain_d, periodic_d, max_len) in spec()
    ) {
        let model = build_model(&elems, chain_d, periodic_d);
        let mut req = AnalysisRequest::exact();
        req.search = SearchConfig { max_len, node_budget: u64::MAX / 2 };
        req.lanes = 1;
        let engine = Engine::new();
        let report = engine.analyze(&model, &req).unwrap();
        let cold = find_feasible(&model, req.search).unwrap();
        let stats = report.search.expect("exact mode reports stats");

        prop_assert_eq!(cold.schedule.as_ref(), report.verdict.schedule());
        prop_assert_eq!(cold.candidates_checked, stats.candidates_checked);
        prop_assert_eq!(cold.nodes_visited, stats.nodes_visited);
        prop_assert_eq!(cold.exhausted_bound, stats.exhausted_bound);
        prop_assert!(
            !matches!(report.verdict, Verdict::FeasibleLanes { .. }),
            "a one-lane request must stay on the scalar verdict surface"
        );
        prop_assert!(report.verdict.lane_schedule().is_none());
    }

    /// Heuristic mode with `lanes: 1` agrees with cold synthesis on the
    /// verdict and the schedule.
    #[test]
    fn engine_lanes_one_heuristic_matches_scalar_path(
        (elems, chain_d, periodic_d, _) in spec()
    ) {
        let model = build_model(&elems, chain_d, periodic_d);
        let req = AnalysisRequest {
            lanes: 1,
            ..Default::default()
        };
        let engine = Engine::new();
        let report = engine.analyze(&model, &req).unwrap();
        match (synthesize(&model), &report.verdict) {
            (Ok(out), Verdict::Feasible { schedule, strategy }) => {
                prop_assert_eq!(&out.schedule, schedule);
                prop_assert_eq!(out.strategy, *strategy);
            }
            (Err(_), Verdict::Infeasible { .. } | Verdict::Unknown { .. }) => {}
            (cold, verdict) => prop_assert!(
                false,
                "divergence: cold {:?} vs engine {:?}",
                cold.map(|o| o.strategy),
                verdict
            ),
        }
    }
}
