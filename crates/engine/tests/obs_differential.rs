//! Differential test: engine verdicts must be **bit-identical** with
//! telemetry recording on and off, and the recorded span/flow/metric
//! stream must be well-formed.
//!
//! The global recorder install is process-wide and one-way, so the
//! "off" phase runs first, then the recorder is installed and the same
//! workload replays. Everything lives in one `#[test]` to pin the
//! order; this file must stay alone in its own integration-test binary.

use rtcg_core::{Model, ModelBuilder, TaskGraphBuilder};
use rtcg_engine::batch::BatchOptions;
use rtcg_engine::{AnalysisReport, AnalysisRequest, Engine, Verdict, SHARDS};
use rtcg_obs::MemoryRecorder;

fn single_op_model(specs: &[(u64, u64)]) -> Model {
    let mut b = ModelBuilder::new();
    for (i, &(w, d)) in specs.iter().enumerate() {
        let e = b.element(&format!("e{i}"), w);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous(&format!("c{i}"), tg, d, d);
    }
    b.build().unwrap()
}

fn workload() -> Vec<(Model, AnalysisRequest)> {
    vec![
        (single_op_model(&[(1, 3), (1, 3)]), AnalysisRequest::exact()),
        (
            single_op_model(&[(1, 4), (1, 4), (1, 4)]),
            AnalysisRequest::exact(),
        ),
        (single_op_model(&[(2, 3), (2, 3)]), AnalysisRequest::exact()),
        (
            // four elements force length-4 candidates: deep enough that
            // leaves go through the batched last row (the work-unit
            // prefix alone covers lengths up to 3)
            single_op_model(&[(1, 6), (1, 6), (1, 6), (1, 6)]),
            AnalysisRequest::exact(),
        ),
        (
            single_op_model(&[(1, 5), (2, 5)]),
            AnalysisRequest::default(),
        ),
    ]
}

/// The observable fingerprint of a report: everything a caller can
/// branch on. Schedules compare action-for-action.
fn fingerprint(r: &AnalysisReport) -> String {
    let verdict = match &r.verdict {
        Verdict::Feasible { schedule, strategy } => {
            format!("feasible {strategy} {:?}", schedule.actions())
        }
        Verdict::FeasibleLanes { schedule, strategy } => {
            format!("feasible-lanes {strategy} {:?}", schedule.rows())
        }
        Verdict::Infeasible { reason } => format!("infeasible {reason}"),
        Verdict::Unknown { reason } => format!("unknown {reason}"),
    };
    let search = r
        .search
        .map(|s| (s.nodes_visited, s.candidates_checked, s.exhausted_bound));
    format!("{verdict} | search={search:?} | merged={}", r.groups_merged)
}

#[test]
fn verdicts_bit_identical_with_recording_on_and_off() {
    let jobs = workload();
    let opts = BatchOptions {
        threads: 2,
        budget_ms: None,
    };

    // Phase 1: no recorder installed — the no-op fast path.
    assert!(rtcg_obs::recorder().is_none(), "must start uninstalled");
    let baseline: Vec<String> = Engine::new()
        .analyze_batch(&jobs, &opts)
        .iter()
        .map(|r| fingerprint(r.report.as_ref().expect("baseline analysis succeeds")))
        .collect();

    // Phase 2: full instrumentation on, same workload, fresh engine.
    let rec = MemoryRecorder::install();
    let engine = Engine::new();
    let instrumented: Vec<String> = engine
        .analyze_batch(&jobs, &opts)
        .iter()
        .map(|r| fingerprint(r.report.as_ref().expect("instrumented analysis succeeds")))
        .collect();
    assert_eq!(baseline, instrumented, "recording changed a verdict");

    // The instrumented run must actually have produced telemetry.
    let snap = rec.snapshot();

    // Span tree well-formedness: every parent id refers to a recorded
    // span, and ids are unique.
    let ids: std::collections::BTreeSet<u64> = snap.spans.iter().map(|s| s.id).collect();
    assert_eq!(ids.len(), snap.spans.len(), "span ids must be unique");
    for s in &snap.spans {
        if let Some(p) = s.parent {
            assert!(ids.contains(&p), "span {} has dangling parent {p}", s.name);
        }
    }

    // One request id per batch entry, all distinct, threaded through to
    // the per-job "engine.analyze" spans and paired produce/consume flows.
    let analyze_requests: Vec<u64> = snap
        .spans
        .iter()
        .filter(|s| s.name == "engine.analyze")
        .map(|s| s.request.expect("engine.analyze span carries a request id"))
        .collect();
    assert_eq!(analyze_requests.len(), jobs.len());
    let distinct: std::collections::BTreeSet<u64> = analyze_requests.iter().copied().collect();
    assert_eq!(distinct.len(), jobs.len(), "request ids must be unique");
    for req in &distinct {
        assert!(
            snap.flows
                .iter()
                .any(|f| f.request == *req && f.phase == rtcg_obs::FlowPhase::Produce),
            "request {req} missing produce flow"
        );
        assert!(
            snap.flows
                .iter()
                .any(|f| f.request == *req && f.phase == rtcg_obs::FlowPhase::Consume),
            "request {req} missing consume flow"
        );
    }

    // Child spans inside a request inherit its id (exact jobs run the
    // search under the engine.analyze span).
    assert!(
        snap.spans
            .iter()
            .any(|s| s.name != "engine.analyze" && s.request.is_some()),
        "no child span inherited a request id"
    );

    // Histograms: per-request latency always; cancel-to-stop never fired.
    let req_hist = snap
        .histograms
        .iter()
        .find(|h| h.name == "engine.request_us")
        .expect("engine.request_us histogram recorded");
    assert_eq!(req_hist.count, jobs.len() as u64);
    assert!(req_hist.percentile(99.0) >= req_hist.percentile(50.0));
    assert!(
        !snap
            .histograms
            .iter()
            .any(|h| h.name == "engine.cancel_to_stop_us"),
        "no cancel happened, so no cancel latency samples"
    );
    assert!(
        snap.histograms
            .iter()
            .any(|h| h.name == "search.leaf_eval_us" && h.count > 0),
        "exact jobs must time leaf evaluations"
    );
    assert!(
        snap.gauges
            .iter()
            .any(|(n, v)| *n == "search.leaf_batch_width" && *v > 0),
        "batched last-row leaf evaluation must record its lane width"
    );

    // Shard metric family: published for every shard, and occupancy adds
    // up to what EngineStats reports.
    let stats = engine.stats();
    let gauge = |name: &str| -> i64 {
        snap.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("missing gauge {name}"))
            .1
    };
    let mut gauge_occupancy = 0;
    for ix in 0..SHARDS {
        for suffix in [
            "hits",
            "misses",
            "inserts",
            "poison_recoveries",
            "occupancy",
        ] {
            let name = format!("engine.shard.{ix:02}.{suffix}");
            let v = gauge(&name);
            assert!(v >= 0, "{name} negative: {v}");
            if suffix == "occupancy" {
                gauge_occupancy += v as u64;
            }
        }
    }
    let stats_occupancy: u64 = stats.shards.iter().map(|s| s.occupancy).sum();
    assert_eq!(stats_occupancy, gauge_occupancy);
    let shard_hits: u64 = stats.shards.iter().map(|s| s.hits).sum();
    let shard_misses: u64 = stats.shards.iter().map(|s| s.misses).sum();
    assert_eq!(shard_hits, stats.hits, "shard hit counters must add up");
    assert_eq!(
        shard_misses, stats.misses,
        "shard miss counters must add up"
    );

    // Search progress gauges appear (exact jobs publish at poll strides
    // and on completion).
    assert!(
        snap.gauges
            .iter()
            .any(|(n, _)| *n == "search.progress.nodes_per_sec"),
        "progress sampler never published"
    );

    // And the whole snapshot must survive the strict Prometheus parser.
    let text = rec.prometheus_text();
    let samples = rtcg_obs::validate_prometheus_text(&text).expect("exposition is well-formed");
    assert!(samples > 0);
}
