//! Regression test for the `engine.batch.queue_depth` gauge.
//!
//! The seed computed the depth from each worker's own claimed index, so
//! whichever worker published last won and the gauge history regressed
//! non-monotonically under concurrency. The gauge is now derived from
//! the shared claim cursor under a publication lock, so the recorded
//! history must be non-increasing and end at zero.
//!
//! This test installs a custom global recorder, which is process-wide
//! and one-way — it must stay alone in its own integration-test binary.

use rtcg_core::{ModelBuilder, TaskGraphBuilder};
use rtcg_engine::batch::BatchOptions;
use rtcg_engine::{AnalysisRequest, Engine};
use std::sync::Mutex;

struct GaugeLog {
    depths: Mutex<Vec<i64>>,
}

impl rtcg_obs::Recorder for GaugeLog {
    fn gauge_set(&self, name: &'static str, value: i64) {
        if name == "engine.batch.queue_depth" {
            self.depths.lock().unwrap().push(value);
        }
    }
}

static LOG: GaugeLog = GaugeLog {
    depths: Mutex::new(Vec::new()),
};

fn job_model(d: u64) -> rtcg_core::Model {
    let mut b = ModelBuilder::new();
    for i in 0..2 {
        let e = b.element(&format!("e{i}"), 1);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous(&format!("c{i}"), tg, d, d);
    }
    b.build().unwrap()
}

#[test]
fn queue_depth_gauge_is_monotone_non_increasing() {
    rtcg_obs::set_recorder(&LOG).expect("first and only install in this binary");

    let jobs: Vec<_> = (4..12)
        .map(|d| (job_model(d), AnalysisRequest::default()))
        .collect();
    let engine = Engine::new();
    let results = engine.analyze_batch(
        &jobs,
        &BatchOptions {
            threads: 3,
            budget_ms: None,
        },
    );
    assert_eq!(results.len(), jobs.len());

    let depths = LOG.depths.lock().unwrap().clone();
    // one publish per claim plus the final explicit zero
    assert_eq!(depths.len(), jobs.len() + 1, "history: {depths:?}");
    assert!(
        depths.windows(2).all(|w| w[1] <= w[0]),
        "queue depth regressed: {depths:?}"
    );
    assert!(
        depths[0] < jobs.len() as i64,
        "first sample is after the first claim: {depths:?}"
    );
    assert_eq!(*depths.last().unwrap(), 0, "drains to zero: {depths:?}");
}
