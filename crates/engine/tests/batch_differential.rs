//! Differential pinning of concurrent batch analysis against sequential
//! per-request analysis.
//!
//! [`Engine::analyze_batch`]'s contract: fanning requests across a
//! worker pool over one shared cache changes *nothing* about any
//! individual answer. Every undegraded report must be bit-identical to
//! a sequential [`analyze_once`] of the same `(model, request)` pair —
//! same verdict, same schedule actions, same search counters — and the
//! engine's hit/miss accounting must add up to exactly one analysis per
//! request.

use proptest::prelude::*;
use rtcg_core::feasibility::SearchConfig;
use rtcg_core::model::{Model, ModelBuilder};
use rtcg_core::sensitivity::with_deadline;
use rtcg_core::task::TaskGraphBuilder;
use rtcg_core::ConstraintId;
use rtcg_engine::batch::BatchOptions;
use rtcg_engine::{analyze_once, AnalysisMode, AnalysisRequest, Engine, Verdict};

/// Same generator shape as `tests/differential.rs`: 1–3 elements with
/// single-op asynchronous constraints, optional chain and periodic
/// constraints, deadlines straddling the feasibility boundary.
fn build_model(elems: &[(u64, u64)], chain_d: Option<u64>, periodic_d: Option<u64>) -> Model {
    let mut b = ModelBuilder::new();
    let mut ids = Vec::new();
    for (i, &(w, d)) in elems.iter().enumerate() {
        let e = b.element(&format!("e{i}"), w);
        ids.push(e);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous(&format!("c{i}"), tg, d, d);
    }
    if let (Some(d), true) = (chain_d, ids.len() >= 2) {
        b.channel(ids[0], ids[1]);
        let tg = TaskGraphBuilder::new()
            .op("x", ids[0])
            .op("y", ids[1])
            .chain(&["x", "y"])
            .build()
            .unwrap();
        b.asynchronous("chain", tg, d, d);
    }
    if let Some(d) = periodic_d {
        let tg = TaskGraphBuilder::new().op("p", ids[0]).build().unwrap();
        b.periodic("beat", tg, 6, d.min(6));
    }
    b.build().expect("generated model is valid")
}

/// `(elements, chain deadline, periodic deadline, edit sequence, max_len)`
#[allow(clippy::type_complexity)]
fn spec() -> impl Strategy<
    Value = (
        Vec<(u64, u64)>,
        Option<u64>,
        Option<u64>,
        Vec<(usize, u64)>,
        usize,
    ),
> {
    (
        prop::collection::vec((1u64..=2, 2u64..=9), 1..=3),
        (any::<bool>(), 4u64..=12),
        (any::<bool>(), 2u64..=6),
        prop::collection::vec((0usize..4, 1u64..=12), 0..=5),
        1usize..=5,
    )
        .prop_map(|(elems, (wc, cd), (wp, pd), edits, max_len)| {
            (elems, wc.then_some(cd), wp.then_some(pd), edits, max_len)
        })
}

/// The whole edit trajectory as a job list (deadline sweeps are the
/// batch workload the tentpole targets: overlapping structures, shared
/// candidate memos).
fn jobs_from(
    elems: &[(u64, u64)],
    chain_d: Option<u64>,
    periodic_d: Option<u64>,
    edits: &[(usize, u64)],
    req: AnalysisRequest,
) -> Vec<(Model, AnalysisRequest)> {
    let mut models = vec![build_model(elems, chain_d, periodic_d)];
    for &(ix, d) in edits {
        let last = models.last().expect("non-empty");
        let id = ConstraintId::new((ix % last.constraints().len()) as u32);
        if let Some(next) = with_deadline(last, id, d).expect("edit is structurally valid") {
            models.push(next);
        }
    }
    models.into_iter().map(|m| (m, req)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A 3-worker batch over a random edit trajectory yields reports
    /// bit-identical to sequential `analyze_once` per request, with
    /// exactly one hit-or-miss per request and no degradation (there is
    /// no budget to exhaust).
    #[test]
    fn batch_is_bit_identical_to_sequential(
        (elems, chain_d, periodic_d, edits, max_len) in spec()
    ) {
        let mut req = AnalysisRequest::exact();
        req.search = SearchConfig { max_len, node_budget: u64::MAX / 2 };
        let jobs = jobs_from(&elems, chain_d, periodic_d, &edits, req);

        let engine = Engine::new();
        let results = engine.analyze_batch(
            &jobs,
            &BatchOptions { threads: 3, budget_ms: None },
        );
        prop_assert_eq!(results.len(), jobs.len());

        for (i, (result, (model, req))) in results.iter().zip(&jobs).enumerate() {
            prop_assert!(!result.is_degraded(), "no budget, no degradation (job {})", i);
            let got = result.report.as_ref().expect("generated jobs analyze");
            let want = analyze_once(model, req).unwrap();

            prop_assert_eq!(
                got.verdict.schedule().map(|s| s.actions().to_vec()),
                want.verdict.schedule().map(|s| s.actions().to_vec()),
                "schedule divergence at job {}", i
            );
            prop_assert_eq!(
                std::mem::discriminant(&got.verdict),
                std::mem::discriminant(&want.verdict),
                "verdict shape divergence at job {}", i
            );
            let (gs, ws) = (got.search.unwrap(), want.search.unwrap());
            prop_assert_eq!(gs.nodes_visited, ws.nodes_visited, "job {}", i);
            prop_assert_eq!(gs.candidates_checked, ws.candidates_checked, "job {}", i);
            prop_assert_eq!(gs.exhausted_bound, ws.exhausted_bound, "job {}", i);
            prop_assert_eq!(got.groups_merged, want.groups_merged, "job {}", i);
        }

        // counter sanity: exactly one result-memo lookup per request
        let stats = engine.stats();
        prop_assert_eq!(
            stats.hits + stats.misses,
            jobs.len() as u64,
            "one analysis per request: {:?}", stats
        );
        // every model analyzed at least once, and no more misses than
        // distinct fingerprints (identical edit results may repeat)
        prop_assert!(stats.misses >= 1 && stats.misses <= jobs.len() as u64);
    }

    /// With a zero-millisecond budget, every request whose exact search
    /// is actually cut short degrades, and its report is bit-identical
    /// to a sequential *heuristic* analysis — the documented fallback.
    /// A request whose search concludes before ever observing the token
    /// (e.g. trivially infeasible at zero nodes) keeps its authoritative
    /// exact verdict, bit-identical to sequential.
    #[test]
    fn degraded_fallback_matches_sequential_heuristic(
        (elems, chain_d, periodic_d, edits, max_len) in spec()
    ) {
        let mut req = AnalysisRequest::exact();
        req.search = SearchConfig { max_len, node_budget: u64::MAX / 2 };
        let jobs = jobs_from(&elems, chain_d, periodic_d, &edits, req);

        let engine = Engine::new();
        let results = engine.analyze_batch(
            &jobs,
            &BatchOptions { threads: 2, budget_ms: Some(0) },
        );

        let fallback = AnalysisRequest { mode: AnalysisMode::Heuristic, threads: 1, ..req };
        for (i, (result, (model, req))) in results.iter().zip(&jobs).enumerate() {
            let got = result.report.as_ref().expect("generated jobs analyze");
            let want = if result.is_degraded() {
                let want = analyze_once(model, &fallback).unwrap();
                prop_assert!(got.search.is_none(), "fallback is heuristic (job {})", i);
                if let Verdict::Feasible { strategy, .. } = &got.verdict {
                    prop_assert!(*strategy != "exact", "job {}", i);
                }
                want
            } else {
                // the search never observed the expired token: its exact
                // verdict is authoritative and must never be Unknown
                prop_assert!(
                    !matches!(got.verdict, Verdict::Unknown { .. }),
                    "an undegraded zero-budget exact verdict is authoritative (job {})", i
                );
                analyze_once(model, req).unwrap()
            };
            prop_assert_eq!(
                got.verdict.schedule().map(|s| s.actions().to_vec()),
                want.verdict.schedule().map(|s| s.actions().to_vec()),
                "schedule divergence at job {} (degraded: {})", i, result.is_degraded()
            );
            prop_assert_eq!(
                std::mem::discriminant(&got.verdict),
                std::mem::discriminant(&want.verdict),
                "verdict divergence at job {} (degraded: {})", i, result.is_degraded()
            );
        }
    }
}
