//! Differential pinning of the incremental engine against cold
//! analysis, plus the headline leaf-eval-savings regression.
//!
//! The engine's contract is *bit-identity*: routing an analysis through
//! the result memo, the per-structure candidate memo, and the pruner
//! template must produce exactly the verdict, schedule, and search
//! counters of a cold run. These tests pin that over randomized small
//! models and randomized deadline-edit sequences — the exact traffic
//! pattern sensitivity analysis generates.

use proptest::prelude::*;
use rtcg_core::feasibility::{find_feasible, SearchConfig};
use rtcg_core::heuristic::synthesize;
use rtcg_core::model::{Model, ModelBuilder};
use rtcg_core::sensitivity::{deadline_sensitivities_with, with_deadline};
use rtcg_core::task::TaskGraphBuilder;
use rtcg_core::ConstraintId;
use rtcg_engine::{AnalysisRequest, Engine, Verdict};
use rtcg_hardness::chain_family;

/// Small mixed model: 1–3 elements each with a single-op asynchronous
/// constraint, an optional 2-chain constraint, and an optional periodic
/// constraint on the first element. Deadlines straddle the feasibility
/// boundary so edit sequences flip verdicts.
fn build_model(elems: &[(u64, u64)], chain_d: Option<u64>, periodic_d: Option<u64>) -> Model {
    let mut b = ModelBuilder::new();
    let mut ids = Vec::new();
    for (i, &(w, d)) in elems.iter().enumerate() {
        let e = b.element(&format!("e{i}"), w);
        ids.push(e);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous(&format!("c{i}"), tg, d, d);
    }
    if let (Some(d), true) = (chain_d, ids.len() >= 2) {
        b.channel(ids[0], ids[1]);
        let tg = TaskGraphBuilder::new()
            .op("x", ids[0])
            .op("y", ids[1])
            .chain(&["x", "y"])
            .build()
            .unwrap();
        b.asynchronous("chain", tg, d, d);
    }
    if let Some(d) = periodic_d {
        let tg = TaskGraphBuilder::new().op("p", ids[0]).build().unwrap();
        b.periodic("beat", tg, 6, d.min(6));
    }
    b.build().expect("generated model is valid")
}

/// `(elements, chain deadline, periodic deadline, edit sequence, max_len)`
#[allow(clippy::type_complexity)]
fn spec() -> impl Strategy<
    Value = (
        Vec<(u64, u64)>,
        Option<u64>,
        Option<u64>,
        Vec<(usize, u64)>,
        usize,
    ),
> {
    (
        prop::collection::vec((1u64..=2, 2u64..=9), 1..=3),
        (any::<bool>(), 4u64..=12),
        (any::<bool>(), 2u64..=6),
        prop::collection::vec((0usize..4, 1u64..=12), 0..=4),
        1usize..=5,
    )
        .prop_map(|(elems, (wc, cd), (wp, pd), edits, max_len)| {
            (elems, wc.then_some(cd), wp.then_some(pd), edits, max_len)
        })
}

/// Applies one `(constraint, deadline)` edit, wrapping the constraint
/// index into range; `None` when the edit is definitionally infeasible
/// (deadline below computation time).
fn apply_edit(model: &Model, ix: usize, d: u64) -> Option<Model> {
    let id = ConstraintId::new((ix % model.constraints().len()) as u32);
    with_deadline(model, id, d).expect("edit is structurally valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exact mode through one persistent engine (memo-warm across the
    /// whole edit sequence) is bit-identical to a cold search per model:
    /// same schedule, same node and candidate counters.
    #[test]
    fn engine_exact_is_bit_identical_across_edits(
        (elems, chain_d, periodic_d, edits, max_len) in spec()
    ) {
        let mut req = AnalysisRequest::exact();
        req.search = SearchConfig { max_len, node_budget: u64::MAX / 2 };
        let engine = Engine::new();

        // materialize the whole edit trajectory up front
        let mut models = vec![build_model(&elems, chain_d, periodic_d)];
        for &(ix, d) in &edits {
            let last = models.last().expect("non-empty");
            if let Some(next) = apply_edit(last, ix, d) {
                models.push(next);
            }
        }

        for (step, model) in models.iter().enumerate() {
            let cold = find_feasible(model, req.search).unwrap();
            let report = engine.analyze(model, &req).unwrap();
            let stats = report.search.expect("exact mode reports stats");

            prop_assert_eq!(
                cold.schedule.as_ref(),
                report.verdict.schedule(),
                "schedule divergence at step {}", step
            );
            prop_assert_eq!(cold.nodes_visited, stats.nodes_visited, "step {}", step);
            prop_assert_eq!(cold.candidates_checked, stats.candidates_checked, "step {}", step);
            prop_assert_eq!(cold.exhausted_bound, stats.exhausted_bound, "step {}", step);
            match &report.verdict {
                Verdict::Feasible { .. } => prop_assert!(cold.schedule.is_some()),
                Verdict::FeasibleLanes { .. } => {
                    prop_assert!(false, "single-lane request produced a lane verdict")
                }
                Verdict::Infeasible { .. } => {
                    prop_assert!(cold.schedule.is_none() && cold.exhausted_bound)
                }
                Verdict::Unknown { .. } => {
                    prop_assert!(cold.schedule.is_none() && !cold.exhausted_bound)
                }
            }
        }

        // revisiting every model seen must serve identical reports from
        // the result memo (modulo the `cached` marker)
        for (i, m) in models.iter().enumerate() {
            let cold = find_feasible(m, req.search).unwrap();
            let report = engine.analyze(m, &req).unwrap();
            prop_assert!(report.cached, "revisit {} must be a cache hit", i);
            prop_assert_eq!(
                cold.schedule.as_ref(),
                report.verdict.schedule(),
                "revisit {} schedule divergence", i
            );
        }
    }

    /// Heuristic mode through the engine agrees with cold synthesis on
    /// the verdict and produces the same schedule when feasible.
    #[test]
    fn engine_heuristic_matches_cold_synthesize(
        (elems, chain_d, periodic_d, edits, _) in spec()
    ) {
        let req = AnalysisRequest::default();
        let engine = Engine::new();
        let mut model = build_model(&elems, chain_d, periodic_d);
        for &(ix, d) in &edits {
            let report = engine.analyze(&model, &req).unwrap();
            match (synthesize(&model), &report.verdict) {
                (Ok(out), Verdict::Feasible { schedule, strategy }) => {
                    prop_assert_eq!(&out.schedule, schedule);
                    prop_assert_eq!(out.strategy, *strategy);
                }
                (Err(_), Verdict::Infeasible { .. } | Verdict::Unknown { .. }) => {}
                (cold, verdict) => {
                    prop_assert!(
                        false,
                        "divergence: cold {:?} vs engine {:?}",
                        cold.map(|o| o.strategy),
                        verdict
                    );
                }
            }
            if let Some(next) = apply_edit(&model, ix, d) {
                model = next;
            }
        }
    }
}

/// The headline acceptance criterion: a `min_feasible_deadline` sweep
/// over the chain family performs ≥5x fewer leaf feasibility
/// evaluations through the engine than cold per-probe searches, at
/// identical minima.
#[test]
fn chain_family_sweep_saves_5x_leaf_evals() {
    let model = chain_family(2);
    let cfg = SearchConfig {
        max_len: 7,
        node_budget: 60_000_000,
    };

    let mut cold_evals = 0u64;
    let cold_rows = deadline_sensitivities_with(&model, &mut |m: &Model| -> Result<
        bool,
        rtcg_core::ModelError,
    > {
        let out = find_feasible(m, cfg)?;
        cold_evals += out.candidates_checked;
        Ok(out.schedule.is_some())
    })
    .unwrap();

    let mut req = AnalysisRequest::exact();
    req.search = cfg;
    let engine = Engine::new();
    let warm_rows = engine.deadline_sensitivities(&model, &req).unwrap();

    assert_eq!(cold_rows.len(), warm_rows.len());
    for (c, w) in cold_rows.iter().zip(&warm_rows) {
        assert_eq!(
            c.minimum_feasible, w.minimum_feasible,
            "sweep minima must match cold analysis ({})",
            c.name
        );
    }

    let stats = engine.stats();
    assert!(
        stats.leaf_evals_saved > 0,
        "sweep must reuse memoized candidates: {stats:?}"
    );
    assert!(
        cold_evals >= 5 * stats.leaf_evals_computed.max(1),
        "engine must cut leaf evals ≥5x: cold {} vs computed {} ({stats:?})",
        cold_evals,
        stats.leaf_evals_computed
    );
}

/// The request fingerprint ignores thread count, so a sequential result
/// serves a parallel request — and vice versa — which is sound because
/// the parallel search replays the sequential one bit for bit.
#[test]
fn thread_count_shares_the_result_memo() {
    let model = chain_family(1);
    let mut req = AnalysisRequest::exact();
    req.search = SearchConfig {
        max_len: 4,
        node_budget: 60_000_000,
    };
    let engine = Engine::new();
    let seq = engine.analyze(&model, &req).unwrap();
    assert!(!seq.cached);
    req.threads = 4;
    let par = engine.analyze(&model, &req).unwrap();
    assert!(par.cached, "thread-count change must not force a re-run");
    assert_eq!(seq.verdict.schedule(), par.verdict.schedule());
}

/// Mode is part of the request fingerprint: heuristic and exact verdicts
/// for the same model are cached independently.
#[test]
fn mode_is_cached_independently() {
    let model = chain_family(1);
    let engine = Engine::new();
    let heuristic = engine.analyze(&model, &AnalysisRequest::default()).unwrap();
    let mut req = AnalysisRequest::exact();
    req.search = SearchConfig {
        max_len: 4,
        node_budget: 60_000_000,
    };
    let exact = engine.analyze(&model, &req).unwrap();
    assert!(
        !exact.cached,
        "exact must not be served from the heuristic entry"
    );
    assert_eq!(engine.stats().misses, 2);
    assert!(heuristic.verdict.is_feasible() && exact.verdict.is_feasible());
    assert_eq!(exact.search.expect("stats").candidates_checked, 1);
}
