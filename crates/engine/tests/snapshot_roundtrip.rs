//! Proptest round-trip pinning of the snapshot layer (DESIGN.md §14).
//!
//! The contract: `save → load` into a fresh engine is invisible to
//! callers except for speed. Replaying the exact request stream that
//! populated the saved engine must (a) hit the result memo on every
//! request, (b) produce bit-identical verdicts, schedules, search
//! counters, and `groups_merged`, and (c) account every replay as a
//! hit (zero misses) in `EngineStats`.

use proptest::prelude::*;
use rtcg_core::feasibility::SearchConfig;
use rtcg_core::model::{Model, ModelBuilder};
use rtcg_core::sensitivity::with_deadline;
use rtcg_core::task::TaskGraphBuilder;
use rtcg_core::ConstraintId;
use rtcg_engine::{AnalysisReport, AnalysisRequest, Engine};

/// Small mixed model (same shape as the differential tests): single-op
/// asynchronous constraints per element, an optional 2-chain, an
/// optional periodic beat. Deadlines straddle feasibility.
fn build_model(elems: &[(u64, u64)], chain_d: Option<u64>, periodic_d: Option<u64>) -> Model {
    let mut b = ModelBuilder::new();
    let mut ids = Vec::new();
    for (i, &(w, d)) in elems.iter().enumerate() {
        let e = b.element(&format!("e{i}"), w);
        ids.push(e);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous(&format!("c{i}"), tg, d, d);
    }
    if let (Some(d), true) = (chain_d, ids.len() >= 2) {
        b.channel(ids[0], ids[1]);
        let tg = TaskGraphBuilder::new()
            .op("x", ids[0])
            .op("y", ids[1])
            .chain(&["x", "y"])
            .build()
            .unwrap();
        b.asynchronous("chain", tg, d, d);
    }
    if let Some(d) = periodic_d {
        let tg = TaskGraphBuilder::new().op("p", ids[0]).build().unwrap();
        b.periodic("beat", tg, 6, d.min(6));
    }
    b.build().expect("generated model is valid")
}

/// `(elements, chain deadline, periodic deadline, request stream)`
/// where each stream item is `(constraint ix, deadline, mode 0..3)`.
#[allow(clippy::type_complexity)]
fn spec() -> impl Strategy<
    Value = (
        Vec<(u64, u64)>,
        Option<u64>,
        Option<u64>,
        Vec<(usize, u64, u8)>,
    ),
> {
    (
        prop::collection::vec((1u64..=2, 2u64..=9), 1..=3),
        (any::<bool>(), 4u64..=12),
        (any::<bool>(), 2u64..=6),
        prop::collection::vec((0usize..4, 2u64..=12, 0u8..3), 1..=6),
    )
        .prop_map(|(elems, (wc, cd), (wp, pd), stream)| {
            (elems, wc.then_some(cd), wp.then_some(pd), stream)
        })
}

fn request_for(mode: u8) -> AnalysisRequest {
    match mode {
        0 => AnalysisRequest::default(),
        1 => AnalysisRequest {
            mode: rtcg_engine::AnalysisMode::Merged,
            ..AnalysisRequest::default()
        },
        _ => AnalysisRequest {
            search: SearchConfig {
                max_len: 4,
                node_budget: 60_000,
            },
            ..AnalysisRequest::exact()
        },
    }
}

/// Bit-identity of two reports, `cached` flag excluded.
fn assert_reports_identical(a: &AnalysisReport, b: &AnalysisReport) {
    use rtcg_engine::Verdict::*;
    match (&a.verdict, &b.verdict) {
        (
            Feasible {
                schedule: sa,
                strategy: ta,
            },
            Feasible {
                schedule: sb,
                strategy: tb,
            },
        ) => {
            assert_eq!(ta, tb);
            assert_eq!(sa.actions(), sb.actions());
        }
        (Infeasible { reason: ra }, Infeasible { reason: rb })
        | (Unknown { reason: ra }, Unknown { reason: rb }) => assert_eq!(ra, rb),
        (va, vb) => panic!("verdict shape diverged: {va:?} vs {vb:?}"),
    }
    match (&a.search, &b.search) {
        (Some(sa), Some(sb)) => {
            assert_eq!(sa.nodes_visited, sb.nodes_visited);
            assert_eq!(sa.candidates_checked, sb.candidates_checked);
            assert_eq!(sa.exhausted_bound, sb.exhausted_bound);
        }
        (None, None) => {}
        (sa, sb) => panic!("search stats diverged: {sa:?} vs {sb:?}"),
    }
    assert_eq!(a.groups_merged, b.groups_merged);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn save_load_replay_is_bit_identical(
        (elems, chain_d, periodic_d, stream) in spec()
    ) {
        let base = build_model(&elems, chain_d, periodic_d);
        // materialize the request stream as (model, request) pairs:
        // each item probes a deadline-edited variant, the traffic
        // pattern sensitivity analysis generates
        let mut jobs: Vec<(Model, AnalysisRequest)> = Vec::new();
        for &(ix, d, mode) in &stream {
            let id = ConstraintId::new((ix % base.constraints().len()) as u32);
            let Some(model) = with_deadline(&base, id, d).expect("edit is structurally valid")
            else {
                continue;
            };
            jobs.push((model, request_for(mode)));
        }
        if jobs.is_empty() {
            // every edit was definitionally infeasible — nothing to pin
            continue;
        }

        let engine = Engine::new();
        let mut originals = Vec::new();
        for (model, req) in &jobs {
            originals.push(engine.analyze(model, req).expect("analysis succeeds"));
        }
        let (bytes, save) = engine.snapshot_bytes(&[]).unwrap();
        prop_assert!(save.sections > 0);

        let warm = Engine::new();
        let load = warm.load_snapshot_bytes(&bytes, &mut []).unwrap();
        prop_assert_eq!(load.sections_skipped, 0);
        prop_assert_eq!(load.sections_loaded, save.sections);
        prop_assert_eq!(load.entries_skipped, 0);
        prop_assert_eq!(load.results_inserted + load.results_present, save.result_entries);

        for ((model, req), original) in jobs.iter().zip(&originals) {
            let replay = warm.analyze(model, req).expect("replay succeeds");
            prop_assert!(replay.cached, "replay must be a result-memo hit");
            assert_reports_identical(original, &replay);
        }
        let stats = warm.stats();
        prop_assert_eq!(stats.hits, jobs.len() as u64);
        prop_assert_eq!(stats.misses, 0);
        prop_assert_eq!(stats.snapshot.loads, 1);

        // save-of-the-load reproduces the file byte for byte: the merge
        // lost nothing and invented nothing
        let (bytes2, _) = warm.snapshot_bytes(&[]).unwrap();
        prop_assert_eq!(bytes, bytes2);
    }
}
