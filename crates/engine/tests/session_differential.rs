//! Differential pinning of long-lived sessions against cold analysis.
//!
//! A [`Session`]'s contract is that delta-aware invalidation is
//! *invisible*: after any sequence of model deltas — retunes, weight
//! edits, element/channel/constraint add/remove — analyzing the
//! resident model through the session's hot candidate memo must be
//! bit-identical (verdict, schedule, search counters) to a cold
//! `analyze_once` of the same model. These tests drive randomized delta
//! sequences through a session and check that contract after every
//! applied delta, plus the journal laws: replaying the journal onto the
//! base model reproduces the resident model, and undoing the whole
//! journal restores the base content.

use proptest::prelude::*;
use rtcg_core::feasibility::SearchConfig;
use rtcg_core::model::{Model, ModelBuilder};
use rtcg_core::task::TaskGraphBuilder;
use rtcg_core::{ConstraintId, ConstraintKind, ModelDelta, TimingConstraint};
use rtcg_engine::{analyze_once, AnalysisMode, AnalysisRequest, Engine, EngineOptions, Query};

/// Base model: `n` elements with single-op asynchronous constraints, a
/// 2-chain over the first two (when present), and a periodic beat on
/// the first. Deadlines straddle the feasibility boundary so delta
/// sequences flip verdicts.
fn base_model(elems: &[(u64, u64)]) -> Model {
    let mut b = ModelBuilder::new();
    let mut ids = Vec::new();
    for (i, &(w, d)) in elems.iter().enumerate() {
        let e = b.element(&format!("e{i}"), w);
        ids.push(e);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous(&format!("c{i}"), tg, d + 4, d + 4);
    }
    if ids.len() >= 2 {
        b.channel(ids[0], ids[1]);
        let tg = TaskGraphBuilder::new()
            .op("x", ids[0])
            .op("y", ids[1])
            .edge("x", "y")
            .build()
            .unwrap();
        b.asynchronous("chain", tg, 9, 9);
    }
    let tg = TaskGraphBuilder::new().op("p", ids[0]).build().unwrap();
    b.periodic("beat", tg, 6, 4);
    b.build().expect("generated base model is valid")
}

/// One abstract edit, resolved against the current model right before
/// application (indices wrap, names are computed), so every generated
/// sequence is meaningful regardless of what earlier edits did.
#[derive(Debug, Clone)]
enum Edit {
    Retune { c: usize, d: u64, period: bool },
    Reweigh { e: usize, w: u64 },
    Grow { w: u64 },
    Shrink,
    Splice { a: usize, b: usize },
    Insert { c: usize, d: u64 },
    Remove { c: usize },
}

fn resolve(edit: &Edit, model: &Model, grown: &mut u32) -> Option<ModelDelta> {
    let n_constraints = model.constraints().len();
    let comm = model.comm();
    let names: Vec<String> = comm.elements().map(|(_, e)| e.name.clone()).collect();
    match edit {
        Edit::Retune { c, d, period } => {
            let constraint = ConstraintId::new((c % n_constraints) as u32);
            Some(if *period {
                ModelDelta::SetPeriod {
                    constraint,
                    period: 1 + d,
                }
            } else {
                ModelDelta::SetDeadline {
                    constraint,
                    deadline: 1 + d,
                }
            })
        }
        Edit::Reweigh { e, w } => Some(ModelDelta::SetWcet {
            element: names[e % names.len()].clone(),
            wcet: 1 + (w % 3),
        }),
        Edit::Grow { w } => {
            *grown += 1;
            Some(ModelDelta::AddElement {
                name: format!("g{grown}"),
                wcet: 1 + (w % 2),
                pipelinable: true,
            })
        }
        // remove the most recently grown element still present: it has
        // no channels and no constraint references, so the only legal
        // removal target without bookkeeping
        Edit::Shrink => names
            .iter()
            .rfind(|n| n.starts_with('g'))
            .map(|n| ModelDelta::RemoveElement { name: n.clone() }),
        Edit::Splice { a, b } => {
            let (a, b) = (a % names.len(), b % names.len());
            if a == b {
                return None;
            }
            let (fa, fb) = (
                comm.lookup(&names[a]).unwrap(),
                comm.lookup(&names[b]).unwrap(),
            );
            if comm.has_channel(fa, fb) {
                Some(ModelDelta::RemoveChannel {
                    from: names[a].clone(),
                    to: names[b].clone(),
                })
            } else {
                Some(ModelDelta::AddChannel {
                    from: names[a].clone(),
                    to: names[b].clone(),
                    label: None,
                })
            }
        }
        Edit::Insert { c, d } => {
            let target = comm.lookup(&names[c % names.len()]).unwrap();
            let tg = TaskGraphBuilder::new().op("q", target).build().unwrap();
            Some(ModelDelta::AddConstraint {
                at: c % (n_constraints + 1),
                constraint: Box::new(TimingConstraint {
                    name: format!("ins{c}"),
                    task: tg,
                    period: 4 + d,
                    deadline: 4 + d,
                    kind: ConstraintKind::Asynchronous,
                }),
            })
        }
        Edit::Remove { c } => {
            // keep at least one constraint so analyses stay meaningful
            (n_constraints >= 2).then(|| ModelDelta::RemoveConstraint {
                at: c % n_constraints,
            })
        }
    }
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    // weighted dispatch over the edit kinds (retunes and reweighs are
    // the common interactive traffic, so they dominate)
    (0usize..12, 0usize..8, 0usize..8, 1u64..=12, any::<bool>()).prop_map(
        |(kind, a, b, d, flag)| match kind {
            0..=2 => Edit::Retune {
                c: a,
                d,
                period: flag,
            },
            3 | 4 => Edit::Reweigh { e: a, w: d },
            5 => Edit::Grow { w: d },
            6 => Edit::Shrink,
            7 | 8 => Edit::Splice { a, b },
            9 | 10 => Edit::Insert { c: a, d },
            _ => Edit::Remove { c: a },
        },
    )
}

fn exact_query(max_len: usize) -> Query {
    Query {
        mode: AnalysisMode::Exact,
        search: SearchConfig {
            max_len,
            node_budget: 200_000,
        },
        ..Query::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every applied delta, the session's warm analysis is
    /// bit-identical to a cold `analyze_once` of the resident model;
    /// rejected deltas leave the resident content untouched.
    #[test]
    fn warm_sessions_are_bit_identical_to_cold_analysis(
        elems in prop::collection::vec((1u64..=2, 1u64..=6), 1..=3),
        edits in prop::collection::vec(edit_strategy(), 1..=6),
        max_len in 2usize..=4,
    ) {
        let base = base_model(&elems);
        let engine = Engine::new();
        let mut session = engine.open_session(base.clone()).unwrap();
        let query = exact_query(max_len);
        let req = AnalysisRequest::from_parts(&query, &EngineOptions::default());
        let mut grown = 0u32;

        for edit in &edits {
            let Some(delta) = resolve(edit, session.model(), &mut grown) else {
                continue;
            };
            let digest = session.model().content_digest();
            match session.apply(&delta) {
                Ok(_) => {}
                Err(_) => {
                    // rejected (weight past a deadline, duplicate
                    // channel, ...): the session must be untouched
                    prop_assert_eq!(session.model().content_digest(), digest);
                    continue;
                }
            }
            let warm = session.analyze(&query).unwrap();
            let cold = analyze_once(session.model(), &req).unwrap();
            prop_assert_eq!(warm.verdict.is_feasible(), cold.verdict.is_feasible());
            prop_assert_eq!(
                warm.verdict.schedule().map(|s| s.actions().to_vec()),
                cold.verdict.schedule().map(|s| s.actions().to_vec())
            );
            let (ws, cs) = (warm.search.unwrap(), cold.search.unwrap());
            prop_assert_eq!(ws.nodes_visited, cs.nodes_visited);
            prop_assert_eq!(ws.candidates_checked, cs.candidates_checked);
            prop_assert_eq!(ws.exhausted_bound, cs.exhausted_bound);
        }
    }

    /// Journal laws: replaying the journal onto the base model rebuilds
    /// the resident content, and undoing the whole journal restores the
    /// base content — and its verdicts.
    #[test]
    fn journal_replays_forward_and_inverts_backward(
        elems in prop::collection::vec((1u64..=2, 1u64..=6), 1..=3),
        edits in prop::collection::vec(edit_strategy(), 1..=8),
    ) {
        let base = base_model(&elems);
        let engine = Engine::new();
        let mut session = engine.open_session(base.clone()).unwrap();
        let query = exact_query(3);
        let baseline = session.analyze(&query).unwrap();
        let mut grown = 0u32;

        for edit in &edits {
            if let Some(delta) = resolve(edit, session.model(), &mut grown) {
                let _ = session.apply(&delta);
            }
        }

        // forward replay: journal ∘ base ≡ resident model (by content)
        let mut replay = base.clone();
        for delta in session.journal().cloned().collect::<Vec<_>>() {
            replay = delta.apply(&replay).unwrap();
        }
        prop_assert_eq!(
            replay.content_digest(),
            session.model().content_digest()
        );

        // backward: undo every journaled delta, recover the base
        while session.undo().unwrap().is_some() {}
        prop_assert_eq!(session.journal_len(), 0);
        prop_assert_eq!(
            session.model().content_digest(),
            base.content_digest()
        );
        let restored = session.analyze(&query).unwrap();
        prop_assert_eq!(
            baseline.verdict.schedule().map(|s| s.actions().to_vec()),
            restored.verdict.schedule().map(|s| s.actions().to_vec())
        );
    }
}
