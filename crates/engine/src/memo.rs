//! Per-structure candidate memoization — the leaf evaluator that makes
//! repeated exact searches over deadline-edited models cheap.
//!
//! The key observation: the expensive part of a leaf feasibility check
//! is *timing-independent*. A candidate action string's latency w.r.t.
//! an asynchronous constraint's task graph depends only on the string
//! and the task graph — not on the deadline being probed. Likewise a
//! periodic constraint's per-window worst response depends on the
//! window grid (period, joint hyperperiod, analysis horizon) but not on
//! the deadline. Sensitivity analysis binary-searches deadlines over a
//! *fixed* structure, so every probe re-evaluates largely the same
//! candidate strings; memoizing `(candidate, constraint) → latency`
//! reduces each repeat evaluation to a handful of integer compares.
//!
//! [`MemoEval`] implements [`CandidateEval`] with exactly the verdict
//! semantics of [`rtcg_core::FeasibilityCache`] (the contract the exact
//! search relies on): same horizons, same window grids, same
//! comparisons. Memo *misses* are computed by the compiled leaf kernel
//! ([`rtcg_core::feasibility::CompiledChecker`]) — its
//! `async_latency`/`periodic_stats` are pinned bit-identical to the
//! classic `StaticSchedule` analysis, so the memoized values are
//! representation-independent. The differential tests in
//! `tests/differential.rs` pin this equivalence over random models and
//! edit sequences.

use std::collections::{BTreeMap, HashMap};

use rtcg_core::constraint::ConstraintKind;
use rtcg_core::feasibility::{CandidateEval, CompiledChecker};
use rtcg_core::model::Model;
use rtcg_core::schedule::Action;
use rtcg_core::time::{checked_lcm, Time};
use rtcg_core::ModelError;

/// `(constraint ix, period, periodic lcm, max periodic deadline)` —
/// the full shape of a periodic constraint's window grid and analysis
/// horizon, independent of the probed deadline.
pub(crate) type WindowGrid = (usize, Time, Time, Time);

/// Memoized analysis of one candidate action string.
#[derive(Debug, Default)]
pub(crate) struct CandidateMemo {
    /// Constraint index → exact latency (`None` = infinite). Valid for
    /// any deadline/period assignment over the same structure.
    pub(crate) async_latency: BTreeMap<usize, Option<Time>>,
    /// `(unserved windows, worst response over served windows)` per
    /// [`WindowGrid`] key. The key captures everything that shapes the
    /// window grid and horizon; the value is deadline-independent, so
    /// the verdict for any probed deadline `d` is reconstructed as
    /// `unserved == 0 && worst ≤ d`.
    pub(crate) periodic: BTreeMap<WindowGrid, (u64, Option<Time>)>,
}

/// All candidate memos for one model structure, shared across every
/// deadline/period edit of that structure.
#[derive(Debug, Default)]
pub struct SessionMemo {
    pub(crate) candidates: HashMap<Vec<Action>, CandidateMemo>,
}

impl SessionMemo {
    /// Number of distinct candidate strings memoized.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Total memoized `(candidate, constraint-slice)` entries — the
    /// granularity delta invalidation works at.
    pub fn entry_count(&self) -> u64 {
        self.candidates
            .values()
            .map(|m| (m.async_latency.len() + m.periodic.len()) as u64)
            .sum()
    }

    /// Drops everything; returns the number of entries evicted. Used
    /// when a delta moved the element alphabet (weights sub-fingerprint)
    /// — every memoized latency read some weight.
    pub fn clear(&mut self) -> u64 {
        let evicted = self.entry_count();
        self.candidates.clear();
        evicted
    }

    /// Remaps constraint columns after a delta: each memo entry for old
    /// constraint index `ix` moves to column `map(ix)`, or is evicted
    /// when `map(ix)` is `None`. Candidates left with no entries are
    /// dropped entirely. Returns the number of entries evicted.
    ///
    /// The caller (the session) derives `map` from the delta — identity
    /// minus changed columns for a task-graph edit, an index shift for
    /// constraint insertion/removal — and is responsible for only
    /// mapping `old → new` when the constraint's sub-fingerprint is
    /// unchanged (see [`crate::fingerprint::SubFingerprints`]).
    pub fn remap_constraints(&mut self, map: impl Fn(usize) -> Option<usize>) -> u64 {
        let mut evicted = 0u64;
        for memo in self.candidates.values_mut() {
            let n = memo.async_latency.len() + memo.periodic.len();
            memo.async_latency = memo
                .async_latency
                .iter()
                .filter_map(|(&ix, &v)| map(ix).map(|nix| (nix, v)))
                .collect();
            memo.periodic = memo
                .periodic
                .iter()
                .filter_map(|(&(ix, p, l, d), &v)| map(ix).map(|nix| ((nix, p, l, d), v)))
                .collect();
            evicted += (n - memo.async_latency.len() - memo.periodic.len()) as u64;
        }
        self.candidates
            .retain(|_, m| !(m.async_latency.is_empty() && m.periodic.is_empty()));
        evicted
    }

    /// Number of entries currently memoized for constraint column `ix`
    /// (tests + stats: asserts that invalidation evicted only the
    /// affected slice).
    pub fn column_entries(&self, ix: usize) -> u64 {
        self.candidates
            .values()
            .map(|m| {
                (m.async_latency.contains_key(&ix) as u64)
                    + m.periodic.keys().filter(|k| k.0 == ix).count() as u64
            })
            .sum()
    }
}

/// Leaf evaluator injected into [`rtcg_core::feasibility::find_feasible_with`]:
/// serves candidate verdicts from the session memo where possible,
/// computing (and recording) only what the memo is missing.
pub struct MemoEval<'m> {
    memo: &'m mut SessionMemo,
    /// Compiled kernel that computes memo misses (and keeps the
    /// incremental candidate index warm across consecutive leaves).
    compiled: CompiledChecker,
    /// `(constraint ix, deadline)` for asynchronous constraints, sorted
    /// by deadline ascending (tightest first, mirroring
    /// `FeasibilityCache`'s short-circuit order).
    asyn: Vec<(usize, Time)>,
    /// `(constraint ix, period, deadline)` for periodic constraints.
    periodic: Vec<(usize, Time, Time)>,
    /// LCM of all periodic periods (1 when there are none).
    periodic_lcm: Time,
    /// Largest periodic deadline.
    max_periodic_deadline: Time,
    /// Candidates whose verdict was served entirely from the memo.
    pub evals_saved: u64,
    /// Candidates that needed at least one fresh latency/window scan.
    pub evals_computed: u64,
}

impl<'m> MemoEval<'m> {
    /// Builds the evaluator for one probe model. The constraint scan
    /// tables are rebuilt per probe (they carry the probe's deadlines);
    /// the memo persists across probes of the same structure.
    pub fn new(model: &Model, memo: &'m mut SessionMemo) -> Result<Self, ModelError> {
        let compiled = CompiledChecker::new(model)?;
        let mut asyn = Vec::new();
        let mut periodic = Vec::new();
        let mut periodic_lcm: Time = 1;
        let mut max_periodic_deadline: Time = 0;
        for (ix, c) in model.constraints().iter().enumerate() {
            match c.kind {
                ConstraintKind::Asynchronous => asyn.push((ix, c.deadline)),
                ConstraintKind::Periodic => {
                    periodic.push((ix, c.period, c.deadline));
                    // the lcm is part of the WindowGrid memo key; a
                    // *saturated* value would alias two distinct-period
                    // edits of one structure onto the same memoized
                    // window scan, silently corrupting verdicts —
                    // refuse outright instead
                    periodic_lcm = checked_lcm(periodic_lcm, c.period)
                        .ok_or(ModelError::HyperperiodOverflow)?;
                    max_periodic_deadline = max_periodic_deadline.max(c.deadline);
                }
            }
        }
        asyn.sort_by_key(|&(_, d)| d);
        Ok(MemoEval {
            memo,
            compiled,
            asyn,
            periodic,
            periodic_lcm,
            max_periodic_deadline,
            evals_saved: 0,
            evals_computed: 0,
        })
    }
}

impl MemoEval<'_> {
    /// Scalar verdict whose memo *writes* go to `staged` instead of the
    /// session memo, while *reads* consult the memo first and `staged`
    /// second. Duplicate tails inside one batch therefore observe each
    /// other's freshly computed latencies exactly as consecutive scalar
    /// `check` calls would, keeping `evals_saved`/`evals_computed`
    /// bit-identical to the scalar path.
    fn check_staged(
        &mut self,
        actions: &[Action],
        staged: &mut Vec<(Vec<Action>, CandidateMemo)>,
    ) -> Result<bool, ModelError> {
        let period = self.compiled.sync(actions)?;
        if actions.is_empty() || period == 0 {
            return Err(ModelError::EmptySchedule);
        }
        let slot = match staged.iter().position(|(a, _)| a == actions) {
            Some(i) => i,
            None => {
                staged.push((actions.to_vec(), CandidateMemo::default()));
                staged.len() - 1
            }
        };
        let mut fresh = false;
        let mut verdict = true;

        for &(ix, deadline) in &self.asyn {
            let cached = self
                .memo
                .candidates
                .get(actions)
                .and_then(|e| e.async_latency.get(&ix))
                .or_else(|| staged[slot].1.async_latency.get(&ix))
                .copied();
            let latency = match cached {
                Some(l) => l,
                None => {
                    fresh = true;
                    let l = self.compiled.async_latency(actions, ix)?;
                    staged[slot].1.async_latency.insert(ix, l);
                    l
                }
            };
            if latency.is_none_or(|l| l > deadline) {
                verdict = false;
                break;
            }
        }

        if verdict {
            for &(ix, p, deadline) in &self.periodic {
                let key = (ix, p, self.periodic_lcm, self.max_periodic_deadline);
                let cached = self
                    .memo
                    .candidates
                    .get(actions)
                    .and_then(|e| e.periodic.get(&key))
                    .or_else(|| staged[slot].1.periodic.get(&key))
                    .copied();
                let (unserved, worst) = match cached {
                    Some(v) => v,
                    None => {
                        fresh = true;
                        let v = self.compiled.periodic_stats(actions, ix)?;
                        staged[slot].1.periodic.insert(key, v);
                        v
                    }
                };
                if unserved > 0 || worst.is_none_or(|w| w > deadline) {
                    verdict = false;
                    break;
                }
            }
        }

        if fresh {
            self.evals_computed += 1;
        } else {
            self.evals_saved += 1;
        }
        Ok(verdict)
    }
}

impl CandidateEval for MemoEval<'_> {
    fn check(&mut self, _model: &Model, actions: &[Action]) -> Result<bool, ModelError> {
        let period = self.compiled.sync(actions)?;
        if actions.is_empty() || period == 0 {
            return Err(ModelError::EmptySchedule);
        }
        let entry = self.memo.candidates.entry(actions.to_vec()).or_default();
        let mut fresh = false;
        let mut verdict = true;

        for &(ix, deadline) in &self.asyn {
            let latency = match entry.async_latency.get(&ix) {
                Some(&l) => l,
                None => {
                    fresh = true;
                    let l = self.compiled.async_latency(actions, ix)?;
                    entry.async_latency.insert(ix, l);
                    l
                }
            };
            if latency.is_none_or(|l| l > deadline) {
                verdict = false;
                break;
            }
        }

        if verdict {
            for &(ix, p, deadline) in &self.periodic {
                let key = (ix, p, self.periodic_lcm, self.max_periodic_deadline);
                let (unserved, worst) = match entry.periodic.get(&key) {
                    Some(&v) => v,
                    None => {
                        fresh = true;
                        let v = self.compiled.periodic_stats(actions, ix)?;
                        entry.periodic.insert(key, v);
                        v
                    }
                };
                if unserved > 0 || worst.is_none_or(|w| w > deadline) {
                    verdict = false;
                    break;
                }
            }
        }

        if fresh {
            self.evals_computed += 1;
        } else {
            self.evals_saved += 1;
        }
        Ok(verdict)
    }

    /// Batched frontier entry point (DESIGN.md §12): verdicts every
    /// `prefix + tail` lane in order via [`Self::check_staged`], then
    /// merges all staged memo writes into the session memo in one
    /// insert sweep — one `HashMap` probe per distinct candidate
    /// instead of one per constraint evaluation.
    fn check_batch(
        &mut self,
        _model: &Model,
        prefix: &[Action],
        tails: &[Action],
        out: &mut Vec<Result<bool, ModelError>>,
    ) {
        out.clear();
        let mut staged: Vec<(Vec<Action>, CandidateMemo)> = Vec::new();
        let mut buf = Vec::with_capacity(prefix.len() + 1);
        for &t in tails {
            buf.clear();
            buf.extend_from_slice(prefix);
            buf.push(t);
            out.push(self.check_staged(&buf, &mut staged));
        }
        for (actions, m) in staged {
            let entry = self.memo.candidates.entry(actions).or_default();
            entry.async_latency.extend(m.async_latency);
            entry.periodic.extend(m.periodic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::model::ModelBuilder;
    use rtcg_core::task::TaskGraphBuilder;
    use rtcg_core::FeasibilityCache;

    /// Mixed async + periodic model matching the FeasibilityCache
    /// agreement test in core.
    fn mixed_model(async_d: Time, per_d: Time) -> (Model, Vec<Action>) {
        let mut b = ModelBuilder::new();
        let ea = b.element("a", 1);
        let eb = b.element("b", 2);
        b.channel(ea, eb);
        let chain = TaskGraphBuilder::new()
            .op("a", ea)
            .op("b", eb)
            .edge("a", "b")
            .build()
            .unwrap();
        b.asynchronous("chain", chain, async_d, async_d);
        let single = TaskGraphBuilder::new().op("b", eb).build().unwrap();
        b.periodic("beat", single, 6, per_d);
        let m = b.build().unwrap();
        let symbols = vec![Action::Idle, Action::Run(ea), Action::Run(eb)];
        (m, symbols)
    }

    /// Every string of length ≤ 3 over the alphabet, checked against
    /// FeasibilityCache on the same model — and then re-checked after a
    /// deadline edit, where the memo serves everything.
    #[test]
    fn memo_verdicts_match_feasibility_cache_across_edits() {
        let (m1, symbols) = mixed_model(7, 5);
        let (m2, _) = mixed_model(5, 4); // same structure, tighter deadlines
        let mut memo = SessionMemo::default();

        for model in [&m1, &m2, &m1] {
            let mut cold = FeasibilityCache::new(model);
            let mut warm = MemoEval::new(model, &mut memo).unwrap();
            for len in 1..=3usize {
                let mut idx = vec![0usize; len];
                loop {
                    let actions: Vec<Action> = idx.iter().map(|&i| symbols[i]).collect();
                    let a = cold.check(model, &actions);
                    let b = warm.check(model, &actions);
                    match (a, b) {
                        (Ok(x), Ok(y)) => assert_eq!(x, y, "{actions:?}"),
                        (Err(_), Err(_)) => {}
                        (a, b) => panic!("divergence on {actions:?}: {a:?} vs {b:?}"),
                    }
                    let mut k = 0;
                    while k < len {
                        idx[k] += 1;
                        if idx[k] < symbols.len() {
                            break;
                        }
                        idx[k] = 0;
                        k += 1;
                    }
                    if k == len {
                        break;
                    }
                }
            }
        }
        assert!(!memo.is_empty());
    }

    /// Two same-structure models whose huge coprime periods overflow the
    /// joint lcm would share one saturated `WindowGrid` key (the
    /// structure fingerprint deliberately ignores periods) — the
    /// evaluator must refuse instead of aliasing their memo entries.
    #[test]
    fn hyperperiod_overflow_is_an_error_not_an_alias() {
        let huge = 1u64 << 33;
        let build = |p2: Time| {
            let mut b = ModelBuilder::new();
            let e = b.element("e", 1);
            let t1 = TaskGraphBuilder::new().op("x", e).build().unwrap();
            b.periodic("p1", t1, huge, huge);
            let t2 = TaskGraphBuilder::new().op("y", e).build().unwrap();
            b.periodic("p2", t2, p2, p2);
            b.build().unwrap()
        };
        // huge and huge+1 are coprime: lcm ≈ 2^66 overflows u64
        let m = build(huge + 1);
        let mut memo = SessionMemo::default();
        assert!(matches!(
            MemoEval::new(&m, &mut memo),
            Err(ModelError::HyperperiodOverflow)
        ));
        // a representable joint hyperperiod still works
        let ok = build(huge);
        assert!(MemoEval::new(&ok, &mut memo).is_ok());
    }

    /// Populate a memo over a two-constraint model, then check the
    /// slice-granular invalidation operations: dropping one column
    /// evicts exactly that column's entries, a shift remap preserves
    /// values under the new index, clear evicts everything.
    #[test]
    fn invalidation_is_slice_granular() {
        let (m, symbols) = mixed_model(7, 5);
        let mut memo = SessionMemo::default();
        {
            let mut eval = MemoEval::new(&m, &mut memo).unwrap();
            for &a in &symbols[1..] {
                for &b in &symbols[1..] {
                    let _ = eval.check(&m, &[a, b]);
                }
            }
        }
        let col0 = memo.column_entries(0);
        let col1 = memo.column_entries(1);
        assert!(col0 > 0 && col1 > 0);
        assert_eq!(memo.entry_count(), col0 + col1);

        // drop only column 0 (async chain constraint)
        let evicted = memo.remap_constraints(|ix| (ix != 0).then_some(ix));
        assert_eq!(evicted, col0);
        assert_eq!(memo.column_entries(0), 0);
        assert_eq!(memo.column_entries(1), col1);

        // shift the surviving column down (constraint 0 removed)
        let evicted = memo.remap_constraints(|ix| ix.checked_sub(1));
        assert_eq!(evicted, 0);
        assert_eq!(memo.column_entries(0), col1);
        assert_eq!(memo.column_entries(1), 0);

        assert_eq!(memo.clear(), col1);
        assert!(memo.is_empty());
    }

    /// A shifted column still serves hits: memoize under a two-
    /// constraint model, remove the async constraint (periodic shifts
    /// 1 → 0), and verify the rebuilt model's checks are fully served.
    #[test]
    fn remapped_columns_serve_hits() {
        let (m, symbols) = mixed_model(7, 5);
        let actions = vec![symbols[1], symbols[2]];
        let mut memo = SessionMemo::default();
        {
            let mut eval = MemoEval::new(&m, &mut memo).unwrap();
            eval.check(&m, &actions).unwrap();
        }
        let dropped = rtcg_core::ModelDelta::RemoveConstraint { at: 0 }
            .apply(&m)
            .unwrap();
        memo.remap_constraints(|ix| ix.checked_sub(1));
        let mut eval = MemoEval::new(&dropped, &mut memo).unwrap();
        eval.check(&dropped, &actions).unwrap();
        assert_eq!(eval.evals_computed, 0, "periodic column should have moved");
        assert_eq!(eval.evals_saved, 1);
    }

    /// Second pass over the same model is fully memo-served.
    #[test]
    fn repeat_checks_are_saved() {
        let (m, symbols) = mixed_model(7, 5);
        let mut memo = SessionMemo::default();
        let actions = vec![symbols[1], symbols[2]];
        {
            let mut eval = MemoEval::new(&m, &mut memo).unwrap();
            eval.check(&m, &actions).unwrap();
            assert_eq!(eval.evals_computed, 1);
            assert_eq!(eval.evals_saved, 0);
        }
        {
            let mut eval = MemoEval::new(&m, &mut memo).unwrap();
            eval.check(&m, &actions).unwrap();
            assert_eq!(eval.evals_computed, 0);
            assert_eq!(eval.evals_saved, 1);
        }
    }
}
