//! Persistent memo snapshots — cold-start elimination for the engine's
//! result and candidate memos (DESIGN.md §14).
//!
//! Everything the engine memoizes lives in RAM, so every process
//! restart pays the full cold-start tax. This module serializes both
//! memo layers into a versioned, length-prefixed binary file and merges
//! a file back into a *live* engine without `&mut self`:
//!
//! * **Result sections** — one per subject model: the model itself
//!   (binary-encoded), its [`Model::content_digest`], and every
//!   `(request, report)` pair the result memo holds for it.
//! * **Candidate sections** — one per model structure: a representative
//!   model plus the structure's [`SessionMemo`] (candidate action
//!   strings with their per-constraint latencies and window scans).
//!
//! **Nothing in the file is trusted as a key.** Fingerprints are
//! recomputed from the decoded models on load; the stored digest only
//! *detects* staleness (a section whose recomputed digest disagrees was
//! written by an incompatible producer and is skipped, counted in
//! [`LoadStats::sections_skipped`]). Corrupt or truncated files return
//! a structured [`SnapshotError`] — never a panic — and a section is
//! fully decoded and digest-checked *before* any shard is touched, so a
//! failed load leaves the engine exactly as it was (no partial merges,
//! no poisoned locks). Merging is insert-if-absent at entry granularity:
//! live results always win over snapshot results.
//!
//! The subject models themselves are kept in a registry the engine
//! fills at memo-insert time — a fingerprint is one-way, so the memo
//! keys alone cannot be re-keyed into content-addressed sections.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rtcg_core::constraint::ConstraintKind;
use rtcg_core::feasibility::LaneSchedule;
use rtcg_core::feasibility::SearchConfig;
use rtcg_core::heuristic::SynthesisConfig;
use rtcg_core::model::{ElementId, Model, ModelBuilder};
use rtcg_core::schedule::Action;
use rtcg_core::task::TaskGraphBuilder;
use rtcg_core::StaticSchedule;

use crate::fingerprint::{
    model_fingerprint, request_fingerprint, structure_fingerprint, FP_SCHEMA_VERSION,
};
use crate::memo::{CandidateMemo, SessionMemo};
use crate::session::Session;
use crate::{
    shard_of, unpoison, AnalysisMode, AnalysisReport, AnalysisRequest, Engine, SearchStats,
    Verdict, SHARDS,
};

/// File magic: the first eight bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"RTCGSNAP";

/// Wire format version; bump on any layout change.
///
/// v2: requests carry the lane count; reports can carry an m-lane
/// verdict (tag 3).
pub const FORMAT_VERSION: u32 = 2;

const SECTION_RESULTS: u8 = 1;
const SECTION_CANDIDATES: u8 = 2;

/// The closed set of strategy tags a report can carry. Verdicts hold
/// `&'static str` strategies, so decoding interns against this table;
/// an entry naming an unknown strategy (a future producer) is skipped.
const STRATEGIES: [&str; 6] = [
    "edf-half",
    "edf-wide",
    "game",
    "exact",
    "lane-list",
    "lane-exact",
];

fn intern_strategy(s: &str) -> Option<&'static str> {
    STRATEGIES.iter().find(|&&k| k == s).copied()
}

/// Structured decode/IO failure. Stale *sections* are skipped and
/// counted instead (see [`LoadStats::sections_skipped`]); an error
/// means the file itself is unusable.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file IO failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The file ends before the named structure was complete.
    Truncated(&'static str),
    /// Internally inconsistent bytes (bad index, bad UTF-8, length
    /// mismatch, unbuildable model).
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::Truncated(what) => write!(f, "snapshot truncated in {what}"),
            SnapshotError::Malformed(why) => write!(f, "malformed snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn malformed(why: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed(why.into())
}

/// What one save wrote.
#[derive(Debug, Clone, Copy, Default)]
pub struct SaveStats {
    /// Sections written.
    pub sections: u64,
    /// `(request, report)` pairs written across result sections.
    pub result_entries: u64,
    /// Candidate strings written across candidate sections.
    pub candidate_entries: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
}

/// What one load merged (or refused).
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadStats {
    /// Sections decoded, digest-verified, and merged.
    pub sections_loaded: u64,
    /// Sections skipped whole: digest mismatch, invalid model, unknown
    /// fingerprint schema, or unknown section kind.
    pub sections_skipped: u64,
    /// Reports inserted into the result memo.
    pub results_inserted: u64,
    /// Reports already present (live entry won).
    pub results_present: u64,
    /// Candidate strings merged into session memos.
    pub candidates_merged: u64,
    /// Individual entries dropped inside otherwise-good sections
    /// (unknown strategy or analysis mode from a future producer).
    pub entries_skipped: u64,
    /// Decoded size in bytes.
    pub bytes: u64,
}

/// Cumulative snapshot counters, surfaced via
/// [`EngineStats::snapshot`](crate::EngineStats::snapshot) (and the
/// serve daemon's `stats` op).
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotTotals {
    /// Successful saves.
    pub saves: u64,
    /// Successful loads.
    pub loads: u64,
    /// Sections merged across all loads.
    pub sections_loaded: u64,
    /// Sections skipped across all loads.
    pub sections_skipped: u64,
    /// Bytes written across all saves.
    pub bytes_written: u64,
    /// Bytes read across all loads.
    pub bytes_read: u64,
}

/// Atomic backing of [`SnapshotTotals`], owned by the engine.
#[derive(Debug, Default)]
pub(crate) struct SnapCounters {
    saves: AtomicU64,
    loads: AtomicU64,
    sections_loaded: AtomicU64,
    sections_skipped: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl SnapCounters {
    pub(crate) fn totals(&self) -> SnapshotTotals {
        SnapshotTotals {
            saves: self.saves.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            sections_loaded: self.sections_loaded.load(Ordering::Relaxed),
            sections_skipped: self.sections_skipped.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------- codec

/// Little-endian append-only byte sink.
#[derive(Default)]
struct Wr(Vec<u8>);

impl Wr {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(t) => {
                self.u8(1);
                self.u64(t);
            }
            None => self.u8(0),
        }
    }
}

/// Bounds-checked little-endian reader over a byte slice. Every read
/// that would run past the end returns [`SnapshotError::Truncated`]
/// with the region name — no read ever panics, and counts from the
/// wire never pre-size allocations (a lying count runs into the bounds
/// check after at most one element).
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8], what: &'static str) -> Self {
        Rd { buf, pos: 0, what }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() - self.pos < n {
            return Err(SnapshotError::Truncated(self.what));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| malformed("invalid utf-8 string"))
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.u64()?),
        })
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Arena iteration order of `model`'s elements, plus the inverse map
/// (raw id index → position). Actions and op references are encoded as
/// *positions* in this order, so a rebuilt model with freshly assigned
/// ids decodes them consistently.
fn element_positions(model: &Model) -> (Vec<ElementId>, HashMap<usize, u32>) {
    let order: Vec<ElementId> = model.comm().elements().map(|(id, _)| id).collect();
    let pos = order
        .iter()
        .enumerate()
        .map(|(i, id)| (id.index(), i as u32))
        .collect();
    (order, pos)
}

fn encode_model(w: &mut Wr, model: &Model) -> Result<(), SnapshotError> {
    let comm = model.comm();
    let (_, pos) = element_positions(model);
    let elem_pos = |id: ElementId| -> Result<u32, SnapshotError> {
        pos.get(&id.index())
            .copied()
            .ok_or_else(|| malformed("model references an element outside its own arena"))
    };
    w.u32(comm.element_count() as u32);
    for (_, e) in comm.elements() {
        w.str(&e.name);
        w.u64(e.wcet);
        w.u8(e.pipelinable as u8);
    }
    let edges: Vec<_> = comm.graph().edges().collect();
    w.u32(edges.len() as u32);
    for edge in edges {
        w.u32(elem_pos(edge.from)?);
        w.u32(elem_pos(edge.to)?);
        match &edge.weight.label {
            Some(label) => {
                w.u8(1);
                w.str(label);
            }
            None => w.u8(0),
        }
    }
    w.u32(model.constraints().len() as u32);
    for c in model.constraints() {
        w.str(&c.name);
        w.u8(matches!(c.kind, ConstraintKind::Asynchronous) as u8);
        w.u64(c.period);
        w.u64(c.deadline);
        let ops: Vec<_> = c.task.ops().collect();
        let op_pos: HashMap<usize, u32> = ops
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (id.index(), i as u32))
            .collect();
        w.u32(ops.len() as u32);
        for (_, op) in &ops {
            w.str(&op.label);
            w.u32(elem_pos(op.element)?);
        }
        let tedges: Vec<_> = c.task.precedence_edges().collect();
        w.u32(tedges.len() as u32);
        for (u, v) in tedges {
            let p = |id: rtcg_core::task::OpId| {
                op_pos
                    .get(&id.index())
                    .copied()
                    .ok_or_else(|| malformed("task graph edge references an unknown op"))
            };
            w.u32(p(u)?);
            w.u32(p(v)?);
        }
    }
    Ok(())
}

fn decode_model(r: &mut Rd<'_>) -> Result<(Model, Vec<ElementId>), SnapshotError> {
    let mut b = ModelBuilder::new();
    let ne = r.u32()?;
    let mut ids = Vec::new();
    for _ in 0..ne {
        let name = r.str()?;
        let wcet = r.u64()?;
        let pipe = r.u8()? != 0;
        ids.push(if pipe {
            b.element(&name, wcet)
        } else {
            b.element_unpipelinable(&name, wcet)
        });
    }
    let elem = |ids: &[ElementId], p: u32| -> Result<ElementId, SnapshotError> {
        ids.get(p as usize)
            .copied()
            .ok_or_else(|| malformed("element position out of range"))
    };
    let nchan = r.u32()?;
    for _ in 0..nchan {
        let from = elem(&ids, r.u32()?)?;
        let to = elem(&ids, r.u32()?)?;
        if r.u8()? != 0 {
            let label = r.str()?;
            b.channel_labeled(from, to, &label);
        } else {
            b.channel(from, to);
        }
    }
    let ncons = r.u32()?;
    for _ in 0..ncons {
        let name = r.str()?;
        let is_async = r.u8()? != 0;
        let period = r.u64()?;
        let deadline = r.u64()?;
        let nops = r.u32()?;
        let mut tb = TaskGraphBuilder::new();
        let mut labels = Vec::new();
        for _ in 0..nops {
            let label = r.str()?;
            let e = elem(&ids, r.u32()?)?;
            tb = tb.op(&label, e);
            labels.push(label);
        }
        let nedges = r.u32()?;
        for _ in 0..nedges {
            let u = r.u32()? as usize;
            let v = r.u32()? as usize;
            let lu = labels
                .get(u)
                .ok_or_else(|| malformed("precedence edge op position out of range"))?;
            let lv = labels
                .get(v)
                .ok_or_else(|| malformed("precedence edge op position out of range"))?;
            tb = tb.edge(lu, lv);
        }
        let tg = tb
            .build()
            .map_err(|e| malformed(format!("task graph does not build: {e}")))?;
        if is_async {
            b.asynchronous(&name, tg, period, deadline);
        } else {
            b.periodic(&name, tg, period, deadline);
        }
    }
    let model = b
        .build()
        .map_err(|e| malformed(format!("model does not build: {e}")))?;
    Ok((model, ids))
}

/// `0` = idle, `1 + position` = run that element.
fn encode_actions(
    w: &mut Wr,
    actions: &[Action],
    pos: &HashMap<usize, u32>,
) -> Result<(), SnapshotError> {
    w.u32(actions.len() as u32);
    for a in actions {
        match a {
            Action::Idle => w.u32(0),
            Action::Run(id) => {
                let p = pos
                    .get(&id.index())
                    .copied()
                    .ok_or_else(|| malformed("schedule action references an unknown element"))?;
                w.u32(1 + p);
            }
        }
    }
    Ok(())
}

fn decode_actions(r: &mut Rd<'_>, ids: &[ElementId]) -> Result<Vec<Action>, SnapshotError> {
    let n = r.u32()?;
    let mut actions = Vec::new();
    for _ in 0..n {
        let code = r.u32()?;
        actions.push(if code == 0 {
            Action::Idle
        } else {
            Action::Run(
                ids.get(code as usize - 1)
                    .copied()
                    .ok_or_else(|| malformed("action element position out of range"))?,
            )
        });
    }
    Ok(actions)
}

fn encode_request(w: &mut Wr, req: &AnalysisRequest) {
    w.u8(match req.mode {
        AnalysisMode::Heuristic => 0,
        AnalysisMode::Merged => 1,
        AnalysisMode::Exact => 2,
    });
    w.u64(req.synthesis.max_hyperperiod);
    w.u64(req.synthesis.game_state_budget as u64);
    w.u64(req.search.max_len as u64);
    w.u64(req.search.node_budget);
    w.u64(req.lanes as u64);
}

/// `None` = unknown mode tag from a future producer (entry skipped).
fn decode_request(r: &mut Rd<'_>) -> Result<Option<AnalysisRequest>, SnapshotError> {
    let mode = match r.u8()? {
        0 => Some(AnalysisMode::Heuristic),
        1 => Some(AnalysisMode::Merged),
        2 => Some(AnalysisMode::Exact),
        _ => None,
    };
    let max_hyperperiod = r.u64()?;
    let game_state_budget = r.u64()? as usize;
    let max_len = r.u64()? as usize;
    let node_budget = r.u64()?;
    let lanes = r.u64()? as usize;
    if lanes == 0 {
        return Err(malformed("request with zero lanes"));
    }
    Ok(mode.map(|mode| AnalysisRequest {
        mode,
        synthesis: SynthesisConfig {
            max_hyperperiod,
            game_state_budget,
        },
        search: SearchConfig {
            max_len,
            node_budget,
        },
        threads: 1,
        lanes,
    }))
}

fn encode_report(w: &mut Wr, report: &AnalysisReport) -> Result<(), SnapshotError> {
    encode_model(w, &report.analysis_model)?;
    let (_, pos) = element_positions(&report.analysis_model);
    match &report.verdict {
        Verdict::Feasible { schedule, strategy } => {
            w.u8(0);
            w.str(strategy);
            encode_actions(w, schedule.actions(), &pos)?;
        }
        Verdict::Infeasible { reason } => {
            w.u8(1);
            w.str(reason);
        }
        Verdict::Unknown { reason } => {
            w.u8(2);
            w.str(reason);
        }
        Verdict::FeasibleLanes { schedule, strategy } => {
            w.u8(3);
            w.str(strategy);
            w.u32(schedule.lane_count() as u32);
            for row in schedule.rows() {
                encode_actions(w, row, &pos)?;
            }
        }
    }
    match &report.search {
        Some(s) => {
            w.u8(1);
            w.u64(s.nodes_visited);
            w.u64(s.candidates_checked);
            w.u8(s.exhausted_bound as u8);
        }
        None => w.u8(0),
    }
    w.u64(report.groups_merged as u64);
    Ok(())
}

/// `None` = the entry's strategy is not in [`STRATEGIES`] (skipped).
fn decode_report(r: &mut Rd<'_>) -> Result<Option<AnalysisReport>, SnapshotError> {
    let (analysis_model, ids) = decode_model(r)?;
    let verdict = match r.u8()? {
        0 => {
            let strategy = r.str()?;
            let actions = decode_actions(r, &ids)?;
            intern_strategy(&strategy).map(|strategy| Verdict::Feasible {
                schedule: StaticSchedule::new(actions),
                strategy,
            })
        }
        1 => Some(Verdict::Infeasible { reason: r.str()? }),
        2 => Some(Verdict::Unknown { reason: r.str()? }),
        3 => {
            let strategy = r.str()?;
            let n = r.u32()? as usize;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(decode_actions(r, &ids)?);
            }
            intern_strategy(&strategy).map(|strategy| Verdict::FeasibleLanes {
                schedule: LaneSchedule::new(rows),
                strategy,
            })
        }
        t => return Err(malformed(format!("unknown verdict tag {t}"))),
    };
    let search = match r.u8()? {
        0 => None,
        _ => Some(SearchStats {
            nodes_visited: r.u64()?,
            candidates_checked: r.u64()?,
            exhausted_bound: r.u8()? != 0,
        }),
    };
    let groups_merged = r.u64()? as usize;
    Ok(verdict.map(|verdict| AnalysisReport {
        verdict,
        analysis_model,
        search,
        groups_merged,
        cached: false,
    }))
}

/// Encodes one [`SessionMemo`] (deterministic candidate order: sorted
/// by encoded action codes). Returns the candidate count.
fn encode_memo(
    w: &mut Wr,
    memo: &SessionMemo,
    pos: &HashMap<usize, u32>,
) -> Result<u64, SnapshotError> {
    let mut cands: Vec<(Vec<u32>, &CandidateMemo)> = Vec::with_capacity(memo.candidates.len());
    for (actions, m) in &memo.candidates {
        let mut codes = Vec::with_capacity(actions.len());
        for a in actions {
            codes.push(match a {
                Action::Idle => 0,
                Action::Run(id) => {
                    1 + pos
                        .get(&id.index())
                        .copied()
                        .ok_or_else(|| malformed("memo candidate references unknown element"))?
                }
            });
        }
        cands.push((codes, m));
    }
    cands.sort_by(|a, b| a.0.cmp(&b.0));
    w.u32(cands.len() as u32);
    for (codes, m) in &cands {
        w.u32(codes.len() as u32);
        for &c in codes {
            w.u32(c);
        }
        w.u32(m.async_latency.len() as u32);
        for (&ix, &lat) in &m.async_latency {
            w.u64(ix as u64);
            w.opt_u64(lat);
        }
        w.u32(m.periodic.len() as u32);
        for (&(ix, p, l, d), &(unserved, worst)) in &m.periodic {
            w.u64(ix as u64);
            w.u64(p);
            w.u64(l);
            w.u64(d);
            w.u64(unserved);
            w.opt_u64(worst);
        }
    }
    Ok(memo.candidates.len() as u64)
}

fn decode_memo(
    r: &mut Rd<'_>,
    ids: &[ElementId],
) -> Result<Vec<(Vec<Action>, CandidateMemo)>, SnapshotError> {
    let ncand = r.u32()?;
    let mut cands = Vec::new();
    for _ in 0..ncand {
        let actions = decode_actions(r, ids)?;
        let mut memo = CandidateMemo::default();
        let na = r.u32()?;
        for _ in 0..na {
            let ix = r.u64()? as usize;
            let lat = r.opt_u64()?;
            memo.async_latency.insert(ix, lat);
        }
        let np = r.u32()?;
        for _ in 0..np {
            let key = (r.u64()? as usize, r.u64()?, r.u64()?, r.u64()?);
            let unserved = r.u64()?;
            let worst = r.opt_u64()?;
            memo.periodic.insert(key, (unserved, worst));
        }
        cands.push((actions, memo));
    }
    Ok(cands)
}

// -------------------------------------------------------------- engine

impl Engine {
    /// Saves the engine's memos to `path`. See
    /// [`Engine::save_snapshot_with`] to include open sessions.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<SaveStats, SnapshotError> {
        self.save_snapshot_with(path, &[])
    }

    /// Saves the engine's memos plus each given open session's resident
    /// candidate memo (the serve daemon's checkpoint path).
    pub fn save_snapshot_with(
        &self,
        path: impl AsRef<Path>,
        sessions: &[&Session<'_>],
    ) -> Result<SaveStats, SnapshotError> {
        let (bytes, stats) = self.snapshot_bytes(sessions)?;
        std::fs::write(path, &bytes)?;
        Ok(stats)
    }

    /// Loads `path` and merges it into the live shards. See
    /// [`Engine::load_snapshot_with`] to also warm open sessions.
    pub fn load_snapshot(&self, path: impl AsRef<Path>) -> Result<LoadStats, SnapshotError> {
        self.load_snapshot_with(path, &mut [])
    }

    /// [`Engine::load_snapshot`], additionally merging candidate
    /// sections whose structure matches one of the given sessions into
    /// that session's resident memo (instead of the engine's shared
    /// per-structure map).
    pub fn load_snapshot_with(
        &self,
        path: impl AsRef<Path>,
        sessions: &mut [&mut Session<'_>],
    ) -> Result<LoadStats, SnapshotError> {
        let bytes = std::fs::read(path)?;
        self.load_snapshot_bytes(&bytes, sessions)
    }

    /// In-memory save: encodes every section and returns the bytes.
    /// Sections are ordered deterministically (by fingerprint), so two
    /// saves of identical cache content are byte-identical.
    pub fn snapshot_bytes(
        &self,
        sessions: &[&Session<'_>],
    ) -> Result<(Vec<u8>, SaveStats), SnapshotError> {
        let t0 = Instant::now();
        let mut stats = SaveStats::default();

        // result sections: group memo entries by subject model, keyed
        // through the registries (entries whose model or request shape
        // was evicted from the registry are unsaveable and dropped)
        type ModelEntries = (Model, Vec<(u64, AnalysisRequest, AnalysisReport)>);
        let requests = unpoison(self.requests.lock()).clone();
        let mut by_model: BTreeMap<u64, ModelEntries> = BTreeMap::new();
        for ix in 0..SHARDS {
            let models = unpoison(self.models[ix].lock()).clone();
            let shard = self.recover_shard(ix, self.results[ix].read());
            for (&(mfp, rfp), report) in shard.iter() {
                let (Some(model), Some(req)) = (models.get(&mfp), requests.get(&rfp)) else {
                    continue;
                };
                by_model
                    .entry(mfp)
                    .or_insert_with(|| (model.clone(), Vec::new()))
                    .1
                    .push((rfp, *req, report.clone()));
            }
        }
        let mut sections: Vec<(u8, Vec<u8>)> = Vec::new();
        for (_, (model, mut entries)) in by_model {
            entries.sort_by_key(|&(rfp, _, _)| rfp);
            let mut w = Wr::default();
            encode_model(&mut w, &model)?;
            w.u64(model.content_digest());
            w.u32(entries.len() as u32);
            for (_, req, report) in &entries {
                encode_request(&mut w, req);
                encode_report(&mut w, report)?;
            }
            stats.result_entries += entries.len() as u64;
            sections.push((SECTION_RESULTS, w.0));
        }

        // candidate sections: the engine's per-structure sessions, then
        // the caller's open sessions (merging is idempotent, so overlap
        // between the two is harmless)
        let mut by_structure: BTreeMap<u64, (Model, Vec<u8>, u64)> = BTreeMap::new();
        for shard in &self.sessions {
            let map = unpoison(shard.lock()).clone();
            for (&sf, sess) in map.iter() {
                let sess = unpoison(sess.lock());
                if sess.memo.is_empty() {
                    continue;
                }
                let (_, pos) = element_positions(&sess.model);
                let mut w = Wr::default();
                let n = encode_memo(&mut w, &sess.memo, &pos)?;
                by_structure.insert(sf, (sess.model.clone(), w.0, n));
            }
        }
        for (_, (model, memo_bytes, n)) in by_structure {
            let mut w = Wr::default();
            encode_model(&mut w, &model)?;
            w.u64(model.content_digest());
            w.0.extend_from_slice(&memo_bytes);
            stats.candidate_entries += n;
            sections.push((SECTION_CANDIDATES, w.0));
        }
        for s in sessions {
            if s.resident_memo().is_empty() {
                continue;
            }
            let (_, pos) = element_positions(s.model());
            let mut w = Wr::default();
            encode_model(&mut w, s.model())?;
            w.u64(s.model().content_digest());
            stats.candidate_entries += encode_memo(&mut w, s.resident_memo(), &pos)?;
            sections.push((SECTION_CANDIDATES, w.0));
        }

        let mut out = Wr::default();
        out.0.extend_from_slice(&MAGIC);
        out.u32(FORMAT_VERSION);
        out.u32(sections.len() as u32);
        for (kind, payload) in &sections {
            out.u8(*kind);
            out.u32(FP_SCHEMA_VERSION);
            out.u64(payload.len() as u64);
            out.0.extend_from_slice(payload);
        }
        stats.sections = sections.len() as u64;
        stats.bytes = out.0.len() as u64;

        self.snap.saves.fetch_add(1, Ordering::Relaxed);
        self.snap
            .bytes_written
            .fetch_add(stats.bytes, Ordering::Relaxed);
        if rtcg_obs::recorder().is_some() {
            rtcg_obs::histogram!("engine.snapshot.save_us", t0.elapsed().as_micros() as u64);
            rtcg_obs::counter!("engine.snapshot.bytes", stats.bytes);
        }
        Ok((out.0, stats))
    }

    /// In-memory load: decodes `bytes` and merges into the live shards.
    /// Each section is decoded and digest-verified in full before any
    /// shard is touched; on error the engine is left exactly as it was.
    pub fn load_snapshot_bytes(
        &self,
        bytes: &[u8],
        sessions: &mut [&mut Session<'_>],
    ) -> Result<LoadStats, SnapshotError> {
        let t0 = Instant::now();
        let mut stats = LoadStats {
            bytes: bytes.len() as u64,
            ..LoadStats::default()
        };
        let mut r = Rd::new(bytes, "header");
        if r.take(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let nsections = r.u32()?;
        let mut resident: HashMap<u64, &mut SessionMemo> = HashMap::new();
        for s in sessions.iter_mut() {
            let sf = structure_fingerprint(s.model());
            resident.insert(sf, s.resident_memo_mut());
        }
        r.what = "section header";
        for _ in 0..nsections {
            let kind = r.u8()?;
            let schema = r.u32()?;
            let len = r.u64()? as usize;
            let payload = r.take(len)?;
            if schema != FP_SCHEMA_VERSION {
                stats.sections_skipped += 1;
                continue;
            }
            match kind {
                SECTION_RESULTS => self.merge_result_section(payload, &mut stats)?,
                SECTION_CANDIDATES => {
                    self.merge_candidate_section(payload, &mut resident, &mut stats)?
                }
                _ => stats.sections_skipped += 1,
            }
        }
        if !r.done() {
            return Err(malformed("trailing bytes after the final section"));
        }

        self.snap.loads.fetch_add(1, Ordering::Relaxed);
        self.snap
            .sections_loaded
            .fetch_add(stats.sections_loaded, Ordering::Relaxed);
        self.snap
            .sections_skipped
            .fetch_add(stats.sections_skipped, Ordering::Relaxed);
        self.snap
            .bytes_read
            .fetch_add(stats.bytes, Ordering::Relaxed);
        if rtcg_obs::recorder().is_some() {
            rtcg_obs::histogram!("engine.snapshot.load_us", t0.elapsed().as_micros() as u64);
            rtcg_obs::counter!("engine.snapshot.bytes", stats.bytes);
            rtcg_obs::counter!("engine.snapshot.sections_loaded", stats.sections_loaded);
            rtcg_obs::counter!("engine.snapshot.sections_skipped", stats.sections_skipped);
        }
        Ok(stats)
    }

    fn merge_result_section(
        &self,
        payload: &[u8],
        stats: &mut LoadStats,
    ) -> Result<(), SnapshotError> {
        let mut r = Rd::new(payload, "result section");
        let (model, _ids) = decode_model(&mut r)?;
        let digest = r.u64()?;
        let n = r.u32()?;
        let mut entries = Vec::new();
        for _ in 0..n {
            let req = decode_request(&mut r)?;
            let report = decode_report(&mut r)?;
            match (req, report) {
                (Some(req), Some(report)) => entries.push((req, report)),
                _ => stats.entries_skipped += 1,
            }
        }
        if !r.done() {
            return Err(malformed("trailing bytes in result section"));
        }
        // recompute, never trust: the digest detects a stale producer,
        // the fingerprints are derived fresh from the decoded content
        if model.validate().is_err() || model.content_digest() != digest {
            stats.sections_skipped += 1;
            return Ok(());
        }
        let mfp = model_fingerprint(&model);
        let ix = shard_of(mfp);
        let mut admitted: Vec<(u64, AnalysisRequest)> = Vec::new();
        {
            let mut shard = self.recover_shard(ix, self.results[ix].write());
            for (req, report) in entries {
                let key = (mfp, request_fingerprint(&req));
                match shard.entry(key) {
                    std::collections::hash_map::Entry::Occupied(_) => stats.results_present += 1,
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(report);
                        stats.results_inserted += 1;
                        self.shard_counters[ix]
                            .inserts
                            .fetch_add(1, Ordering::Relaxed);
                        admitted.push((key.1, req));
                    }
                }
            }
        }
        // registry upkeep outside the shard lock so a later save can
        // re-key what we just merged
        if !admitted.is_empty() {
            let mut requests = unpoison(self.requests.lock());
            for (rfp, req) in admitted {
                requests.entry(rfp).or_insert(req);
            }
        }
        unpoison(self.models[ix].lock()).entry(mfp).or_insert(model);
        stats.sections_loaded += 1;
        Ok(())
    }

    fn merge_candidate_section(
        &self,
        payload: &[u8],
        resident: &mut HashMap<u64, &mut SessionMemo>,
        stats: &mut LoadStats,
    ) -> Result<(), SnapshotError> {
        let mut r = Rd::new(payload, "candidate section");
        let (model, ids) = decode_model(&mut r)?;
        let digest = r.u64()?;
        let cands = decode_memo(&mut r, &ids)?;
        if !r.done() {
            return Err(malformed("trailing bytes in candidate section"));
        }
        if model.validate().is_err() || model.content_digest() != digest {
            stats.sections_skipped += 1;
            return Ok(());
        }
        let sf = structure_fingerprint(&model);
        let merged = if let Some(memo) = resident.get_mut(&sf) {
            merge_memo(memo, cands)
        } else {
            match self.session_for(&model, sf) {
                Ok(sess) => merge_memo(&mut unpoison(sess.lock()).memo, cands),
                // a model the pruner template refuses cannot host a
                // session — treat like any other stale section
                Err(_) => {
                    stats.sections_skipped += 1;
                    return Ok(());
                }
            }
        };
        stats.candidates_merged += merged;
        stats.sections_loaded += 1;
        Ok(())
    }
}

/// Entry-granular insert-if-absent: live latencies/window scans always
/// win over snapshot values. Returns the number of candidate strings
/// touched.
fn merge_memo(dst: &mut SessionMemo, cands: Vec<(Vec<Action>, CandidateMemo)>) -> u64 {
    let mut merged = 0;
    for (actions, m) in cands {
        let entry = dst.candidates.entry(actions).or_default();
        for (ix, v) in m.async_latency {
            entry.async_latency.entry(ix).or_insert(v);
        }
        for (k, v) in m.periodic {
            entry.periodic.entry(k).or_insert(v);
        }
        merged += 1;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::feasibility::SearchConfig;

    fn exact_req() -> AnalysisRequest {
        AnalysisRequest {
            search: SearchConfig {
                max_len: 6,
                node_budget: 2_000_000,
            },
            ..AnalysisRequest::exact()
        }
    }

    #[test]
    fn snapshot_round_trips_results_and_candidates() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let engine = Engine::new();
        let cold = engine.analyze(&m, &exact_req()).unwrap();
        let heur = engine.analyze(&m, &AnalysisRequest::default()).unwrap();
        let (bytes, save) = engine.snapshot_bytes(&[]).unwrap();
        assert!(save.sections >= 2, "result + candidate sections");
        assert!(save.result_entries == 2);
        assert!(save.candidate_entries > 0);
        assert_eq!(save.bytes, bytes.len() as u64);

        let warm = Engine::new();
        let load = warm.load_snapshot_bytes(&bytes, &mut []).unwrap();
        assert_eq!(load.sections_loaded, save.sections);
        assert_eq!(load.sections_skipped, 0);
        assert_eq!(load.results_inserted, 2);
        assert!(load.candidates_merged > 0);

        // both replays are result-memo hits with bit-identical verdicts
        let replay = warm.analyze(&m, &exact_req()).unwrap();
        assert!(replay.cached);
        assert_eq!(
            replay.verdict.schedule().map(|s| s.actions().to_vec()),
            cold.verdict.schedule().map(|s| s.actions().to_vec())
        );
        let replay_h = warm.analyze(&m, &AnalysisRequest::default()).unwrap();
        assert!(replay_h.cached);
        assert_eq!(
            replay_h.verdict.schedule().map(|s| s.actions().to_vec()),
            heur.verdict.schedule().map(|s| s.actions().to_vec())
        );
        let stats = warm.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.snapshot.loads, 1);
        assert_eq!(stats.snapshot.bytes_read, bytes.len() as u64);

        // a second save of the merged engine reproduces the bytes
        let (bytes2, _) = warm.snapshot_bytes(&[]).unwrap();
        assert_eq!(bytes, bytes2, "snapshot encoding is deterministic");
    }

    #[test]
    fn candidate_memo_serves_leaf_evals_after_load() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let engine = Engine::new();
        engine.analyze(&m, &exact_req()).unwrap();
        let computed = engine.stats().leaf_evals_computed;
        assert!(computed > 0);
        let (bytes, _) = engine.snapshot_bytes(&[]).unwrap();

        // deadline-edited probe on a warm engine: same structure, so
        // the loaded candidate memo serves the leaf evaluations
        let warm = Engine::new();
        warm.load_snapshot_bytes(&bytes, &mut []).unwrap();
        let edited = rtcg_core::ModelDelta::SetDeadline {
            constraint: rtcg_core::ConstraintId::new(0),
            deadline: m.constraints()[0].deadline + 1,
        }
        .apply(&m)
        .unwrap();
        warm.analyze(&edited, &exact_req()).unwrap();
        let s = warm.stats();
        assert!(
            s.leaf_evals_saved > 0,
            "loaded candidate memo should serve leaf evals, stats: {s:?}"
        );
    }

    #[test]
    fn bad_magic_and_version_are_structured_errors() {
        let engine = Engine::new();
        let (m, _) = rtcg_core::mok_example::default_model();
        engine.analyze(&m, &AnalysisRequest::default()).unwrap();
        let (mut bytes, _) = engine.snapshot_bytes(&[]).unwrap();

        let mut flipped = bytes.clone();
        flipped[0] ^= 0xff;
        assert!(matches!(
            engine.load_snapshot_bytes(&flipped, &mut []),
            Err(SnapshotError::BadMagic)
        ));

        bytes[8] = 0xee; // low byte of the format version
        match engine.load_snapshot_bytes(&bytes, &mut []) {
            Err(SnapshotError::UnsupportedVersion(v)) => assert_eq!(v & 0xff, 0xee),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn digest_mismatch_skips_the_section() {
        let engine = Engine::new();
        let (m, _) = rtcg_core::mok_example::default_model();
        engine.analyze(&m, &AnalysisRequest::default()).unwrap();
        let (bytes, save) = engine.snapshot_bytes(&[]).unwrap();
        assert_eq!(save.sections, 1);

        // the stored digest is the 8 bytes right after the encoded
        // model; flip the last payload byte groups_merged occupies
        // instead — easier: corrupt the digest by brute force: find the
        // u64 equal to the model's digest and flip it
        let digest = m.content_digest().to_le_bytes();
        let pos = bytes
            .windows(8)
            .position(|w| w == digest)
            .expect("digest bytes present");
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x01;
        let warm = Engine::new();
        let load = warm.load_snapshot_bytes(&corrupt, &mut []).unwrap();
        assert_eq!(load.sections_loaded, 0);
        assert_eq!(load.sections_skipped, 1);
        assert_eq!(load.results_inserted, 0);
        // the warm engine is untouched
        assert!(
            !warm
                .analyze(&m, &AnalysisRequest::default())
                .unwrap()
                .cached
        );
    }

    #[test]
    fn unknown_fingerprint_schema_skips_the_section() {
        let engine = Engine::new();
        let (m, _) = rtcg_core::mok_example::default_model();
        engine.analyze(&m, &AnalysisRequest::default()).unwrap();
        let (mut bytes, _) = engine.snapshot_bytes(&[]).unwrap();
        // first section header starts right after magic+version+count:
        // [kind u8][schema u32]...
        let schema_at = MAGIC.len() + 4 + 4 + 1;
        bytes[schema_at] ^= 0xff;
        let warm = Engine::new();
        let load = warm.load_snapshot_bytes(&bytes, &mut []).unwrap();
        assert_eq!(load.sections_loaded, 0);
        assert_eq!(load.sections_skipped, 1);
    }

    #[test]
    fn empty_engine_snapshot_round_trips() {
        let engine = Engine::new();
        let (bytes, save) = engine.snapshot_bytes(&[]).unwrap();
        assert_eq!(save.sections, 0);
        let load = Engine::new().load_snapshot_bytes(&bytes, &mut []).unwrap();
        assert_eq!(load.sections_loaded, 0);
        assert_eq!(load.sections_skipped, 0);
    }
}
