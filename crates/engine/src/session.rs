//! Long-lived analysis sessions: a resident model, a delta journal, and
//! delta-aware invalidation of the engine's memo layers.
//!
//! A [`Session`] is the unit of interactive analysis (DESIGN.md §13).
//! It owns a resident [`Model`] plus the per-structure incremental
//! state the engine otherwise keeps in its shared session map — the
//! candidate memo and the pruner template — and keeps both **hot across
//! model edits** instead of abandoning them whenever the structure
//! fingerprint moves:
//!
//! * [`Session::apply`] applies one [`ModelDelta`], records
//!   `(delta, inverse)` in the journal, and invalidates exactly the
//!   memo slices whose [`SubFingerprints`] moved: nothing for a
//!   deadline/period retune or channel splice, one constraint column
//!   for a task-graph change, everything for a weight/alphabet change.
//!   Result-memo entries for the superseded model fingerprint are
//!   evicted from their shard (counted in
//!   [`crate::ShardStats::evictions`]).
//! * [`Session::analyze`] answers a [`Query`] through the engine's one
//!   canonical path, lending its resident state; reports are
//!   bit-identical to a cold [`crate::analyze_once`] of the same model
//!   (the differential tests pin this).
//! * [`Session::undo`] pops the journal and applies the recorded
//!   inverse through the same invalidation machinery, restoring the
//!   previous model content.
//!
//! Sessions borrow the [`Engine`]: every session shares the engine's
//! result memo (cross-session reuse), while candidate memos stay
//! per-session so their column indices track each session's own
//! constraint numbering through deltas.

use std::sync::atomic::Ordering;
use std::time::Duration;

use rtcg_core::delta::ModelDelta;
use rtcg_core::feasibility::{CancelToken, PrunerTemplate, SearchConfig};
use rtcg_core::heuristic::SynthesisConfig;
use rtcg_core::model::{ElementId, Model};
use rtcg_core::ConstraintId;

use crate::fingerprint::{model_fingerprint, sub_fingerprints, SubFingerprints};
use crate::memo::SessionMemo;
use crate::{AnalysisMode, AnalysisReport, AnalysisRequest, Engine, EngineError};

/// Session-level engine options — knobs that outlive any single query.
/// The per-query half of the old `AnalysisRequest` lives in [`Query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Worker threads for the exact search. `threads ≤ 1` keeps the
    /// candidate memo engaged (the parallel path shards its own
    /// evaluators and is replay-identical, so verdicts never differ).
    pub threads: usize,
    /// Wall-clock budget per analyze call, in milliseconds. A run whose
    /// budget fires returns its partial outcome (`Unknown` unless the
    /// search finished first) and is never memoized.
    pub budget_ms: Option<u64>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            threads: 1,
            budget_ms: None,
        }
    }
}

/// Which constraints a query asks about.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ConstraintSelection {
    /// Analyze the whole model.
    #[default]
    All,
    /// Analyze the model restricted to these constraints (a feasibility
    /// probe of a subsystem). The restriction is itself a model, so it
    /// keys the result memo by its own content — selection needs no
    /// extra fingerprint dimension.
    Only(Vec<ConstraintId>),
}

/// One analysis question: the per-call half of the old
/// `AnalysisRequest`. Session-level knobs (threads, budget) live in
/// [`EngineOptions`].
#[derive(Debug, Clone)]
pub struct Query {
    /// Pipeline selection.
    pub mode: AnalysisMode,
    /// Knobs for the heuristic strategies.
    pub synthesis: SynthesisConfig,
    /// Knobs for the exact search.
    pub search: SearchConfig,
    /// Constraint selection.
    pub selection: ConstraintSelection,
    /// Processor lanes (1 = the paper's single-processor analysis).
    pub lanes: usize,
}

impl Default for Query {
    fn default() -> Self {
        Query {
            mode: AnalysisMode::default(),
            synthesis: SynthesisConfig::default(),
            search: SearchConfig::default(),
            selection: ConstraintSelection::default(),
            lanes: 1,
        }
    }
}

impl Query {
    /// An exact-search query with default knobs.
    pub fn exact() -> Self {
        Query {
            mode: AnalysisMode::Exact,
            ..Query::default()
        }
    }
}

impl AnalysisRequest {
    /// Splits the legacy request into its per-call and session-level
    /// halves.
    pub fn split(&self) -> (Query, EngineOptions) {
        (
            Query {
                mode: self.mode,
                synthesis: self.synthesis,
                search: self.search,
                selection: ConstraintSelection::All,
                lanes: self.lanes,
            },
            EngineOptions {
                threads: self.threads,
                budget_ms: None,
            },
        )
    }

    /// Reassembles a legacy request from the split halves (selection is
    /// not representable — the caller restricts the model instead).
    pub fn from_parts(query: &Query, options: &EngineOptions) -> Self {
        AnalysisRequest {
            mode: query.mode,
            synthesis: query.synthesis,
            search: query.search,
            threads: options.threads,
            lanes: query.lanes,
        }
    }
}

/// What [`Session::apply`] did to the caches, for telemetry and tests.
#[derive(Debug, Clone, Copy)]
pub struct DeltaOutcome {
    /// The delta's [`ModelDelta::kind`] tag.
    pub kind: &'static str,
    /// Candidate-memo `(candidate, constraint-slice)` entries evicted.
    pub slices_evicted: u64,
    /// Candidate-memo entries that survived the delta.
    pub slices_kept: u64,
    /// Result-memo reports evicted (the superseded model fingerprint's
    /// shard slice).
    pub results_evicted: u64,
    /// True when the whole candidate memo had to go (weight/alphabet
    /// change).
    pub full_invalidation: bool,
}

/// Cumulative per-session counters; see [`Session::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Deltas applied (undos included).
    pub deltas_applied: u64,
    /// Current journal depth (undone entries popped).
    pub journal_len: usize,
    /// Analyze calls answered.
    pub analyses: u64,
    /// Candidate strings currently memoized.
    pub memo_candidates: u64,
    /// `(candidate, constraint-slice)` entries currently memoized.
    pub memo_entries: u64,
    /// Candidate-memo entries evicted by deltas, cumulative.
    pub slices_evicted: u64,
    /// Result-memo reports evicted by deltas, cumulative.
    pub results_evicted: u64,
    /// Deltas that cleared the whole candidate memo.
    pub full_invalidations: u64,
}

struct JournalRecord {
    delta: ModelDelta,
    inverse: ModelDelta,
}

/// A long-lived analysis session. Created by [`Engine::open_session`];
/// see the module docs for the lifecycle.
pub struct Session<'e> {
    engine: &'e Engine,
    options: EngineOptions,
    model: Model,
    model_fp: u64,
    sub: SubFingerprints,
    memo: SessionMemo,
    /// Lazily built exact-search state (template + used alphabet);
    /// dropped whenever a delta moves the constraint shape or weights.
    exact: Option<(PrunerTemplate, Vec<ElementId>)>,
    journal: Vec<JournalRecord>,
    deltas_applied: u64,
    analyses: u64,
    slices_evicted: u64,
    results_evicted: u64,
    full_invalidations: u64,
}

/// The session state [`Engine`]'s canonical query path borrows for one
/// analyze call (crate-internal plumbing).
pub(crate) struct ResidentMut<'a> {
    pub(crate) memo: &'a mut SessionMemo,
    pub(crate) exact: &'a mut Option<(PrunerTemplate, Vec<ElementId>)>,
}

impl Engine {
    /// Opens a session owning `model` with default options. The model
    /// is validated here; all incremental state builds lazily.
    pub fn open_session(&self, model: Model) -> Result<Session<'_>, EngineError> {
        self.open_session_with(model, EngineOptions::default())
    }

    /// [`Engine::open_session`] with explicit options.
    pub fn open_session_with(
        &self,
        model: Model,
        options: EngineOptions,
    ) -> Result<Session<'_>, EngineError> {
        model.validate().map_err(EngineError::from)?;
        let model_fp = model_fingerprint(&model);
        let sub = sub_fingerprints(&model);
        self.open_sessions.fetch_add(1, Ordering::Relaxed);
        rtcg_obs::gauge!(
            "engine.session.resident_models",
            self.open_sessions.load(Ordering::Relaxed)
        );
        Ok(Session {
            engine: self,
            options,
            model,
            model_fp,
            sub,
            memo: SessionMemo::default(),
            exact: None,
            journal: Vec::new(),
            deltas_applied: 0,
            analyses: 0,
            slices_evicted: 0,
            results_evicted: 0,
            full_invalidations: 0,
        })
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        self.engine.open_sessions.fetch_sub(1, Ordering::Relaxed);
        rtcg_obs::gauge!(
            "engine.session.resident_models",
            self.engine.open_sessions.load(Ordering::Relaxed)
        );
    }
}

impl<'e> Session<'e> {
    /// The resident model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The engine this session shares result memos with.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// Snapshot plumbing: the resident candidate memo, whose columns
    /// track this session's *current* constraint numbering.
    pub(crate) fn resident_memo(&self) -> &SessionMemo {
        &self.memo
    }

    /// Snapshot plumbing: mutable view for merge-on-restore.
    pub(crate) fn resident_memo_mut(&mut self) -> &mut SessionMemo {
        &mut self.memo
    }

    /// Session-level options (mutable: retune threads/budget mid-flight
    /// — neither affects verdicts, so no invalidation is needed).
    pub fn options_mut(&mut self) -> &mut EngineOptions {
        &mut self.options
    }

    /// Deltas recorded and not undone.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// The journaled deltas, oldest first.
    pub fn journal(&self) -> impl Iterator<Item = &ModelDelta> + '_ {
        self.journal.iter().map(|r| &r.delta)
    }

    /// Applies one delta to the resident model: journal it, move the
    /// fingerprints, and invalidate exactly the memo slices the delta's
    /// sub-fingerprint diff names. Errors leave the session untouched.
    pub fn apply(&mut self, delta: &ModelDelta) -> Result<DeltaOutcome, EngineError> {
        let inverse = delta.invert(&self.model).map_err(EngineError::from)?;
        let outcome = self.shift(delta)?;
        self.journal.push(JournalRecord {
            delta: delta.clone(),
            inverse,
        });
        Ok(outcome)
    }

    /// Undoes the most recent journaled delta by applying its recorded
    /// inverse (through the same invalidation machinery). Returns the
    /// undone delta, or `None` on an empty journal.
    pub fn undo(&mut self) -> Result<Option<ModelDelta>, EngineError> {
        let Some(rec) = self.journal.pop() else {
            return Ok(None);
        };
        match self.shift(&rec.inverse) {
            Ok(_) => Ok(Some(rec.delta)),
            Err(e) => {
                // an inverse is applied to exactly the state its
                // forward delta produced, so failure here is a bug —
                // restore the journal entry and surface it
                self.journal.push(rec);
                Err(e)
            }
        }
    }

    /// Shared delta machinery for [`Session::apply`] and
    /// [`Session::undo`]: rebuild the model, diff sub-fingerprints,
    /// invalidate.
    fn shift(&mut self, delta: &ModelDelta) -> Result<DeltaOutcome, EngineError> {
        let new_model = delta.apply(&self.model).map_err(EngineError::from)?;
        let new_sub = sub_fingerprints(&new_model);

        // old constraint index → new index, from the delta's own shape
        let map = |ix: usize| -> Option<usize> {
            match delta {
                ModelDelta::AddConstraint { at, .. } => Some(if ix >= *at { ix + 1 } else { ix }),
                ModelDelta::RemoveConstraint { at } => match ix.cmp(at) {
                    std::cmp::Ordering::Less => Some(ix),
                    std::cmp::Ordering::Equal => None,
                    std::cmp::Ordering::Greater => Some(ix - 1),
                },
                _ => Some(ix),
            }
        };

        let before = self.memo.entry_count();
        let full = new_sub.weights != self.sub.weights;
        let slices_evicted = if full {
            // candidate strings are action sequences over element ids
            // and every latency scan read weights: nothing survives
            self.memo.clear()
        } else {
            let changed = self.sub.changed_constraints(&new_sub, map);
            if changed.is_empty()
                && matches!(
                    delta,
                    ModelDelta::SetDeadline { .. }
                        | ModelDelta::SetPeriod { .. }
                        | ModelDelta::AddChannel { .. }
                        | ModelDelta::RemoveChannel { .. }
                )
            {
                0 // timing retunes and channel splices touch no column
            } else {
                self.memo
                    .remap_constraints(|ix| if changed.contains(&ix) { None } else { map(ix) })
            }
        };
        // the pruner template reads weights and async task graphs; keep
        // it only when neither moved (timing/channel deltas)
        if full || new_sub.constraints != self.sub.constraints {
            self.exact = None;
        }

        // evict the superseded model's result-memo slice: the session
        // will never ask about that content again, and bounded shard
        // occupancy is part of the resident-daemon contract
        let results_evicted = self.engine.evict_results(self.model_fp);

        self.model_fp = model_fingerprint(&new_model);
        self.sub = new_sub;
        self.model = new_model;
        self.deltas_applied += 1;
        self.slices_evicted += slices_evicted;
        self.results_evicted += results_evicted;
        self.full_invalidations += full as u64;

        rtcg_obs::counter!("engine.session.deltas_applied");
        rtcg_obs::counter!("engine.session.slices_evicted", slices_evicted);
        if let Some(pct) = (slices_evicted * 100).checked_div(before) {
            rtcg_obs::gauge!("engine.session.invalidation_pct", pct);
        }

        Ok(DeltaOutcome {
            kind: delta.kind(),
            slices_evicted,
            slices_kept: before - slices_evicted,
            results_evicted,
            full_invalidation: full,
        })
    }

    /// Answers a query about the resident model through the engine's
    /// canonical path, lending this session's memo and template. The
    /// report is bit-identical to a cold [`crate::analyze_once`] of the
    /// same model and query.
    pub fn analyze(&mut self, query: &Query) -> Result<AnalysisReport, EngineError> {
        self.analyses += 1;
        let req = AnalysisRequest::from_parts(query, &self.options);
        let token = self
            .options
            .budget_ms
            .map(|ms| CancelToken::with_deadline(Duration::from_millis(ms)));
        match &query.selection {
            ConstraintSelection::All => {
                let resident = ResidentMut {
                    memo: &mut self.memo,
                    exact: &mut self.exact,
                };
                self.engine
                    .run_query(&self.model, &req, token.as_ref(), Some(resident))
            }
            ConstraintSelection::Only(ids) => {
                // the restriction is its own model with its own
                // constraint numbering; route it through the engine's
                // shared path rather than remap this session's columns
                let restricted = restrict(&self.model, ids)?;
                self.engine
                    .run_query(&restricted, &req, token.as_ref(), None)
            }
        }
    }

    /// Current session counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            deltas_applied: self.deltas_applied,
            journal_len: self.journal.len(),
            analyses: self.analyses,
            memo_candidates: self.memo.len() as u64,
            memo_entries: self.memo.entry_count(),
            slices_evicted: self.slices_evicted,
            results_evicted: self.results_evicted,
            full_invalidations: self.full_invalidations,
        }
    }

    /// Entries currently memoized for constraint column `ix` (eviction
    /// audits; see [`SessionMemo::column_entries`]).
    pub fn memo_column_entries(&self, ix: usize) -> u64 {
        self.memo.column_entries(ix)
    }
}

/// The model restricted to the selected constraints, renumbered in
/// selection-filtered declaration order.
fn restrict(model: &Model, ids: &[ConstraintId]) -> Result<Model, EngineError> {
    let mut keep = vec![false; model.constraints().len()];
    for id in ids {
        // bounds-check via the accessor so unknown ids name themselves
        model.constraint(*id).map_err(EngineError::from)?;
        keep[id.index()] = true;
    }
    let constraints = model
        .constraints()
        .iter()
        .enumerate()
        .filter(|(ix, _)| keep[*ix])
        .map(|(_, c)| c.clone())
        .collect();
    Model::new(model.comm().clone(), constraints).map_err(EngineError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_once;
    use rtcg_core::time::Time;

    /// Chain model: fx(1) → fs(2), one async chain constraint plus one
    /// periodic beat on fs.
    fn chain_model(async_d: Time, per_d: Time) -> Model {
        let mut b = rtcg_core::ModelBuilder::new();
        let x = b.element("fx", 1);
        let s = b.element("fs", 2);
        b.channel(x, s);
        let tg = rtcg_core::TaskGraphBuilder::new()
            .op("x", x)
            .op("s", s)
            .edge("x", "s")
            .build()
            .unwrap();
        b.asynchronous("chain", tg, async_d, async_d);
        let single = rtcg_core::TaskGraphBuilder::new()
            .op("s", s)
            .build()
            .unwrap();
        b.periodic("beat", single, 6, per_d);
        b.build().unwrap()
    }

    fn exact_query() -> Query {
        Query {
            search: SearchConfig {
                max_len: 6,
                node_budget: 500_000,
            },
            ..Query::exact()
        }
    }

    #[test]
    fn deadline_retune_keeps_every_slice() {
        let engine = Engine::new();
        let mut s = engine.open_session(chain_model(7, 5)).unwrap();
        let q = exact_query();
        s.analyze(&q).unwrap();
        let entries = s.stats().memo_entries;
        assert!(entries > 0);
        let out = s
            .apply(&ModelDelta::SetDeadline {
                constraint: ConstraintId::new(0),
                deadline: 6,
            })
            .unwrap();
        assert_eq!(out.slices_evicted, 0);
        assert_eq!(out.slices_kept, entries);
        assert!(!out.full_invalidation);
        // the retuned analysis is memo-served at the leaf level
        let before = engine.stats();
        s.analyze(&q).unwrap();
        let after = engine.stats();
        assert!(
            after.leaf_evals_saved > before.leaf_evals_saved,
            "retune probe should hit the candidate memo"
        );
    }

    #[test]
    fn weight_edit_clears_everything() {
        let engine = Engine::new();
        let mut s = engine.open_session(chain_model(7, 5)).unwrap();
        s.analyze(&exact_query()).unwrap();
        assert!(s.stats().memo_entries > 0);
        let out = s
            .apply(&ModelDelta::SetWcet {
                element: "fx".into(),
                wcet: 2,
            })
            .unwrap();
        assert!(out.full_invalidation);
        assert_eq!(s.stats().memo_entries, 0);
    }

    #[test]
    fn constraint_removal_evicts_only_its_column() {
        let engine = Engine::new();
        let mut s = engine.open_session(chain_model(7, 5)).unwrap();
        s.analyze(&exact_query()).unwrap();
        let col0 = s.memo_column_entries(0);
        let col1 = s.memo_column_entries(1);
        assert!(col0 > 0 && col1 > 0);
        let out = s.apply(&ModelDelta::RemoveConstraint { at: 0 }).unwrap();
        assert_eq!(out.slices_evicted, col0, "only the chain column goes");
        assert_eq!(s.memo_column_entries(0), col1, "beat column shifted down");
    }

    #[test]
    fn session_reports_match_cold_analysis() {
        let engine = Engine::new();
        let mut s = engine.open_session(chain_model(7, 5)).unwrap();
        let q = exact_query();
        let deltas = [
            ModelDelta::SetDeadline {
                constraint: ConstraintId::new(0),
                deadline: 6,
            },
            ModelDelta::SetPeriod {
                constraint: ConstraintId::new(1),
                period: 4,
            },
            ModelDelta::SetWcet {
                element: "fx".into(),
                wcet: 2,
            },
        ];
        for d in &deltas {
            s.apply(d).unwrap();
            let warm = s.analyze(&q).unwrap();
            let req = AnalysisRequest::from_parts(&q, &EngineOptions::default());
            let cold = analyze_once(s.model(), &req).unwrap();
            assert_eq!(warm.verdict.is_feasible(), cold.verdict.is_feasible());
            assert_eq!(
                warm.verdict.schedule().map(|x| x.actions().to_vec()),
                cold.verdict.schedule().map(|x| x.actions().to_vec())
            );
            let (ws, cs) = (warm.search.unwrap(), cold.search.unwrap());
            assert_eq!(ws.nodes_visited, cs.nodes_visited);
            assert_eq!(ws.candidates_checked, cs.candidates_checked);
            assert_eq!(ws.exhausted_bound, cs.exhausted_bound);
        }
    }

    #[test]
    fn undo_restores_content_and_verdicts() {
        let engine = Engine::new();
        let mut s = engine.open_session(chain_model(7, 5)).unwrap();
        let digest0 = s.model().content_digest();
        let baseline = s.analyze(&exact_query()).unwrap();
        s.apply(&ModelDelta::SetDeadline {
            constraint: ConstraintId::new(0),
            deadline: 4,
        })
        .unwrap();
        s.apply(&ModelDelta::AddElement {
            name: "fk".into(),
            wcet: 1,
            pipelinable: true,
        })
        .unwrap();
        assert_eq!(s.journal_len(), 2);
        assert!(s.undo().unwrap().is_some());
        assert!(s.undo().unwrap().is_some());
        assert_eq!(s.journal_len(), 0);
        assert_eq!(s.model().content_digest(), digest0);
        assert!(s.undo().unwrap().is_none());
        let again = s.analyze(&exact_query()).unwrap();
        assert_eq!(
            baseline.verdict.schedule().map(|x| x.actions().to_vec()),
            again.verdict.schedule().map(|x| x.actions().to_vec())
        );
    }

    #[test]
    fn selection_restricts_the_model() {
        let engine = Engine::new();
        let model = chain_model(7, 5);
        let mut s = engine.open_session(model.clone()).unwrap();
        // Only(chain) must report exactly what cold analysis of the
        // hand-restricted model reports
        let only_chain = Query {
            selection: ConstraintSelection::Only(vec![ConstraintId::new(0)]),
            ..exact_query()
        };
        let r = s.analyze(&only_chain).unwrap();
        let restricted =
            Model::new(model.comm().clone(), vec![model.constraints()[0].clone()]).unwrap();
        let req = AnalysisRequest::from_parts(&exact_query(), &EngineOptions::default());
        let cold = analyze_once(&restricted, &req).unwrap();
        assert_eq!(r.verdict.is_feasible(), cold.verdict.is_feasible());
        assert_eq!(
            r.verdict.schedule().map(|x| x.actions().to_vec()),
            cold.verdict.schedule().map(|x| x.actions().to_vec())
        );
        // selecting every constraint is the same question as All
        let both = Query {
            selection: ConstraintSelection::Only(vec![ConstraintId::new(0), ConstraintId::new(1)]),
            ..exact_query()
        };
        let all = s.analyze(&exact_query()).unwrap();
        let sel = s.analyze(&both).unwrap();
        assert_eq!(
            sel.verdict.schedule().map(|x| x.actions().to_vec()),
            all.verdict.schedule().map(|x| x.actions().to_vec())
        );
        // unknown constraint ids error instead of silently analyzing all
        let bogus = Query {
            selection: ConstraintSelection::Only(vec![ConstraintId::new(9)]),
            ..exact_query()
        };
        assert!(matches!(
            s.analyze(&bogus),
            Err(EngineError::Model(
                rtcg_core::ModelError::UnknownConstraint(_)
            ))
        ));
    }

    #[test]
    fn rejected_delta_leaves_session_untouched() {
        let engine = Engine::new();
        let mut s = engine.open_session(chain_model(7, 5)).unwrap();
        let digest = s.model().content_digest();
        let err = s
            .apply(&ModelDelta::RemoveElement { name: "fx".into() })
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Model(rtcg_core::ModelError::DeltaRejected { .. })
        ));
        assert_eq!(s.model().content_digest(), digest);
        assert_eq!(s.journal_len(), 0);
        assert_eq!(s.stats().deltas_applied, 0);
    }

    #[test]
    fn superseded_results_are_evicted_from_shards() {
        let engine = Engine::new();
        let mut s = engine.open_session(chain_model(7, 5)).unwrap();
        let q = exact_query();
        s.analyze(&q).unwrap();
        let occupied: u64 = engine.stats().shards.iter().map(|x| x.occupancy).sum();
        assert_eq!(occupied, 1);
        let out = s
            .apply(&ModelDelta::SetDeadline {
                constraint: ConstraintId::new(0),
                deadline: 6,
            })
            .unwrap();
        assert_eq!(out.results_evicted, 1);
        let stats = engine.stats();
        assert_eq!(stats.shards.iter().map(|x| x.occupancy).sum::<u64>(), 0);
        assert_eq!(stats.shards.iter().map(|x| x.evictions).sum::<u64>(), 1);
    }

    #[test]
    fn open_sessions_gauge_tracks_lifetime() {
        let engine = Engine::new();
        {
            let _a = engine.open_session(chain_model(7, 5)).unwrap();
            let _b = engine.open_session(chain_model(9, 5)).unwrap();
            assert_eq!(engine.open_sessions.load(Ordering::Relaxed), 2);
        }
        assert_eq!(engine.open_sessions.load(Ordering::Relaxed), 0);
    }
}
