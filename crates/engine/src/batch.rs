//! Concurrent batch analysis over one shared engine cache.
//!
//! [`Engine::analyze_batch`] fans a `Vec<(Model, AnalysisRequest)>`
//! across a worker pool. Workers claim requests off an atomic cursor —
//! the same work-claiming idiom as
//! [`rtcg_core::feasibility::parallel`] — and every worker analyzes
//! through the *same* `&Engine`, so the sharded result memo and
//! per-structure candidate memos built by one request serve all the
//! others. That is the point: Mok-style synthesis workloads are many
//! near-identical probes (deadline sweeps, sensitivity searches) whose
//! leaf evaluations overlap massively.
//!
//! Each request can carry a wall-clock **deadline budget**
//! ([`BatchOptions::budget_ms`]): a [`CancelToken`] with that deadline
//! is passed into the exact search, which polls it cooperatively. On
//! expiry the request **degrades** instead of erroring — the partial
//! exact outcome is discarded (and never memoized) and the cheap
//! heuristic pipeline supplies the verdict, with
//! [`BatchResult::degraded`] recording why. Degraded verdicts are
//! heuristic-grade: `Unknown` is possible, and `Feasible` carries a
//! heuristic strategy tag rather than `"exact"`.
//!
//! Undegraded results are bit-identical to sequential
//! [`crate::analyze_once`] calls per request — pinned by the
//! differential proptest in `tests/batch_differential.rs`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rtcg_core::feasibility::CancelToken;
use rtcg_core::model::Model;

use crate::{AnalysisMode, AnalysisReport, AnalysisRequest, Engine, EngineError, Verdict};

/// Unclaimed jobs remaining once `claimed` claims have been taken off
/// the cursor. Pure so the gauge arithmetic is unit-testable: the value
/// depends only on the *shared* claim count, never on which worker
/// computes it (the seed derived it from each worker's own claimed
/// index, so publish races made the gauge regress non-monotonically).
pub(crate) fn queue_depth(total: usize, claimed: usize) -> i64 {
    total.saturating_sub(claimed) as i64
}

/// Knobs of one batch run.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Worker threads claiming requests. Clamped to at least 1 and at
    /// most the number of requests.
    pub threads: usize,
    /// Per-request wall-clock budget in milliseconds. `None` disables
    /// degradation; every request runs to completion.
    pub budget_ms: Option<u64>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: 1,
            budget_ms: None,
        }
    }
}

/// Outcome of one request in a batch.
#[derive(Debug)]
pub struct BatchResult {
    /// The report (or the request's own error — one bad model never
    /// aborts the rest of the batch).
    pub report: Result<AnalysisReport, EngineError>,
    /// `Some(reason)` when the deadline budget expired and the verdict
    /// was substituted by the heuristic fallback.
    pub degraded: Option<String>,
}

impl BatchResult {
    /// True when this request fell back to the heuristic verdict.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

impl Engine {
    /// Analyzes every `(model, request)` pair through this engine's
    /// shared caches, fanning across `opts.threads` workers. Results
    /// come back in input order; cancellation/degradation is per
    /// request (see the module docs).
    pub fn analyze_batch(
        &self,
        jobs: &[(Model, AnalysisRequest)],
        opts: &BatchOptions,
    ) -> Vec<BatchResult> {
        let _span = rtcg_obs::span!("engine.batch", "engine");
        rtcg_obs::counter!("engine.batch.requests", jobs.len() as u64);
        let threads = opts.threads.max(1).min(jobs.len().max(1));
        let cursor = AtomicUsize::new(0);
        let degraded_total = AtomicU64::new(0);
        // One correlation id per batch entry, allocated and announced
        // (flow "produce") on the coordinating thread; the claiming
        // worker adopts the id, which emits the matching flow "consume"
        // and tags every span of that request — so a Chrome trace shows
        // one causal tree per entry with a handoff arrow into the
        // worker's lane. All None (and free) when no recorder is
        // installed.
        let request_ids: Vec<Option<u64>> = jobs
            .iter()
            .map(|_| {
                let id = rtcg_obs::allocate_request_id();
                if let Some(id) = id {
                    rtcg_obs::request_handoff(id);
                }
                id
            })
            .collect();
        // Serializes queue-depth publication: cursor reads taken under
        // this lock are monotone, so the gauge history never regresses.
        // One uncontended lock per claim is noise next to an analysis.
        let depth_lock = Mutex::new(());
        let mut slots: Vec<Option<BatchResult>> = (0..jobs.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                let degraded_total = &degraded_total;
                let request_ids = &request_ids;
                let depth_lock = &depth_lock;
                handles.push(scope.spawn(move || {
                    let mut locals = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::AcqRel);
                        if i >= jobs.len() {
                            return locals;
                        }
                        {
                            let _g = depth_lock.lock();
                            let claimed = cursor.load(Ordering::Acquire).min(jobs.len());
                            rtcg_obs::gauge!(
                                "engine.batch.queue_depth",
                                queue_depth(jobs.len(), claimed)
                            );
                        }
                        let _scope = request_ids[i].map(rtcg_obs::RequestScope::adopt);
                        let (model, req) = &jobs[i];
                        locals.push((i, self.run_one(model, req, opts, degraded_total)));
                    }
                }));
            }
            for h in handles {
                for (i, r) in h.join().expect("batch worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        rtcg_obs::gauge!("engine.batch.queue_depth", 0i64);
        rtcg_obs::counter!(
            "engine.batch.degraded",
            degraded_total.load(Ordering::Relaxed)
        );
        self.publish_shard_metrics();
        slots
            .into_iter()
            .map(|s| s.expect("every claimed job reports"))
            .collect()
    }

    fn run_one(
        &self,
        model: &Model,
        req: &AnalysisRequest,
        opts: &BatchOptions,
        degraded_total: &AtomicU64,
    ) -> BatchResult {
        // per-request searches run single-threaded inside the pool: the
        // pool is the parallelism, and `threads == 1` keeps the
        // candidate memo active (threads is fingerprint-excluded, so
        // this cannot change any report).
        let req = AnalysisRequest { threads: 1, ..*req };
        let token = opts
            .budget_ms
            .map(|ms| CancelToken::with_deadline(Duration::from_millis(ms)));
        match self.analyze_with_cancel(model, &req, token.as_ref()) {
            Ok(report) => {
                // degrade only when the budget actually cut the exact
                // search short: the token fired AND the verdict is the
                // gave-up shape. A search that completed before expiry
                // keeps its authoritative verdict.
                let cut_short = token.as_ref().is_some_and(|t| t.poll())
                    && req.mode == AnalysisMode::Exact
                    && matches!(report.verdict, Verdict::Unknown { .. });
                if !cut_short {
                    return BatchResult {
                        report: Ok(report),
                        degraded: None,
                    };
                }
                degraded_total.fetch_add(1, Ordering::Relaxed);
                let reason = format!(
                    "deadline budget of {} ms exhausted; heuristic verdict substituted",
                    opts.budget_ms.unwrap_or(0)
                );
                let fallback = AnalysisRequest {
                    mode: AnalysisMode::Heuristic,
                    ..req
                };
                BatchResult {
                    report: self.analyze(model, &fallback),
                    degraded: Some(reason),
                }
            }
            Err(e) => BatchResult {
                report: Err(e),
                degraded: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_once;
    use rtcg_core::feasibility::SearchConfig;
    use rtcg_core::{ModelBuilder, TaskGraphBuilder};

    fn spread_model(n: usize, d: u64) -> Model {
        let mut b = ModelBuilder::new();
        for i in 0..n {
            let e = b.element(&format!("e{i}"), 1);
            let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
            b.asynchronous(&format!("c{i}"), tg, d, d);
        }
        b.build().unwrap()
    }

    fn exact_req() -> AnalysisRequest {
        AnalysisRequest {
            search: SearchConfig {
                max_len: 5,
                node_budget: 2_000_000,
            },
            ..AnalysisRequest::exact()
        }
    }

    #[test]
    fn queue_depth_is_claim_count_derived() {
        assert_eq!(queue_depth(5, 0), 5);
        assert_eq!(queue_depth(5, 2), 3);
        assert_eq!(queue_depth(5, 5), 0);
        // workers that raced past the end clamp to empty
        assert_eq!(queue_depth(5, 7), 0);
        assert_eq!(queue_depth(0, 0), 0);
        // the value is a function of the shared claim count alone:
        // claim counts only grow, so later publishes can only shrink it
        let depths: Vec<i64> = (0..=7).map(|c| queue_depth(5, c)).collect();
        assert!(depths.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn batch_matches_sequential_reports() {
        let jobs: Vec<(Model, AnalysisRequest)> =
            (4..8).map(|d| (spread_model(2, d), exact_req())).collect();
        let engine = Engine::new();
        let results = engine.analyze_batch(
            &jobs,
            &BatchOptions {
                threads: 3,
                budget_ms: None,
            },
        );
        assert_eq!(results.len(), jobs.len());
        for (r, (model, req)) in results.iter().zip(&jobs) {
            assert!(!r.is_degraded());
            let got = r.report.as_ref().unwrap();
            let want = analyze_once(model, req).unwrap();
            assert_eq!(
                got.verdict.schedule().map(|s| s.actions().to_vec()),
                want.verdict.schedule().map(|s| s.actions().to_vec())
            );
            assert_eq!(got.verdict.is_feasible(), want.verdict.is_feasible());
            let (gs, ws) = (got.search.unwrap(), want.search.unwrap());
            assert_eq!(gs.nodes_visited, ws.nodes_visited);
            assert_eq!(gs.candidates_checked, ws.candidates_checked);
            assert_eq!(gs.exhausted_bound, ws.exhausted_bound);
        }
        // one analyze per request, all misses on a fresh engine
        let stats = engine.stats();
        assert_eq!(stats.hits + stats.misses, jobs.len() as u64);
    }

    #[test]
    fn repeated_requests_hit_the_shared_memo() {
        let model = spread_model(2, 5);
        let jobs: Vec<(Model, AnalysisRequest)> =
            (0..6).map(|_| (model.clone(), exact_req())).collect();
        let engine = Engine::new();
        let results = engine.analyze_batch(
            &jobs,
            &BatchOptions {
                threads: 2,
                budget_ms: None,
            },
        );
        let cached = results
            .iter()
            .filter(|r| r.report.as_ref().unwrap().cached)
            .count();
        // at least the strictly-later claims hit (identical key); exact
        // count depends on claim interleaving
        assert!(cached >= 1, "identical requests must share the memo");
        let stats = engine.stats();
        assert_eq!(stats.hits + stats.misses, jobs.len() as u64);
        assert!(stats.hits >= 1);
    }

    #[test]
    fn zero_budget_degrades_to_heuristic_instead_of_erroring() {
        // budget 0: the token is already expired when the exact search
        // starts, so every request degrades — deterministically.
        let jobs: Vec<(Model, AnalysisRequest)> =
            (4..7).map(|d| (spread_model(2, d), exact_req())).collect();
        let engine = Engine::new();
        let results = engine.analyze_batch(
            &jobs,
            &BatchOptions {
                threads: 2,
                budget_ms: Some(0),
            },
        );
        for r in &results {
            assert!(r.is_degraded(), "zero budget must degrade");
            let report = r.report.as_ref().expect("degradation is not an error");
            if let Verdict::Feasible { strategy, .. } = &report.verdict {
                assert_ne!(*strategy, "exact", "fallback is heuristic-grade");
            }
            assert!(r.degraded.as_ref().unwrap().contains("budget"));
        }
        // partial (cancelled) exact reports must not have been memoized:
        // a fresh full-budget run still computes the exact verdict
        let full = engine
            .analyze(&jobs[0].0, &jobs[0].1)
            .expect("exact rerun succeeds");
        assert!(
            full.search.is_some() && !full.cached || full.search.is_some(),
            "exact rerun reports search stats"
        );
        assert!(full.verdict.is_feasible());
    }

    #[test]
    fn bad_request_degrades_that_entry_only() {
        // second job's model overflows the memo hyperperiod: its entry
        // errors, the others still complete
        let huge = 1u64 << 33;
        let mut b = ModelBuilder::new();
        let e = b.element("e", 1);
        let t1 = TaskGraphBuilder::new().op("x", e).build().unwrap();
        b.periodic("p1", t1, huge, huge);
        let t2 = TaskGraphBuilder::new().op("y", e).build().unwrap();
        b.periodic("p2", t2, huge + 1, huge + 1);
        let overflow = b.build().unwrap();
        let jobs = vec![
            (spread_model(2, 5), exact_req()),
            (overflow, exact_req()),
            (spread_model(2, 6), exact_req()),
        ];
        let engine = Engine::new();
        let results = engine.analyze_batch(&jobs, &BatchOptions::default());
        assert!(results[0].report.is_ok());
        assert!(results[1].report.is_err());
        assert!(results[2].report.is_ok());
    }
}
