//! # rtcg-engine — incremental analysis across model edits
//!
//! One front door for feasibility analysis and schedule synthesis:
//! callers describe *what* they want with an [`AnalysisRequest`] and the
//! [`Engine`] decides how much of the answer it already knows.
//!
//! Three layers of reuse, coarsest first:
//!
//! 1. **Result memo** — verdicts and schedules keyed by
//!    `(model fingerprint, request fingerprint)`. An identical question
//!    about identical content returns the stored [`AnalysisReport`]
//!    without any analysis.
//! 2. **Session state** — per *structure* fingerprint (content minus
//!    periods and deadlines) the engine keeps a
//!    [`PrunerTemplate`](rtcg_core::feasibility::PrunerTemplate) — the
//!    deadline-independent part of the exact search's prefix bounds —
//!    and re-instantiates it per probe instead of re-deriving downstream
//!    work sums from scratch.
//! 3. **Candidate memo** — per structure, every candidate action string
//!    the exact search ever leaf-evaluated keeps its per-constraint
//!    latencies and periodic window scans ([`memo::SessionMemo`]). A
//!    deadline probe over the same structure re-derives verdicts from
//!    those numbers with integer compares instead of trace expansion.
//!
//! Everything the engine returns is **bit-identical** to the
//! corresponding cold call (`heuristic::synthesize_with`,
//! `latency_synthesize_with`, `find_feasible`/`find_feasible_parallel`):
//! the memoized evaluator reproduces `FeasibilityCache` verdicts
//! exactly, and the search enumeration (including budget accounting) is
//! unchanged. The differential tests pin this.
//!
//! Sensitivity analysis and fault margins are re-exposed as engine
//! methods so their probe loops route through the cache — that is where
//! the leaf-evaluation savings (`engine.leaf_evals_saved`) come from.

#![forbid(unsafe_code)]

pub mod batch;
pub mod fingerprint;
pub mod memo;
pub mod session;
pub mod snapshot;

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Instant;

use rtcg_core::feasibility::{
    find_feasible_lanes, find_feasible_parallel_with_cancel, find_feasible_with_cancel,
    quick_infeasible, synthesize_lanes, used_elements, CancelToken, LaneSchedule, PrunerTemplate,
    SearchConfig,
};
use rtcg_core::heuristic::{synthesize_with, SynthesisConfig};
use rtcg_core::model::{ElementId, Model};
use rtcg_core::sensitivity::{
    deadline_sensitivities_with, max_uniform_tightening_with, min_feasible_deadline_with,
    DeadlineSensitivity,
};
use rtcg_core::{ConstraintId, ModelError, StaticSchedule};
use rtcg_sim::error::SimError;
use rtcg_synth::error::SynthError;
use rtcg_synth::latency::latency_synthesize_with;

use fingerprint::{model_fingerprint, request_fingerprint, structure_fingerprint};
use memo::{MemoEval, SessionMemo};
use session::ResidentMut;

pub use session::{ConstraintSelection, DeltaOutcome, EngineOptions, Query, SessionStats};
pub use snapshot::{LoadStats, SaveStats, SnapshotError, SnapshotTotals};

/// Which analysis pipeline answers the request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AnalysisMode {
    /// Theorem-3 heuristic synthesis (`rtcg_core::heuristic`): fast,
    /// incomplete — failure is *not* an infeasibility proof.
    #[default]
    Heuristic,
    /// Shared-operation merging then heuristic synthesis
    /// (`rtcg_synth::latency`).
    Merged,
    /// Bounded exact search (`rtcg_core::feasibility::exact`): complete
    /// up to `search.max_len`.
    Exact,
}

/// One unified options struct for every analysis entry point. The CLI's
/// `--exact`, `--threads`, `--max-len`, and `--budget` flags map onto
/// these fields directly.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisRequest {
    /// Pipeline selection.
    pub mode: AnalysisMode,
    /// Knobs for the heuristic strategies (used by `Heuristic` and
    /// `Merged`).
    pub synthesis: SynthesisConfig,
    /// Knobs for the exact search (used by `Exact`).
    pub search: SearchConfig,
    /// Worker threads for the exact search. Excluded from the request
    /// fingerprint: the parallel search replays the sequential one bit
    /// for bit. `threads ≤ 1` enables the candidate memo (the parallel
    /// path shards its own evaluators).
    pub threads: usize,
    /// Processor lanes. `1` (the default) is the paper's single-
    /// processor analysis, bit-identical to every pre-lane release.
    /// `> 1` routes the request through the m-lane pipeline: candidates
    /// are lane matrices, verdicts carry [`Verdict::FeasibleLanes`],
    /// and the lane count is part of the request fingerprint.
    pub lanes: usize,
}

impl Default for AnalysisRequest {
    fn default() -> Self {
        AnalysisRequest {
            mode: AnalysisMode::Heuristic,
            synthesis: SynthesisConfig::default(),
            search: SearchConfig::default(),
            threads: 1,
            lanes: 1,
        }
    }
}

impl AnalysisRequest {
    /// Request the bounded exact search with default knobs.
    pub fn exact() -> Self {
        AnalysisRequest {
            mode: AnalysisMode::Exact,
            ..Self::default()
        }
    }
}

/// What the analysis concluded.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// A verified feasible schedule was produced.
    Feasible {
        /// The schedule, over [`AnalysisReport::analysis_model`]'s ids.
        schedule: StaticSchedule,
        /// Which strategy produced it (`"edf-half"`, `"game"`,
        /// `"exact"`, …).
        strategy: &'static str,
    },
    /// A verified feasible multiprocessor lane matrix was produced
    /// (requests with `lanes > 1`).
    FeasibleLanes {
        /// The lane matrix, over [`AnalysisReport::analysis_model`]'s
        /// ids.
        schedule: LaneSchedule,
        /// Which strategy produced it (`"lane-list"` or `"lane-exact"`).
        strategy: &'static str,
    },
    /// Proven infeasible: a necessary condition fails, or (`Exact`) the
    /// complete search exhausted every schedule within the length bound.
    Infeasible {
        /// Human-readable proof sketch.
        reason: String,
    },
    /// Analysis gave up without a proof either way (heuristic strategy
    /// exhaustion, search budget abort).
    Unknown {
        /// What ran out.
        reason: String,
    },
}

impl Verdict {
    /// True iff a feasible schedule was found.
    pub fn is_feasible(&self) -> bool {
        matches!(
            self,
            Verdict::Feasible { .. } | Verdict::FeasibleLanes { .. }
        )
    }

    /// The uniprocessor schedule, when feasible with `lanes == 1`.
    pub fn schedule(&self) -> Option<&StaticSchedule> {
        match self {
            Verdict::Feasible { schedule, .. } => Some(schedule),
            _ => None,
        }
    }

    /// The lane matrix, when feasible with `lanes > 1`.
    pub fn lane_schedule(&self) -> Option<&LaneSchedule> {
        match self {
            Verdict::FeasibleLanes { schedule, .. } => Some(schedule),
            _ => None,
        }
    }
}

/// Counters of one exact search run (absent for heuristic modes).
#[derive(Debug, Clone, Copy)]
pub struct SearchStats {
    /// Enumeration nodes visited.
    pub nodes_visited: u64,
    /// Candidate strings leaf-evaluated.
    pub candidates_checked: u64,
    /// True iff the search ran to completion of the length bound.
    pub exhausted_bound: bool,
}

/// The engine's answer to an [`AnalysisRequest`].
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The conclusion.
    pub verdict: Verdict,
    /// The model the verdict's schedule refers to: the pipelined
    /// transform for heuristic modes (new element ids!), the input
    /// model for `Exact`.
    pub analysis_model: Model,
    /// Exact-search counters, when `mode == Exact`.
    pub search: Option<SearchStats>,
    /// Same-period constraint groups fused by `Merged` mode (0 in the
    /// other modes).
    pub groups_merged: usize,
    /// True when this report was served from the result memo.
    pub cached: bool,
}

/// Errors surfaced by the engine: any layer's error, plus a demand for
/// feasibility ([`Engine::fault_margin`]) that the model cannot meet.
#[derive(Debug)]
pub enum EngineError {
    /// Core model/analysis error.
    Model(ModelError),
    /// Synthesis-layer error.
    Synth(SynthError),
    /// Simulation-layer error.
    Sim(SimError),
    /// The request needs a feasible schedule and analysis did not
    /// produce one.
    Infeasible(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Model(e) => write!(f, "{e}"),
            EngineError::Synth(e) => write!(f, "{e}"),
            EngineError::Sim(e) => write!(f, "{e}"),
            EngineError::Infeasible(reason) => write!(f, "no feasible schedule: {reason}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ModelError> for EngineError {
    fn from(e: ModelError) -> Self {
        EngineError::Model(e)
    }
}

impl From<SynthError> for EngineError {
    fn from(e: SynthError) -> Self {
        EngineError::Synth(e)
    }
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

/// Cache effectiveness counters, cumulative over the engine's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Result-memo hits (whole reports served without analysis).
    pub hits: u64,
    /// Result-memo misses (analysis actually ran).
    pub misses: u64,
    /// Leaf evaluations served entirely from candidate memos.
    pub leaf_evals_saved: u64,
    /// Leaf evaluations that needed fresh latency/window computation.
    pub leaf_evals_computed: u64,
    /// Distinct model structures with live session state.
    pub sessions: u64,
    /// Candidate strings memoized across all sessions.
    pub memo_candidates: u64,
    /// Snapshot persistence counters (see [`snapshot`]).
    pub snapshot: SnapshotTotals,
    /// Per-shard result-memo counters, indexed by shard. Uneven
    /// hit/occupancy distributions here mean fingerprint skew — worth
    /// knowing before the serve daemon multiplies the key population.
    pub shards: [ShardStats; SHARDS],
}

/// Counters of one result-memo shard; see [`EngineStats::shards`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Reports served from this shard.
    pub hits: u64,
    /// Lookups that missed this shard.
    pub misses: u64,
    /// Reports inserted into this shard.
    pub inserts: u64,
    /// Times a poisoned shard lock was recovered (a batch worker
    /// panicked while holding it).
    pub poison_recoveries: u64,
    /// Reports evicted from this shard by session deltas (a superseded
    /// model fingerprint's slice; see [`session::Session::apply`]).
    pub evictions: u64,
    /// Entries currently resident in this shard.
    pub occupancy: u64,
}

/// Live per-shard counters; the atomic backing of [`ShardStats`].
#[derive(Debug, Default)]
struct ShardCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    poison_recoveries: AtomicU64,
    evictions: AtomicU64,
}

/// `engine.shard.NN.<suffix>` metric-name tables. The names must be
/// `&'static str` (the obs contract), so they are spelled out per shard
/// by the macro below; the Prometheus exporter folds the family back
/// into one metric with a `shard` label.
macro_rules! shard_names {
    ($suffix:literal) => {
        [
            concat!("engine.shard.00.", $suffix),
            concat!("engine.shard.01.", $suffix),
            concat!("engine.shard.02.", $suffix),
            concat!("engine.shard.03.", $suffix),
            concat!("engine.shard.04.", $suffix),
            concat!("engine.shard.05.", $suffix),
            concat!("engine.shard.06.", $suffix),
            concat!("engine.shard.07.", $suffix),
            concat!("engine.shard.08.", $suffix),
            concat!("engine.shard.09.", $suffix),
            concat!("engine.shard.10.", $suffix),
            concat!("engine.shard.11.", $suffix),
            concat!("engine.shard.12.", $suffix),
            concat!("engine.shard.13.", $suffix),
            concat!("engine.shard.14.", $suffix),
            concat!("engine.shard.15.", $suffix),
        ]
    };
}

const SHARD_HITS: [&str; SHARDS] = shard_names!("hits");
const SHARD_MISSES: [&str; SHARDS] = shard_names!("misses");
const SHARD_INSERTS: [&str; SHARDS] = shard_names!("inserts");
const SHARD_POISON: [&str; SHARDS] = shard_names!("poison_recoveries");
const SHARD_EVICTIONS: [&str; SHARDS] = shard_names!("evictions");
const SHARD_OCCUPANCY: [&str; SHARDS] = shard_names!("occupancy");

/// Per-structure incremental state: the deadline-independent pruner
/// template plus every candidate the search has ever leaf-evaluated.
struct Session {
    memo: SessionMemo,
    template: PrunerTemplate,
    used: Vec<ElementId>,
    /// A representative model of this structure (the first one seen).
    /// The memo's keys carry no model, so snapshot save re-derives the
    /// structure's content from this instance.
    model: Model,
}

/// Shard count for the result memo and session maps. A power of two so
/// shard selection is a mask of the fingerprint's low bits; 16 shards
/// keep contention negligible at any realistic worker count without
/// noticeable memory overhead.
pub const SHARDS: usize = 16;

fn shard_of(fp: u64) -> usize {
    (fp as usize) % SHARDS
}

/// Mutex/RwLock poisoning only happens if a panicking thread held the
/// lock; the protected maps are append-only memos that are never left
/// half-edited, so recovering the guard is safe and keeps one panicked
/// batch worker from cascading into every later request.
fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// The cached incremental analysis engine. See the module docs for the
/// three reuse layers; construction is free, all caching is lazy.
///
/// All methods take `&self`: internal state is sharded and lock-striped
/// (fingerprint-selected shards, one `RwLock`/`Mutex` per shard, atomic
/// counters), so one engine can serve concurrent callers — the
/// [`batch`] worker pool fans requests across threads against a shared
/// `&Engine` and every thread reads and extends the same caches.
pub struct Engine {
    /// Result memo: `(model fp, request fp)` → report, lock-striped.
    results: Vec<RwLock<HashMap<(u64, u64), AnalysisReport>>>,
    /// Session map: structure fp → shared session. The outer mutex only
    /// guards the map; each session has its own lock, held for the
    /// duration of one exact search so same-structure probes serialize
    /// on *their* session while other structures proceed in parallel.
    sessions: Vec<Mutex<HashMap<u64, Arc<Mutex<Session>>>>>,
    /// Subject-model registry for snapshot save: model fp → model,
    /// sharded like `results` (a fingerprint is one-way, so the memo's
    /// keys alone cannot be re-derived into content-addressed sections).
    models: Vec<Mutex<HashMap<u64, Model>>>,
    /// Request-shape registry for snapshot save: request fp → the
    /// fingerprinted fields ([`AnalysisRequest`] is `Copy` and tiny).
    requests: Mutex<HashMap<u64, AnalysisRequest>>,
    /// Snapshot save/load counters (see [`snapshot`]).
    pub(crate) snap: snapshot::SnapCounters,
    hits: AtomicU64,
    misses: AtomicU64,
    leaf_evals_saved: AtomicU64,
    leaf_evals_computed: AtomicU64,
    shard_counters: [ShardCounters; SHARDS],
    /// Sessions currently open against this engine (see
    /// [`Engine::open_session`]); feeds the
    /// `engine.session.resident_models` gauge.
    pub(crate) open_sessions: AtomicU64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            results: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            sessions: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            models: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            requests: Mutex::new(HashMap::new()),
            snap: snapshot::SnapCounters::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            leaf_evals_saved: AtomicU64::new(0),
            leaf_evals_computed: AtomicU64::new(0),
            shard_counters: std::array::from_fn(|_| ShardCounters::default()),
            open_sessions: AtomicU64::new(0),
        }
    }
}

impl Engine {
    /// An engine with empty caches.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Current cache counters. Counter reads are relaxed snapshots; the
    /// structural counts briefly lock each shard, so calling this while
    /// a batch is in flight waits for in-progress searches.
    pub fn stats(&self) -> EngineStats {
        let mut sessions = 0u64;
        let mut memo_candidates = 0u64;
        for shard in &self.sessions {
            let map = unpoison(shard.lock());
            sessions += map.len() as u64;
            for s in map.values() {
                memo_candidates += unpoison(s.lock()).memo.len() as u64;
            }
        }
        let shards = std::array::from_fn(|ix| ShardStats {
            hits: self.shard_counters[ix].hits.load(Ordering::Relaxed),
            misses: self.shard_counters[ix].misses.load(Ordering::Relaxed),
            inserts: self.shard_counters[ix].inserts.load(Ordering::Relaxed),
            poison_recoveries: self.shard_counters[ix]
                .poison_recoveries
                .load(Ordering::Relaxed),
            evictions: self.shard_counters[ix].evictions.load(Ordering::Relaxed),
            occupancy: self.recover_shard(ix, self.results[ix].read()).len() as u64,
        });
        EngineStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            leaf_evals_saved: self.leaf_evals_saved.load(Ordering::Relaxed),
            leaf_evals_computed: self.leaf_evals_computed.load(Ordering::Relaxed),
            sessions,
            memo_candidates,
            snapshot: self.snap.totals(),
            shards,
        }
    }

    /// Publishes the `engine.shard.*` gauge family from the current
    /// shard counters. Call at report time (batch end, profile dump) —
    /// not per request — since it walks all 16 shards. No-op without an
    /// installed recorder.
    pub fn publish_shard_metrics(&self) {
        if rtcg_obs::recorder().is_none() {
            return;
        }
        let stats = self.stats();
        for (ix, s) in stats.shards.iter().enumerate() {
            rtcg_obs::gauge!(SHARD_HITS[ix], s.hits);
            rtcg_obs::gauge!(SHARD_MISSES[ix], s.misses);
            rtcg_obs::gauge!(SHARD_INSERTS[ix], s.inserts);
            rtcg_obs::gauge!(SHARD_POISON[ix], s.poison_recoveries);
            rtcg_obs::gauge!(SHARD_EVICTIONS[ix], s.evictions);
            rtcg_obs::gauge!(SHARD_OCCUPANCY[ix], s.occupancy);
        }
    }

    /// [`unpoison`] for result-memo shard locks, counting recoveries
    /// against the shard so poison events are attributable.
    fn recover_shard<G>(&self, ix: usize, r: Result<G, PoisonError<G>>) -> G {
        r.unwrap_or_else(|e| {
            self.shard_counters[ix]
                .poison_recoveries
                .fetch_add(1, Ordering::Relaxed);
            rtcg_obs::counter!("engine.poison_recovered");
            e.into_inner()
        })
    }

    /// Analyzes the model per the request. Reports are bit-identical to
    /// the corresponding cold call; `cached` distinguishes a memo hit.
    pub fn analyze(
        &self,
        model: &Model,
        req: &AnalysisRequest,
    ) -> Result<AnalysisReport, EngineError> {
        self.analyze_with_cancel(model, req, None)
    }

    /// [`Engine::analyze`] plus a cooperative [`CancelToken`] polled by
    /// the exact search. A run whose token fired returns its partial
    /// outcome (`Unknown` verdict unless the search finished first) and
    /// is **not** memoized — a later uncancelled call recomputes and
    /// caches the authoritative report.
    pub fn analyze_with_cancel(
        &self,
        model: &Model,
        req: &AnalysisRequest,
        cancel: Option<&CancelToken>,
    ) -> Result<AnalysisReport, EngineError> {
        let _span = rtcg_obs::span!("engine.analyze", "engine");
        let t0 = if rtcg_obs::recorder().is_some() {
            Some(Instant::now())
        } else {
            None
        };
        let result = self.run_query(model, req, cancel, None);
        if let Some(t0) = t0 {
            rtcg_obs::histogram!("engine.request_us", t0.elapsed().as_micros() as u64);
            // cancel-to-stop: how long after the token fired this
            // request actually returned (poll-stride detection latency
            // plus unwind cost)
            if let Some(fired) = cancel.and_then(CancelToken::fired_at) {
                let now = Instant::now().saturating_duration_since(rtcg_obs::epoch());
                rtcg_obs::histogram!(
                    "engine.cancel_to_stop_us",
                    now.saturating_sub(fired).as_micros() as u64
                );
            }
        }
        result
    }

    /// The one canonical query path every public entry point funnels
    /// into: result-memo lookup, mode dispatch, insert-unless-cancelled.
    /// `resident` is a session's lent state — when present, the exact
    /// search uses it instead of the engine's shared per-structure map,
    /// so the session's memo columns stay aligned with its own
    /// constraint numbering across deltas.
    pub(crate) fn run_query(
        &self,
        model: &Model,
        req: &AnalysisRequest,
        cancel: Option<&CancelToken>,
        resident: Option<ResidentMut<'_>>,
    ) -> Result<AnalysisReport, EngineError> {
        model.validate().map_err(EngineError::from)?;
        if req.lanes == 0 {
            return Err(EngineError::Model(ModelError::ZeroLanes));
        }
        let key = (model_fingerprint(model), request_fingerprint(req));
        let ix = shard_of(key.0);
        let shard = &self.results[ix];
        if let Some(report) = self.recover_shard(ix, shard.read()).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.shard_counters[ix].hits.fetch_add(1, Ordering::Relaxed);
            rtcg_obs::counter!("engine.cache.hit");
            let mut report = report.clone();
            report.cached = true;
            return Ok(report);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.shard_counters[ix]
            .misses
            .fetch_add(1, Ordering::Relaxed);
        rtcg_obs::counter!("engine.cache.miss");

        let report = if req.lanes > 1 {
            // the m-lane pipeline replaces mode dispatch: candidates
            // are lane matrices, not strings, so none of the scalar
            // strategies or memo layers apply
            self.run_lanes(model, req)?
        } else {
            match req.mode {
                AnalysisMode::Heuristic => self.run_heuristic(model, req)?,
                AnalysisMode::Merged => self.run_merged(model, req)?,
                AnalysisMode::Exact => self.run_exact(model, req, cancel, resident)?,
            }
        };
        // a cancelled run's report is partial — never cache it (poll
        // latches a passed deadline so is_set observes it)
        if cancel.is_none_or(|t| !t.poll()) {
            self.recover_shard(ix, shard.write())
                .insert(key, report.clone());
            self.shard_counters[ix]
                .inserts
                .fetch_add(1, Ordering::Relaxed);
            // keep the fingerprints invertible for snapshot save
            unpoison(self.models[ix].lock())
                .entry(key.0)
                .or_insert_with(|| model.clone());
            unpoison(self.requests.lock()).entry(key.1).or_insert(*req);
        }
        Ok(report)
    }

    /// True iff the request concludes feasible — the oracle shape the
    /// sensitivity binary searches consume.
    pub fn feasible(&self, model: &Model, req: &AnalysisRequest) -> Result<bool, EngineError> {
        Ok(self.analyze(model, req)?.verdict.is_feasible())
    }

    fn run_heuristic(
        &self,
        model: &Model,
        req: &AnalysisRequest,
    ) -> Result<AnalysisReport, EngineError> {
        if let Some(proof) = quick_infeasible(model).map_err(EngineError::from)? {
            return Ok(AnalysisReport {
                verdict: Verdict::Infeasible {
                    reason: proof.to_string(),
                },
                analysis_model: model.clone(),
                search: None,
                groups_merged: 0,
                cached: false,
            });
        }
        match synthesize_with(model, req.synthesis) {
            Ok(out) => Ok(AnalysisReport {
                verdict: Verdict::Feasible {
                    schedule: out.schedule,
                    strategy: out.strategy,
                },
                analysis_model: out.pipelined.model,
                search: None,
                groups_merged: 0,
                cached: false,
            }),
            // heuristic exhaustion is not a proof of infeasibility
            Err(ModelError::Infeasible { reason }) => Ok(AnalysisReport {
                verdict: Verdict::Unknown { reason },
                analysis_model: model.clone(),
                search: None,
                groups_merged: 0,
                cached: false,
            }),
            Err(e) => Err(e.into()),
        }
    }

    fn run_merged(
        &self,
        model: &Model,
        req: &AnalysisRequest,
    ) -> Result<AnalysisReport, EngineError> {
        if let Some(proof) = quick_infeasible(model).map_err(EngineError::from)? {
            return Ok(AnalysisReport {
                verdict: Verdict::Infeasible {
                    reason: proof.to_string(),
                },
                analysis_model: model.clone(),
                search: None,
                groups_merged: 0,
                cached: false,
            });
        }
        match latency_synthesize_with(model, req.synthesis) {
            Ok(out) => Ok(AnalysisReport {
                verdict: Verdict::Feasible {
                    schedule: out.schedule,
                    strategy: out.strategy,
                },
                analysis_model: out.analysis_model,
                search: None,
                groups_merged: out.groups_merged,
                cached: false,
            }),
            Err(SynthError::Model(ModelError::Infeasible { reason })) => Ok(AnalysisReport {
                verdict: Verdict::Unknown { reason },
                analysis_model: model.clone(),
                search: None,
                groups_merged: 0,
                cached: false,
            }),
            Err(e) => Err(e.into()),
        }
    }

    /// Evicts every result-memo report keyed by `model_fp` (any request
    /// fingerprint), returning the count. Called by
    /// [`session::Session::apply`] when a delta supersedes a model:
    /// only that fingerprint's slice of one shard is touched, which the
    /// per-shard [`ShardStats::evictions`] counter makes auditable.
    pub(crate) fn evict_results(&self, model_fp: u64) -> u64 {
        let ix = shard_of(model_fp);
        let mut shard = self.recover_shard(ix, self.results[ix].write());
        let before = shard.len();
        shard.retain(|k, _| k.0 != model_fp);
        unpoison(self.models[ix].lock()).remove(&model_fp);
        let evicted = (before - shard.len()) as u64;
        if evicted > 0 {
            self.shard_counters[ix]
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
            rtcg_obs::counter!("engine.results_evicted", evicted);
        }
        evicted
    }

    /// Finds or creates the shared session for `model`'s structure. The
    /// returned `Arc` is cloned out of the shard map, so the map lock is
    /// held only for the lookup, not for the search.
    fn session_for(&self, model: &Model, sf: u64) -> Result<Arc<Mutex<Session>>, EngineError> {
        let mut map = unpoison(self.sessions[shard_of(sf)].lock());
        if let Some(s) = map.get(&sf) {
            return Ok(Arc::clone(s));
        }
        let used = used_elements(model);
        let template = PrunerTemplate::new(model, &used).map_err(EngineError::from)?;
        let session = Arc::new(Mutex::new(Session {
            memo: SessionMemo::default(),
            template,
            used,
            model: model.clone(),
        }));
        map.insert(sf, Arc::clone(&session));
        Ok(session)
    }

    /// The m-lane pipeline (`req.lanes > 1`). `Heuristic` runs the
    /// list-scheduling synthesis only; `Exact` runs the canonical
    /// branch-and-bound only; `Merged` tries the cheap synthesis first
    /// and falls back to the exact search. The scalar candidate memo
    /// and session state do not apply — lane candidates are matrices —
    /// but the result memo in [`Engine::run_query`] covers lane reports
    /// (the lane count is part of the request fingerprint).
    fn run_lanes(
        &self,
        model: &Model,
        req: &AnalysisRequest,
    ) -> Result<AnalysisReport, EngineError> {
        let report = |verdict, search| AnalysisReport {
            verdict,
            analysis_model: model.clone(),
            search,
            groups_merged: 0,
            cached: false,
        };

        if matches!(req.mode, AnalysisMode::Heuristic | AnalysisMode::Merged) {
            if let Some(schedule) = synthesize_lanes(model, req.lanes).map_err(EngineError::from)? {
                return Ok(report(
                    Verdict::FeasibleLanes {
                        schedule,
                        strategy: "lane-list",
                    },
                    None,
                ));
            }
            if matches!(req.mode, AnalysisMode::Heuristic) {
                return Ok(report(
                    Verdict::Unknown {
                        reason: format!(
                            "lane list scheduling produced no verified {}-lane schedule; \
                             rerun with --exact",
                            req.lanes
                        ),
                    },
                    None,
                ));
            }
        }

        let outcome =
            find_feasible_lanes(model, req.lanes, req.search).map_err(EngineError::from)?;
        let stats = SearchStats {
            nodes_visited: outcome.nodes_visited,
            candidates_checked: outcome.candidates_checked,
            exhausted_bound: outcome.exhausted_bound,
        };
        let verdict = match outcome.schedule {
            Some(schedule) => Verdict::FeasibleLanes {
                schedule,
                strategy: "lane-exact",
            },
            None if outcome.exhausted_bound => Verdict::Infeasible {
                reason: format!(
                    "complete search: no feasible {}-lane matrix with rows of ≤ {} actions",
                    req.lanes, req.search.max_len
                ),
            },
            None => Verdict::Unknown {
                reason: format!(
                    "search budget of {} units exhausted",
                    req.search.node_budget
                ),
            },
        };
        Ok(report(verdict, Some(stats)))
    }

    /// Runs one exact search over the given memo + template, recording
    /// leaf-eval savings. Shared by the engine's per-structure sessions
    /// and the lent state of long-lived [`session::Session`]s.
    fn search_with_memo(
        &self,
        model: &Model,
        req: &AnalysisRequest,
        cancel: Option<&CancelToken>,
        template: &PrunerTemplate,
        memo: &mut SessionMemo,
    ) -> Result<rtcg_core::feasibility::SearchOutcome, EngineError> {
        let pruner = template.instantiate(model);
        let mut eval = MemoEval::new(model, memo).map_err(EngineError::from)?;
        let outcome = find_feasible_with_cancel(model, req.search, Some(pruner), &mut eval, cancel)
            .map_err(EngineError::from)?;
        self.leaf_evals_saved
            .fetch_add(eval.evals_saved, Ordering::Relaxed);
        self.leaf_evals_computed
            .fetch_add(eval.evals_computed, Ordering::Relaxed);
        rtcg_obs::counter!("engine.leaf_evals_saved", eval.evals_saved);
        rtcg_obs::counter!("engine.leaf_evals_computed", eval.evals_computed);
        Ok(outcome)
    }

    fn run_exact(
        &self,
        model: &Model,
        req: &AnalysisRequest,
        cancel: Option<&CancelToken>,
        resident: Option<ResidentMut<'_>>,
    ) -> Result<AnalysisReport, EngineError> {
        let outcome = if req.threads > 1 {
            // the parallel search shards per-worker FeasibilityCaches;
            // results are replay-identical to the sequential path, so
            // the result memo still applies — only the candidate memo
            // does not.
            find_feasible_parallel_with_cancel(model, req.search, req.threads, cancel)
                .map_err(EngineError::from)?
        } else if let Some(resident) = resident {
            // a session lent its state: build its template lazily, keep
            // its memo (delta invalidation already pruned stale slices)
            if resident.exact.is_none() {
                let used = used_elements(model);
                let template = PrunerTemplate::new(model, &used).map_err(EngineError::from)?;
                *resident.exact = Some((template, used));
            }
            let (template, used) = resident.exact.as_ref().expect("just built");
            debug_assert_eq!(
                *used,
                used_elements(model),
                "session exact state out of sync with its model"
            );
            self.search_with_memo(model, req, cancel, template, resident.memo)?
        } else {
            let sf = structure_fingerprint(model);
            let session = self.session_for(model, sf)?;
            let mut session: MutexGuard<'_, Session> = unpoison(session.lock());
            debug_assert_eq!(
                session.used,
                used_elements(model),
                "structure fingerprint collision: alphabets differ"
            );
            let Session {
                ref mut memo,
                ref template,
                ..
            } = *session;
            self.search_with_memo(model, req, cancel, template, memo)?
        };

        let stats = SearchStats {
            nodes_visited: outcome.nodes_visited,
            candidates_checked: outcome.candidates_checked,
            exhausted_bound: outcome.exhausted_bound,
        };
        let verdict = match outcome.schedule {
            Some(schedule) => Verdict::Feasible {
                schedule,
                strategy: "exact",
            },
            None if outcome.exhausted_bound => Verdict::Infeasible {
                reason: format!(
                    "complete search: no feasible schedule of ≤ {} actions",
                    req.search.max_len
                ),
            },
            None => Verdict::Unknown {
                reason: format!(
                    "search budget of {} units exhausted",
                    req.search.node_budget
                ),
            },
        };
        Ok(AnalysisReport {
            verdict,
            analysis_model: model.clone(),
            search: Some(stats),
            groups_merged: 0,
            cached: false,
        })
    }

    /// Minimum feasible deadline of one constraint, binary-searched with
    /// every probe routed through the cache. Probes share this engine's
    /// session for the model's structure, so repeated candidate
    /// evaluations are memo-served.
    pub fn min_feasible_deadline(
        &self,
        model: &Model,
        id: ConstraintId,
        req: &AnalysisRequest,
    ) -> Result<DeadlineSensitivity, EngineError> {
        min_feasible_deadline_with(model, id, &mut |m: &Model| self.feasible(m, req))
    }

    /// Deadline sensitivity of every constraint, cache-routed.
    pub fn deadline_sensitivities(
        &self,
        model: &Model,
        req: &AnalysisRequest,
    ) -> Result<Vec<DeadlineSensitivity>, EngineError> {
        deadline_sensitivities_with(model, &mut |m: &Model| self.feasible(m, req))
    }

    /// Largest uniform deadline-tightening percentage that stays
    /// feasible, cache-routed.
    pub fn max_uniform_tightening(
        &self,
        model: &Model,
        req: &AnalysisRequest,
    ) -> Result<u32, EngineError> {
        max_uniform_tightening_with(model, &mut |m: &Model| self.feasible(m, req))
    }

    /// Fault margin of `element` (by name, resolved against the analysis
    /// model) under the schedule the request produces: how many
    /// consecutive lost executions the schedule absorbs. `reps` controls
    /// how far the schedule is expanded for the erasure experiment.
    pub fn fault_margin(
        &self,
        model: &Model,
        element: &str,
        cap: usize,
        reps: usize,
        req: &AnalysisRequest,
    ) -> Result<usize, EngineError> {
        let report = self.analyze(model, req)?;
        let Verdict::Feasible { schedule, .. } = &report.verdict else {
            return Err(EngineError::Infeasible(format!(
                "fault margin needs a schedule; analysis of `{element}`'s model concluded {:?}",
                match &report.verdict {
                    Verdict::Infeasible { reason } | Verdict::Unknown { reason } => reason.clone(),
                    Verdict::FeasibleLanes { strategy, .. } =>
                        format!("a multi-lane schedule ({strategy}); fault margins are single-lane"),
                    Verdict::Feasible { .. } => unreachable!(),
                }
            )));
        };
        let analysis_model = &report.analysis_model;
        let id = analysis_model
            .comm()
            .lookup(element)
            .map_err(EngineError::from)?;
        let trace = schedule
            .expand(analysis_model.comm(), reps)
            .map_err(EngineError::from)?;
        rtcg_sim::faults::fault_margin(analysis_model, &trace, id, cap).map_err(EngineError::from)
    }
}

/// Convenience one-shot: analyze without keeping an engine around — a
/// thin wrapper over a throwaway session (no reuse, but the same
/// unified request/report surface and the same canonical query path).
pub fn analyze_once(model: &Model, req: &AnalysisRequest) -> Result<AnalysisReport, EngineError> {
    let engine = Engine::new();
    let (query, options) = req.split();
    let mut session = engine.open_session_with(model.clone(), options)?;
    session.analyze(&query)
}

/// Everything a caller of the unified API needs.
pub mod prelude {
    pub use crate::batch::{BatchOptions, BatchResult};
    pub use crate::session::Session;
    pub use crate::{
        analyze_once, AnalysisMode, AnalysisReport, AnalysisRequest, ConstraintSelection,
        DeltaOutcome, Engine, EngineError, EngineOptions, EngineStats, LoadStats, Query, SaveStats,
        SearchStats, SessionStats, ShardStats, SnapshotError, SnapshotTotals, Verdict, SHARDS,
    };
    pub use rtcg_core::prelude::*;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_memo_round_trip() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let req = AnalysisRequest::default();
        let engine = Engine::new();
        let first = engine.analyze(&m, &req).unwrap();
        assert!(!first.cached);
        let second = engine.analyze(&m, &req).unwrap();
        assert!(second.cached);
        assert_eq!(
            first.verdict.schedule().map(|s| s.actions().to_vec()),
            second.verdict.schedule().map(|s| s.actions().to_vec())
        );
        let stats = engine.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn heuristic_matches_cold_synthesize() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let cold = rtcg_core::heuristic::synthesize(&m).unwrap();
        let report = analyze_once(&m, &AnalysisRequest::default()).unwrap();
        let Verdict::Feasible { schedule, strategy } = &report.verdict else {
            panic!("mok example synthesizes");
        };
        assert_eq!(schedule.actions(), cold.schedule.actions());
        assert_eq!(*strategy, cold.strategy);
    }

    #[test]
    fn unknown_for_heuristic_exhaustion_not_infeasible() {
        // a model quick bounds accept but the heuristic cannot schedule:
        // disable every strategy via a zero budget and a tiny hyperperiod
        let (m, _) = rtcg_core::mok_example::default_model();
        let req = AnalysisRequest {
            synthesis: SynthesisConfig {
                max_hyperperiod: 1,
                game_state_budget: 0,
            },
            ..AnalysisRequest::default()
        };
        let report = analyze_once(&m, &req).unwrap();
        assert!(matches!(report.verdict, Verdict::Unknown { .. }));
    }

    #[test]
    fn exact_matches_cold_search() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let req = AnalysisRequest {
            search: SearchConfig {
                max_len: 6,
                node_budget: 2_000_000,
            },
            ..AnalysisRequest::exact()
        };
        let cold = rtcg_core::feasibility::find_feasible(&m, req.search).unwrap();
        let report = analyze_once(&m, &req).unwrap();
        let stats = report.search.expect("exact mode reports stats");
        assert_eq!(stats.candidates_checked, cold.candidates_checked);
        assert_eq!(stats.nodes_visited, cold.nodes_visited);
        assert_eq!(stats.exhausted_bound, cold.exhausted_bound);
        assert_eq!(
            report.verdict.schedule().map(|s| s.actions().to_vec()),
            cold.schedule.map(|s| s.actions().to_vec())
        );
    }

    #[test]
    fn fault_margin_routes_through_analysis() {
        // one unit element with generous slack: the synthesized schedule
        // must absorb at least one lost execution
        let mut b = rtcg_core::ModelBuilder::new();
        let e = b.element("e", 1);
        let tg = rtcg_core::TaskGraphBuilder::new()
            .op("o", e)
            .build()
            .unwrap();
        b.asynchronous("c", tg, 9, 9);
        let m = b.build().unwrap();
        // exact mode finds the densest schedule [e], which has slack to
        // spare (the heuristic's half-split schedule deliberately
        // doesn't)
        let req = AnalysisRequest {
            search: SearchConfig {
                max_len: 3,
                node_budget: 100_000,
            },
            ..AnalysisRequest::exact()
        };
        let engine = Engine::new();
        let margin = engine.fault_margin(&m, "e", 12, 40, &req).unwrap();
        assert!(margin >= 1, "slack 9 absorbs a loss, got {margin}");
        // unknown element name surfaces a model error
        assert!(matches!(
            engine.fault_margin(&m, "nope", 12, 40, &req),
            Err(EngineError::Model(_))
        ));
    }
}
