//! Content fingerprinting of models and analysis requests.
//!
//! The engine memoizes on two 64-bit FNV-1a fingerprints:
//!
//! * [`model_fingerprint`] covers *everything* analysis can observe —
//!   elements (name, weight, pipelinability), channels, and constraints
//!   including their periods and deadlines. Two models with equal
//!   fingerprints get the same verdict, so it keys the result memo.
//! * [`structure_fingerprint`] covers the same content *minus* periods
//!   and deadlines. Deadline/period edits — the probes sensitivity
//!   analysis generates — preserve it, so it keys the per-structure
//!   session state (candidate latency memos, pruner templates) that
//!   stays valid across such edits.
//!
//! Iteration orders are the model's own arena orders, which are
//! deterministic and shared by equal-content models built the same way.

use rtcg_core::constraint::ConstraintKind;
use rtcg_core::model::Model;

use crate::{AnalysisMode, AnalysisRequest};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Minimal FNV-1a accumulator; enough structure hashing for memo keys,
/// no dependency on `std::hash` trait plumbing.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Length-prefixed so `("ab","c")` and `("a","bc")` differ.
    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_model(h: &mut Fnv, model: &Model, with_timing: bool) {
    let comm = model.comm();
    h.u64(comm.element_count() as u64);
    for (id, e) in comm.elements() {
        h.u64(id.index() as u64);
        h.str(&e.name);
        h.u64(e.wcet);
        h.u64(e.pipelinable as u64);
    }
    for edge in comm.graph().edges() {
        h.u64(edge.from.index() as u64);
        h.u64(edge.to.index() as u64);
        match &edge.weight.label {
            Some(label) => {
                h.u64(1);
                h.str(label);
            }
            None => h.u64(0),
        }
    }
    h.u64(model.constraints().len() as u64);
    for c in model.constraints() {
        h.str(&c.name);
        h.u64(matches!(c.kind, ConstraintKind::Periodic) as u64);
        if with_timing {
            h.u64(c.period);
            h.u64(c.deadline);
        }
        h.u64(c.task.op_count() as u64);
        for (op_id, op) in c.task.ops() {
            h.u64(op_id.index() as u64);
            h.str(&op.label);
            h.u64(op.element.index() as u64);
        }
        for (u, v) in c.task.precedence_edges() {
            h.u64(u.index() as u64);
            h.u64(v.index() as u64);
        }
    }
}

/// Fingerprint of the full analyzable content of a model.
pub fn model_fingerprint(model: &Model) -> u64 {
    let mut h = Fnv::new();
    hash_model(&mut h, model, true);
    h.finish()
}

/// Fingerprint of a model's *structure*: everything except constraint
/// periods and deadlines. Invariant under the timing edits produced by
/// [`rtcg_core::sensitivity::with_deadline`] and
/// [`rtcg_core::sensitivity::with_scaled_deadlines`].
pub fn structure_fingerprint(model: &Model) -> u64 {
    let mut h = Fnv::new();
    hash_model(&mut h, model, false);
    h.finish()
}

/// Fingerprint of the analysis request. `threads` is deliberately
/// excluded: the parallel search replays the sequential one bit for
/// bit, so thread count cannot change any observable result.
pub fn request_fingerprint(req: &AnalysisRequest) -> u64 {
    let mut h = Fnv::new();
    h.u64(match req.mode {
        AnalysisMode::Heuristic => 0,
        AnalysisMode::Merged => 1,
        AnalysisMode::Exact => 2,
    });
    h.u64(req.synthesis.max_hyperperiod);
    h.u64(req.synthesis.game_state_budget as u64);
    h.u64(req.search.max_len as u64);
    h.u64(req.search.node_budget);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::sensitivity::with_deadline;
    use rtcg_core::ConstraintId;

    #[test]
    fn deadline_edit_changes_model_but_not_structure() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let id = ConstraintId::new(0);
        let d = m.constraint(id).unwrap().deadline;
        let edited = with_deadline(&m, id, d + 1).unwrap().unwrap();
        assert_ne!(model_fingerprint(&m), model_fingerprint(&edited));
        assert_eq!(structure_fingerprint(&m), structure_fingerprint(&edited));
    }

    #[test]
    fn identical_rebuild_agrees() {
        let (m1, _) = rtcg_core::mok_example::default_model();
        let (m2, _) = rtcg_core::mok_example::default_model();
        assert_eq!(model_fingerprint(&m1), model_fingerprint(&m2));
        assert_eq!(structure_fingerprint(&m1), structure_fingerprint(&m2));
    }

    #[test]
    fn element_rename_changes_structure() {
        let mut b1 = rtcg_core::ModelBuilder::new();
        b1.element("a", 1);
        let mut b2 = rtcg_core::ModelBuilder::new();
        b2.element("b", 1);
        let m1 = b1.build().unwrap();
        let m2 = b2.build().unwrap();
        assert_ne!(structure_fingerprint(&m1), structure_fingerprint(&m2));
    }

    #[test]
    fn request_fingerprint_ignores_threads() {
        let mut r1 = AnalysisRequest::default();
        let mut r2 = AnalysisRequest::default();
        r1.threads = 1;
        r2.threads = 8;
        assert_eq!(request_fingerprint(&r1), request_fingerprint(&r2));
        r2.search.max_len = r1.search.max_len + 1;
        assert_ne!(request_fingerprint(&r1), request_fingerprint(&r2));
    }
}
