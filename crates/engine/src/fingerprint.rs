//! Content fingerprinting of models and analysis requests.
//!
//! The engine memoizes on two 64-bit FNV-1a fingerprints:
//!
//! * [`model_fingerprint`] covers *everything* analysis can observe —
//!   elements (name, weight, pipelinability), channels, and constraints
//!   including their periods and deadlines. Two models with equal
//!   fingerprints get the same verdict, so it keys the result memo.
//! * [`structure_fingerprint`] covers the same content *minus* periods
//!   and deadlines. Deadline/period edits — the probes sensitivity
//!   analysis generates — preserve it, so it keys the per-structure
//!   session state (candidate latency memos, pruner templates) that
//!   stays valid across such edits.
//!
//! Iteration orders are the model's own arena orders, which are
//! deterministic and shared by equal-content models built the same way.

use rtcg_core::constraint::ConstraintKind;
use rtcg_core::model::Model;

use crate::{AnalysisMode, AnalysisRequest};

/// Version of the fingerprint derivation scheme. Snapshot sections are
/// stamped with it at save time; a loader whose scheme differs skips
/// them (a recomputed fingerprint would key entries inconsistently with
/// the engine's live inserts). Bump whenever any hash in this module
/// changes what it covers or how.
///
/// v2: [`request_fingerprint`] covers the lane count.
pub const FP_SCHEMA_VERSION: u32 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Minimal FNV-1a accumulator; enough structure hashing for memo keys,
/// no dependency on `std::hash` trait plumbing.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Length-prefixed so `("ab","c")` and `("a","bc")` differ.
    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_model(h: &mut Fnv, model: &Model, with_timing: bool) {
    let comm = model.comm();
    h.u64(comm.element_count() as u64);
    for (id, e) in comm.elements() {
        h.u64(id.index() as u64);
        h.str(&e.name);
        h.u64(e.wcet);
        h.u64(e.pipelinable as u64);
    }
    for edge in comm.graph().edges() {
        h.u64(edge.from.index() as u64);
        h.u64(edge.to.index() as u64);
        match &edge.weight.label {
            Some(label) => {
                h.u64(1);
                h.str(label);
            }
            None => h.u64(0),
        }
    }
    h.u64(model.constraints().len() as u64);
    for c in model.constraints() {
        h.str(&c.name);
        h.u64(matches!(c.kind, ConstraintKind::Periodic) as u64);
        if with_timing {
            h.u64(c.period);
            h.u64(c.deadline);
        }
        h.u64(c.task.op_count() as u64);
        for (op_id, op) in c.task.ops() {
            h.u64(op_id.index() as u64);
            h.str(&op.label);
            h.u64(op.element.index() as u64);
        }
        for (u, v) in c.task.precedence_edges() {
            h.u64(u.index() as u64);
            h.u64(v.index() as u64);
        }
    }
}

/// Fingerprint of the full analyzable content of a model.
pub fn model_fingerprint(model: &Model) -> u64 {
    let mut h = Fnv::new();
    hash_model(&mut h, model, true);
    h.finish()
}

/// Fingerprint of a model's *structure*: everything except constraint
/// periods and deadlines. Invariant under the timing edits produced by
/// [`rtcg_core::sensitivity::with_deadline`] and
/// [`rtcg_core::sensitivity::with_scaled_deadlines`].
pub fn structure_fingerprint(model: &Model) -> u64 {
    let mut h = Fnv::new();
    hash_model(&mut h, model, false);
    h.finish()
}

/// Per-slice sub-fingerprints of one model, the unit of delta-aware
/// memo invalidation (DESIGN.md §13).
///
/// The candidate memo ([`crate::SessionMemo`]) stores, per candidate
/// action string, one *column* per constraint. The value in column `ix`
/// depends on exactly two things: constraint `ix`'s task graph
/// (operations, precedence, kind — **not** its period or deadline,
/// which are content-addressed into the probe key instead) and the
/// element alphabet (every id/weight/pipelinability, because candidate
/// strings are action sequences over element ids and latency scans read
/// weights). A delta therefore invalidates:
///
/// * nothing, when only [`SubFingerprints::constraints`] timing or
///   [`SubFingerprints::regions`] (channel topology) moved;
/// * only column `ix`, when `constraints[ix]` moved;
/// * everything, when [`SubFingerprints::weights`] moved.
///
/// `regions` exists for the *result* memo: engine-level reports hash
/// the whole model, and per-element region prints let a session name
/// which part of the comm graph a delta touched (metrics + eviction
/// audit) without diffing graphs structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubFingerprints {
    /// Per-constraint (declaration order): kind + task-graph content.
    /// Periods/deadlines excluded — retunes must not move these.
    pub constraints: Vec<u64>,
    /// Per comm-graph element region (arena order, live elements only):
    /// the element and its outgoing channels. Channel splices move only
    /// the endpoints' regions.
    pub regions: Vec<u64>,
    /// The element alphabet: every live element's id, name, weight and
    /// pipelinability. Any weight edit moves this.
    pub weights: u64,
}

impl SubFingerprints {
    /// Indices of constraints whose sub-fingerprint differs between
    /// `self` (old) and `new`, under `map`: `map(old_ix)` gives the new
    /// index of old constraint `old_ix` (`None` = removed). Returns
    /// old-side indices.
    pub fn changed_constraints(
        &self,
        new: &SubFingerprints,
        map: impl Fn(usize) -> Option<usize>,
    ) -> Vec<usize> {
        (0..self.constraints.len())
            .filter(|&ix| match map(ix) {
                Some(nix) => new.constraints.get(nix) != Some(&self.constraints[ix]),
                None => true,
            })
            .collect()
    }
}

/// Computes all sub-fingerprints of `model` in one pass.
pub fn sub_fingerprints(model: &Model) -> SubFingerprints {
    let comm = model.comm();
    let mut weights = Fnv::new();
    let mut regions = Vec::with_capacity(comm.element_count());
    for (id, e) in comm.elements() {
        weights.u64(id.index() as u64);
        weights.str(&e.name);
        weights.u64(e.wcet);
        weights.u64(e.pipelinable as u64);
        let mut r = Fnv::new();
        r.u64(id.index() as u64);
        r.str(&e.name);
        r.u64(e.wcet);
        r.u64(e.pipelinable as u64);
        for edge in comm.graph().out_edges(id) {
            r.u64(edge.to.index() as u64);
            match &edge.weight.label {
                Some(label) => {
                    r.u64(1);
                    r.str(label);
                }
                None => r.u64(0),
            }
        }
        regions.push(r.finish());
    }
    let constraints = model
        .constraints()
        .iter()
        .map(|c| {
            let mut h = Fnv::new();
            h.u64(matches!(c.kind, ConstraintKind::Periodic) as u64);
            h.u64(c.task.op_count() as u64);
            for (op_id, op) in c.task.ops() {
                h.u64(op_id.index() as u64);
                h.str(&op.label);
                h.u64(op.element.index() as u64);
            }
            for (u, v) in c.task.precedence_edges() {
                h.u64(u.index() as u64);
                h.u64(v.index() as u64);
            }
            h.finish()
        })
        .collect();
    SubFingerprints {
        constraints,
        regions,
        weights: weights.finish(),
    }
}

/// Fingerprint of the analysis request. `threads` is deliberately
/// excluded: the parallel search replays the sequential one bit for
/// bit, so thread count cannot change any observable result. The lane
/// count is included — an m-lane verdict says nothing about m′ lanes.
pub fn request_fingerprint(req: &AnalysisRequest) -> u64 {
    let mut h = Fnv::new();
    h.u64(match req.mode {
        AnalysisMode::Heuristic => 0,
        AnalysisMode::Merged => 1,
        AnalysisMode::Exact => 2,
    });
    h.u64(req.synthesis.max_hyperperiod);
    h.u64(req.synthesis.game_state_budget as u64);
    h.u64(req.search.max_len as u64);
    h.u64(req.search.node_budget);
    h.u64(req.lanes as u64);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::sensitivity::with_deadline;
    use rtcg_core::ConstraintId;

    #[test]
    fn deadline_edit_changes_model_but_not_structure() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let id = ConstraintId::new(0);
        let d = m.constraint(id).unwrap().deadline;
        let edited = with_deadline(&m, id, d + 1).unwrap().unwrap();
        assert_ne!(model_fingerprint(&m), model_fingerprint(&edited));
        assert_eq!(structure_fingerprint(&m), structure_fingerprint(&edited));
    }

    #[test]
    fn identical_rebuild_agrees() {
        let (m1, _) = rtcg_core::mok_example::default_model();
        let (m2, _) = rtcg_core::mok_example::default_model();
        assert_eq!(model_fingerprint(&m1), model_fingerprint(&m2));
        assert_eq!(structure_fingerprint(&m1), structure_fingerprint(&m2));
    }

    #[test]
    fn element_rename_changes_structure() {
        let mut b1 = rtcg_core::ModelBuilder::new();
        b1.element("a", 1);
        let mut b2 = rtcg_core::ModelBuilder::new();
        b2.element("b", 1);
        let m1 = b1.build().unwrap();
        let m2 = b2.build().unwrap();
        assert_ne!(structure_fingerprint(&m1), structure_fingerprint(&m2));
    }

    #[test]
    fn sub_fingerprints_isolate_delta_blast_radius() {
        use rtcg_core::ModelDelta;
        let (m, _) = rtcg_core::mok_example::default_model();
        let base = sub_fingerprints(&m);

        // deadline retune: nothing moves
        let id = ConstraintId::new(0);
        let d = m.constraint(id).unwrap().deadline;
        let edited = with_deadline(&m, id, d + 1).unwrap().unwrap();
        assert_eq!(base, sub_fingerprints(&edited));

        // weight retune: weights + that element's region move, no
        // constraint column moves (timing-independent task content)
        let name = m.comm().elements().next().unwrap().1.name.clone();
        let w = m.comm().wcet(m.comm().lookup(&name).unwrap()).unwrap();
        let heavier = ModelDelta::SetWcet {
            element: name,
            wcet: w + 1,
        }
        .apply(&m)
        .unwrap();
        let sub = sub_fingerprints(&heavier);
        assert_ne!(base.weights, sub.weights);
        assert_eq!(base.constraints, sub.constraints);
        assert_eq!(
            base.regions
                .iter()
                .zip(&sub.regions)
                .filter(|(a, b)| a != b)
                .count(),
            1
        );

        // constraint removal: the others' prints are stable under shift
        let popped = ModelDelta::RemoveConstraint { at: 0 }.apply(&m).unwrap();
        let sub = sub_fingerprints(&popped);
        assert_eq!(&base.constraints[1..], &sub.constraints[..]);
        assert_eq!(base.weights, sub.weights);
        assert_eq!(
            base.changed_constraints(&sub, |ix| ix.checked_sub(1)),
            vec![0]
        );
    }

    #[test]
    fn channel_splice_moves_only_source_region() {
        let mut b1 = rtcg_core::ModelBuilder::new();
        let a = b1.element("a", 1);
        let c = b1.element("c", 1);
        b1.channel(a, c);
        let m1 = b1.build().unwrap();
        let m2 = rtcg_core::ModelDelta::AddChannel {
            from: "c".into(),
            to: "a".into(),
            label: Some("fb".into()),
        }
        .apply(&m1)
        .unwrap();
        let (s1, s2) = (sub_fingerprints(&m1), sub_fingerprints(&m2));
        assert_eq!(s1.weights, s2.weights);
        assert_eq!(s1.regions[0], s2.regions[0], "a's region untouched");
        assert_ne!(s1.regions[1], s2.regions[1], "c grew an out-channel");
    }

    #[test]
    fn request_fingerprint_covers_lanes() {
        let mut r1 = AnalysisRequest::default();
        let r2 = AnalysisRequest {
            lanes: 2,
            ..Default::default()
        };
        assert_ne!(request_fingerprint(&r1), request_fingerprint(&r2));
        r1.lanes = 2;
        assert_eq!(request_fingerprint(&r1), request_fingerprint(&r2));
    }

    #[test]
    fn request_fingerprint_ignores_threads() {
        let mut r1 = AnalysisRequest::default();
        let mut r2 = AnalysisRequest::default();
        r1.threads = 1;
        r2.threads = 8;
        assert_eq!(request_fingerprint(&r1), request_fingerprint(&r2));
        r2.search.max_len = r1.search.max_len + 1;
        assert_ne!(request_fingerprint(&r1), request_fingerprint(&r2));
    }
}
