//! The versioned JSONL wire format (`{"v":1,...}`) shared by
//! `rtcg serve` and versioned `--batch` manifest entries.
//!
//! Every request line and every response line is one JSON object with a
//! mandatory integer `v` field. A line carrying a version this build
//! does not speak gets an explicit `unsupported wire version` error —
//! never a generic parse failure — so old and new peers can diagnose a
//! mismatch from the message alone.
//!
//! Requests (`op` selects the verb):
//!
//! ```json
//! {"v":1,"op":"open","id":"s1","path":"spec.rtcg"}
//! {"v":1,"op":"open","id":"s1","spec":"element fx { wcet 1 } ..."}
//! {"v":1,"op":"delta","id":"s1","delta":{"kind":"set_deadline","constraint":0,"deadline":9}}
//! {"v":1,"op":"undo","id":"s1"}
//! {"v":1,"op":"analyze","id":"s1","mode":"exact","max_len":8,"selection":[0]}
//! {"v":1,"op":"stats"}
//! {"v":1,"op":"snapshot","path":"memo.snap"}
//! {"v":1,"op":"restore","path":"memo.snap"}
//! {"v":1,"op":"close","id":"s1"}
//! ```
//!
//! Responses always carry `"v":1` and `"ok":true|false`; failed
//! requests answer `{"v":1,"ok":false,"error":"..."}` on their own line
//! and leave the daemon (and the addressed session) untouched.

use rtcg_core::{
    ConstraintId, ConstraintKind, Model, ModelDelta, TaskGraphBuilder, TimingConstraint,
};
use rtcg_engine::{AnalysisMode, ConstraintSelection, Query};
use serde_json::Value;

/// The wire version this build speaks, stamped on every line in both
/// directions.
pub const WIRE_VERSION: u64 = 1;

/// One parsed serve-protocol request.
#[derive(Debug)]
pub enum Request {
    /// Open a session `id` over a spec (from disk or inline source).
    Open { id: String, source: SpecSource },
    /// Apply one model delta to session `id` (payload resolved against
    /// the session's resident model by [`delta_from_value`]).
    Delta { id: String, delta: Value },
    /// Undo the most recent journaled delta of session `id`.
    Undo { id: String },
    /// Analyze session `id` (payload parsed by [`query_from_value`]).
    Analyze { id: String, query: Value },
    /// Report engine counters, plus per-session counters (all sessions,
    /// or just `id` when given).
    Stats { id: Option<String> },
    /// Persist the engine memo (plus every open session's candidate
    /// memo) to a snapshot file; `path` defaults to `--cache-file`.
    Snapshot { path: Option<String> },
    /// Merge a snapshot file into the live memo (warming open sessions
    /// whose structure matches); `path` defaults to `--cache-file`.
    Restore { path: Option<String> },
    /// Close session `id`, reporting its final counters.
    Close { id: String },
}

/// Where an `open` request's specification text comes from.
#[derive(Debug)]
pub enum SpecSource {
    /// `"path"`: a `.rtcg` file read server-side.
    Path(String),
    /// `"spec"`: inline `rtcg-lang` source shipped in the request.
    Inline(String),
}

/// Parses one request line: JSON envelope, version check, verb dispatch.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_envelope(line)?;
    let op = need_str(&v, "op")?;
    match op {
        "open" => {
            let id = need_str(&v, "id")?.to_string();
            let source = match (opt_str(&v, "path")?, opt_str(&v, "spec")?) {
                (Some(p), None) => SpecSource::Path(p.to_string()),
                (None, Some(s)) => SpecSource::Inline(s.to_string()),
                (None, None) => return Err("open needs a `path` or `spec` field".into()),
                (Some(_), Some(_)) => return Err("open takes `path` or `spec`, not both".into()),
            };
            Ok(Request::Open { id, source })
        }
        "delta" => Ok(Request::Delta {
            id: need_str(&v, "id")?.to_string(),
            delta: v
                .get("delta")
                .cloned()
                .ok_or("delta needs a `delta` object")?,
        }),
        "undo" => Ok(Request::Undo {
            id: need_str(&v, "id")?.to_string(),
        }),
        "analyze" => Ok(Request::Analyze {
            id: need_str(&v, "id")?.to_string(),
            query: v.clone(),
        }),
        "stats" => Ok(Request::Stats {
            id: opt_str(&v, "id")?.map(str::to_string),
        }),
        "snapshot" => Ok(Request::Snapshot {
            path: opt_str(&v, "path")?.map(str::to_string),
        }),
        "restore" => Ok(Request::Restore {
            path: opt_str(&v, "path")?.map(str::to_string),
        }),
        "close" => Ok(Request::Close {
            id: need_str(&v, "id")?.to_string(),
        }),
        other => Err(format!(
            "unknown op `{other}` (expected open, delta, undo, analyze, stats, \
             snapshot, restore or close)"
        )),
    }
}

/// Parses a JSONL line into its object form and enforces the versioned
/// envelope.
pub fn parse_envelope(line: &str) -> Result<Value, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
    if !v.is_object() {
        return Err(format!("expected a JSON object, got {}", v.kind()));
    }
    check_version(&v)?;
    Ok(v)
}

/// Enforces the `"v"` field: present, integral, and a version this
/// build speaks.
pub fn check_version(v: &Value) -> Result<(), String> {
    match v.get("v") {
        None => Err(format!(
            "missing wire version field `v` (this build speaks v{WIRE_VERSION})"
        )),
        Some(ver) => match ver.as_u64() {
            Some(WIRE_VERSION) => Ok(()),
            Some(n) => Err(format!(
                "unsupported wire version {n} (this build speaks v{WIRE_VERSION})"
            )),
            None => Err(format!(
                "wire version `v` must be an integer, got {}",
                ver.kind()
            )),
        },
    }
}

/// Resolves a versioned batch-manifest line (`{"v":1,"spec":"path"}`)
/// to its spec path.
pub fn manifest_entry(line: &str) -> Result<String, String> {
    let v = parse_envelope(line)?;
    Ok(need_str(&v, "spec")?.to_string())
}

/// Builds a [`ModelDelta`] from its wire form, resolving element names
/// and constraint indices against the session's resident model. The
/// `kind` tags match [`ModelDelta::kind`].
pub fn delta_from_value(v: &Value, model: &Model) -> Result<ModelDelta, String> {
    let kind = need_str(v, "kind")?;
    match kind {
        "set_deadline" => Ok(ModelDelta::SetDeadline {
            constraint: constraint_ref(v, model)?,
            deadline: need_u64(v, "deadline")?,
        }),
        "set_period" => Ok(ModelDelta::SetPeriod {
            constraint: constraint_ref(v, model)?,
            period: need_u64(v, "period")?,
        }),
        "set_wcet" => Ok(ModelDelta::SetWcet {
            element: need_str(v, "element")?.to_string(),
            wcet: need_u64(v, "wcet")?,
        }),
        "add_element" => Ok(ModelDelta::AddElement {
            name: need_str(v, "name")?.to_string(),
            wcet: need_u64(v, "wcet")?,
            pipelinable: match v.get("pipelinable") {
                None => true,
                Some(b) => b
                    .as_bool()
                    .ok_or_else(|| format!("`pipelinable` must be a boolean, got {}", b.kind()))?,
            },
        }),
        "remove_element" => Ok(ModelDelta::RemoveElement {
            name: need_str(v, "name")?.to_string(),
        }),
        "add_channel" => Ok(ModelDelta::AddChannel {
            from: need_str(v, "from")?.to_string(),
            to: need_str(v, "to")?.to_string(),
            label: opt_str(v, "label")?.map(str::to_string),
        }),
        "remove_channel" => Ok(ModelDelta::RemoveChannel {
            from: need_str(v, "from")?.to_string(),
            to: need_str(v, "to")?.to_string(),
        }),
        "add_constraint" => {
            let at = match v.get("at") {
                None => model.constraints().len(),
                Some(n) => n
                    .as_u64()
                    .ok_or_else(|| format!("`at` must be an index, got {}", n.kind()))?
                    as usize,
            };
            let c = v
                .get("constraint")
                .ok_or("add_constraint needs a `constraint` object")?;
            Ok(ModelDelta::AddConstraint {
                at,
                constraint: Box::new(constraint_from_value(c, model)?),
            })
        }
        "remove_constraint" => Ok(ModelDelta::RemoveConstraint {
            at: need_u64(v, "at")? as usize,
        }),
        other => Err(format!("unknown delta kind `{other}`")),
    }
}

/// Resolves a `"constraint"` field — an index, per the session's
/// current numbering — into a [`ConstraintId`].
fn constraint_ref(v: &Value, model: &Model) -> Result<ConstraintId, String> {
    let ix = need_u64(v, "constraint")?;
    if ix as usize >= model.constraints().len() {
        return Err(format!(
            "constraint index {ix} out of range (model has {})",
            model.constraints().len()
        ));
    }
    Ok(ConstraintId::new(ix as u32))
}

/// Builds a [`TimingConstraint`] from its wire form:
/// `{"name":..,"kind":"periodic"|"asynchronous","period":..,"deadline":..,
///   "ops":[{"label":..,"element":..}],"edges":[["a","b"]]}`.
/// Elements are addressed by name against the resident model.
fn constraint_from_value(v: &Value, model: &Model) -> Result<TimingConstraint, String> {
    let kind = match need_str(v, "kind")? {
        "periodic" => ConstraintKind::Periodic,
        "asynchronous" => ConstraintKind::Asynchronous,
        other => {
            return Err(format!(
                "constraint kind must be `periodic` or `asynchronous`, got `{other}`"
            ))
        }
    };
    let ops = v
        .get("ops")
        .and_then(Value::as_arr)
        .ok_or("constraint needs an `ops` array")?;
    let mut b = TaskGraphBuilder::new();
    for op in ops {
        let label = need_str(op, "label")?;
        let element = need_str(op, "element")?;
        let id = model.comm().lookup(element).map_err(|e| e.to_string())?;
        b = b.op(label, id);
    }
    if let Some(edges) = v.get("edges") {
        let edges = edges
            .as_arr()
            .ok_or_else(|| format!("`edges` must be an array, got {}", edges.kind()))?;
        for e in edges {
            let (Some(f), Some(t)) = (
                e.get_index(0).and_then(Value::as_str),
                e.get_index(1).and_then(Value::as_str),
            ) else {
                return Err("each edge must be a two-element array of op labels".into());
            };
            b = b.edge(f, t);
        }
    }
    Ok(TimingConstraint {
        name: need_str(v, "name")?.to_string(),
        task: b.build().map_err(|e| e.to_string())?,
        period: need_u64(v, "period")?,
        deadline: need_u64(v, "deadline")?,
        kind,
    })
}

/// Builds a [`Query`] from an `analyze` request: `mode`
/// (`heuristic`/`merged`/`exact`, default heuristic), `max_len`,
/// `budget` (search charge), and `selection` (constraint indices).
pub fn query_from_value(v: &Value) -> Result<Query, String> {
    let mut q = Query::default();
    if let Some(mode) = opt_str(v, "mode")? {
        q.mode = match mode {
            "heuristic" => AnalysisMode::Heuristic,
            "merged" => AnalysisMode::Merged,
            "exact" => AnalysisMode::Exact,
            other => {
                return Err(format!(
                    "mode must be `heuristic`, `merged` or `exact`, got `{other}`"
                ))
            }
        };
    }
    if let Some(l) = opt_u64(v, "max_len")? {
        q.search.max_len = l as usize;
    }
    if let Some(b) = opt_u64(v, "budget")? {
        q.search.node_budget = b;
    }
    if let Some(m) = opt_u64(v, "lanes")? {
        if m == 0 {
            return Err("`lanes` must be at least 1, got 0".into());
        }
        q.lanes = m as usize;
    }
    if let Some(sel) = v.get("selection") {
        let arr = sel
            .as_arr()
            .ok_or_else(|| format!("`selection` must be an array, got {}", sel.kind()))?;
        let ids = arr
            .iter()
            .map(|x| {
                x.as_u64()
                    .map(|n| ConstraintId::new(n as u32))
                    .ok_or_else(|| format!("selection entries must be indices, got {}", x.kind()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        q.selection = ConstraintSelection::Only(ids);
    }
    Ok(q)
}

/// Renders one response line: the `"v"` stamp followed by `fields`,
/// in order.
pub fn response(fields: Vec<(&str, Value)>) -> String {
    let mut pairs = vec![("v".to_string(), Value::UInt(WIRE_VERSION))];
    pairs.extend(fields.into_iter().map(|(k, val)| (k.to_string(), val)));
    Value::Obj(pairs).to_string()
}

/// Renders a failed request's response line.
pub fn error_response(msg: &str) -> String {
    response(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::Str(msg.to_string())),
    ])
}

fn need_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    match v.get(key) {
        None => Err(format!("missing `{key}` field")),
        Some(x) => x
            .as_str()
            .ok_or_else(|| format!("`{key}` must be a string, got {}", x.kind())),
    }
}

fn opt_str<'v>(v: &'v Value, key: &str) -> Result<Option<&'v str>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a string, got {}", x.kind())),
    }
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    match v.get(key) {
        None => Err(format!("missing `{key}` field")),
        Some(x) => x
            .as_u64()
            .ok_or_else(|| format!("`{key}` must be a non-negative integer, got {}", x.kind())),
    }
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer, got {}", x.kind())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Model {
        let mut b = rtcg_core::ModelBuilder::new();
        let x = b.element("fx", 1);
        let s = b.element("fs", 2);
        b.channel(x, s);
        let tg = TaskGraphBuilder::new().op("x", x).build().unwrap();
        b.asynchronous("chain", tg, 7, 7);
        b.build().unwrap()
    }

    #[test]
    fn version_mismatches_name_themselves() {
        let err = parse_envelope(r#"{"v":2,"op":"stats"}"#).unwrap_err();
        assert!(err.contains("unsupported wire version 2"), "{err}");
        let err = parse_envelope(r#"{"op":"stats"}"#).unwrap_err();
        assert!(err.contains("missing wire version"), "{err}");
        let err = parse_envelope(r#"{"v":"one","op":"stats"}"#).unwrap_err();
        assert!(err.contains("must be an integer"), "{err}");
        assert!(parse_envelope(r#"{"v":1,"op":"stats"}"#).is_ok());
    }

    #[test]
    fn requests_parse() {
        assert!(matches!(
            parse_request(r#"{"v":1,"op":"open","id":"a","path":"x.rtcg"}"#).unwrap(),
            Request::Open {
                source: SpecSource::Path(_),
                ..
            }
        ));
        assert!(matches!(
            parse_request(r#"{"v":1,"op":"stats"}"#).unwrap(),
            Request::Stats { id: None }
        ));
        assert!(parse_request(r#"{"v":1,"op":"open","id":"a"}"#).is_err());
        assert!(parse_request(r#"{"v":1,"op":"frobnicate"}"#).is_err());
    }

    #[test]
    fn snapshot_ops_parse_with_optional_path() {
        assert!(matches!(
            parse_request(r#"{"v":1,"op":"snapshot","path":"m.snap"}"#).unwrap(),
            Request::Snapshot { path: Some(p) } if p == "m.snap"
        ));
        assert!(matches!(
            parse_request(r#"{"v":1,"op":"snapshot"}"#).unwrap(),
            Request::Snapshot { path: None }
        ));
        assert!(matches!(
            parse_request(r#"{"v":1,"op":"restore"}"#).unwrap(),
            Request::Restore { path: None }
        ));
        let err = parse_request(r#"{"v":1,"op":"snapshot","path":7}"#).unwrap_err();
        assert!(err.contains("`path` must be a string"), "{err}");
    }

    #[test]
    fn deltas_resolve_against_the_model() {
        let m = model();
        let v: Value =
            serde_json::from_str(r#"{"kind":"set_deadline","constraint":0,"deadline":9}"#).unwrap();
        assert!(matches!(
            delta_from_value(&v, &m).unwrap(),
            ModelDelta::SetDeadline { deadline: 9, .. }
        ));
        let v: Value =
            serde_json::from_str(r#"{"kind":"set_deadline","constraint":5,"deadline":9}"#).unwrap();
        assert!(delta_from_value(&v, &m)
            .unwrap_err()
            .contains("out of range"));
        let v: Value = serde_json::from_str(
            r#"{"kind":"add_constraint","constraint":
                {"name":"beat","kind":"periodic","period":6,"deadline":4,
                 "ops":[{"label":"s","element":"fs"}]}}"#,
        )
        .unwrap();
        let d = delta_from_value(&v, &m).unwrap();
        // omitted `at` appends after the existing constraints
        assert!(matches!(d, ModelDelta::AddConstraint { at: 1, .. }));
        assert!(d.apply(&m).is_ok());
    }

    #[test]
    fn queries_parse_modes_and_selection() {
        let v: Value =
            serde_json::from_str(r#"{"mode":"exact","max_len":8,"budget":1000,"selection":[1]}"#)
                .unwrap();
        let q = query_from_value(&v).unwrap();
        assert_eq!(q.mode, AnalysisMode::Exact);
        assert_eq!(q.search.max_len, 8);
        assert_eq!(q.search.node_budget, 1000);
        assert_eq!(
            q.selection,
            ConstraintSelection::Only(vec![ConstraintId::new(1)])
        );
        let v: Value = serde_json::from_str(r#"{"mode":"psychic"}"#).unwrap();
        assert!(query_from_value(&v).is_err());
    }

    #[test]
    fn queries_parse_lanes() {
        let v: Value = serde_json::from_str(r#"{"mode":"exact","lanes":2}"#).unwrap();
        assert_eq!(query_from_value(&v).unwrap().lanes, 2);
        let v: Value = serde_json::from_str(r#"{"mode":"exact"}"#).unwrap();
        assert_eq!(query_from_value(&v).unwrap().lanes, 1);
        let v: Value = serde_json::from_str(r#"{"lanes":0}"#).unwrap();
        let err = query_from_value(&v).unwrap_err();
        assert!(err.contains("lanes"), "{err}");
    }

    #[test]
    fn responses_carry_the_version_stamp() {
        let line = response(vec![("ok", Value::Bool(true))]);
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("v").and_then(Value::as_u64), Some(WIRE_VERSION));
        let e = error_response("boom");
        let v: Value = serde_json::from_str(&e).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Value::as_str), Some("boom"));
    }

    #[test]
    fn manifest_entries_resolve_spec_paths() {
        assert_eq!(
            manifest_entry(r#"{"v":1,"spec":"a/b.rtcg"}"#).unwrap(),
            "a/b.rtcg"
        );
        assert!(manifest_entry(r#"{"v":9,"spec":"a.rtcg"}"#)
            .unwrap_err()
            .contains("unsupported wire version"));
        assert!(manifest_entry(r#"{"v":1}"#).is_err());
    }
}
