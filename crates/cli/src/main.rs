//! `rtcg` — command-line front end for the graph-based real-time
//! toolchain.
//!
//! ```text
//! rtcg check <spec.rtcg>               validate a specification
//! rtcg analyze <spec.rtcg> [--exact] [--sweep] [--cache-stats]
//! rtcg analyze --batch <manifest> [--threads N] [--budget-ms M]
//! rtcg corpus generate <dir> [--count N] [--seed S]
//! rtcg corpus run <dir|manifest> [--cache-file FILE]
//! rtcg serve [--threads N] [--budget-ms M]
//! rtcg synthesize <spec.rtcg> [--merged|--exact] [--threads N] [--gantt N]
//! rtcg simulate <spec.rtcg> --ticks N [--seed S]
//! rtcg profile <spec.rtcg> [--ticks N]
//! rtcg sensitivity <spec.rtcg>
//! rtcg dot <spec.rtcg>
//! rtcg codegen <spec.rtcg>
//! ```
//!
//! Specifications use the `rtcg-lang` text format (see the avionics
//! example). Exit codes: 0 success, 1 usage error, 2 parse/validation
//! error, 3 infeasible.

use std::process::ExitCode;

mod commands;
mod corpus;
mod profile;
mod protocol;
mod serve;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(1)
        }
        Err(CliError::Input(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
        Err(CliError::Infeasible(msg)) => {
            eprintln!("infeasible: {msg}");
            ExitCode::from(3)
        }
    }
}

const USAGE: &str = "usage:
  rtcg check <spec.rtcg> [--cache-stats]
  rtcg analyze <spec.rtcg> [--merged|--exact] [--threads N] [--max-len L]
               [--budget B] [--lanes M] [--sweep] [--cache-stats] [--progress]
               [--metrics] [--metrics-out FILE] [--trace-out FILE]
  rtcg analyze --batch <manifest> [--merged|--exact] [--threads N]
               [--budget-ms M] [--max-len L] [--budget B] [--cache-stats]
               [--cache-file FILE] [--metrics] [--metrics-out FILE]
               [--trace-out FILE]
  rtcg corpus generate <dir> [--count N] [--seed S]
  rtcg corpus run <dir|manifest> [batch flags, e.g. --cache-file FILE]
  rtcg serve [--threads N] [--budget-ms M] [--cache-file FILE]
             [--metrics-out FILE] [--trace-out FILE]
  rtcg synthesize <spec.rtcg> [--merged|--exact] [--threads N] [--max-len L]
                  [--budget B] [--budget-ms M] [--gantt N] [--cache-stats]
                  [--progress] [--metrics] [--metrics-out FILE]
                  [--trace-out FILE]
  rtcg simulate <spec.rtcg> --ticks N [--seed S] [--metrics]
                [--metrics-out FILE] [--trace-out FILE]
  rtcg profile <spec.rtcg> [--ticks N] [--format table|prom]
               [--metrics-out FILE] [--trace-out FILE]
  rtcg sensitivity <spec.rtcg> [--merged|--exact] [--cache-stats]
  rtcg dot <spec.rtcg>
  rtcg codegen <spec.rtcg>

analysis (analyze / synthesize / sensitivity):
  --merged | --exact select the analysis pipeline (default: heuristic)
  --threads N        parallel search workers (default 1)
  --max-len L        maximum schedule length in actions (default 10)
  --budget B         search charge budget: nodes + candidates (default 5000000)
  --lanes M          schedule over M parallel processor lanes (default 1);
                     --exact runs the complete lane-matrix search, the default
                     heuristic uses critical-path list scheduling
  --budget-ms M      wall-clock budget per analysis in milliseconds
  --sweep            binary-search each constraint's minimum feasible deadline,
                     reusing memoized candidate analyses across probes
  --cache-stats      print engine cache hit/miss and leaf-eval-saved counters

batch (analyze --batch):
  <manifest>         text file listing one spec per line: a bare path, or a
                     versioned JSONL record {\"v\":1,\"spec\":\"path\"}
                     (# comments; paths resolved relative to the manifest)
  --threads N        worker threads sharing one engine cache (default 1)
  --budget-ms M      per-request deadline budget; an exact search that
                     exceeds it degrades to the heuristic verdict
  --cache-file FILE  persistent memo snapshot: loaded before the batch
                     (if FILE exists) and saved back after it, so a re-run
                     replays from the warm memo instead of recomputing

corpus (mass-generated spec fleets):
  generate <dir>     write --count seeded specs (default 100, --seed S,
                     default 0) from five deterministic model families,
                     plus a versioned batch manifest (manifest.txt)
  run <dir|manifest> analyze the corpus via the batch engine; accepts all
                     batch flags — pair with --cache-file for the
                     cold-save / warm-load fleet flow

serve (persistent analysis daemon):
  speaks a versioned JSONL protocol on stdin/stdout — one request line in,
  one response line out, every line stamped {\"v\":1,...}. Ops: open (path
  or inline spec), delta (set_deadline, set_period, set_wcet, add_element,
  remove_element, add_channel, remove_channel, add_constraint,
  remove_constraint), undo, analyze (mode/max_len/budget/selection), stats,
  snapshot (persist the memo, path defaults to --cache-file), restore
  (merge a snapshot back in), close. Sessions keep the candidate memo hot
  across deltas; with --cache-file the daemon warms from the snapshot at
  startup and checkpoints on EOF shutdown; see DESIGN.md sections 13-14
  and examples/specs/serve_session.jsonl

observability:
  --metrics          print a counters/spans/histograms summary after the run
  --metrics-out FILE write metrics as Prometheus text exposition to FILE
  --progress         live exact-search progress ticker on stderr
                     (nodes/s, frontier depth, prune rate, best bound)
  --trace-out FILE   write a Chrome trace_event JSON (Perfetto, chrome://tracing)
  --format table|prom  profile output format (default: aligned tables)";

/// CLI error categories (mapped to exit codes).
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation.
    Usage(String),
    /// Unreadable/invalid input file.
    Input(String),
    /// The model has no feasible schedule (for commands that need one).
    Infeasible(String),
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    match cmd.as_str() {
        "check" => commands::check(rest(args)?, &args[2..]),
        "analyze" if args.get(1).is_some_and(|a| a == "--batch") => {
            let manifest = args.get(2).map(|s| s.as_str()).ok_or_else(|| {
                CliError::Usage("--batch needs a manifest file (one spec path per line)".into())
            })?;
            commands::analyze_batch(manifest, &args[3..])
        }
        "analyze" => commands::analyze(rest(args)?, &args[2..]),
        "corpus" => match args.get(1).map(|s| s.as_str()) {
            Some("generate") => {
                let dir = args.get(2).map(|s| s.as_str()).ok_or_else(|| {
                    CliError::Usage("corpus generate needs a target directory".into())
                })?;
                corpus::generate(dir, &args[3..])
            }
            Some("run") => {
                let target = args.get(2).map(|s| s.as_str()).ok_or_else(|| {
                    CliError::Usage("corpus run needs a corpus directory or manifest".into())
                })?;
                corpus::run(target, &args[3..])
            }
            _ => Err(CliError::Usage(
                "corpus needs a verb: generate <dir> or run <dir|manifest>".into(),
            )),
        },
        "serve" => serve::serve(&args[1..]),
        "synthesize" => commands::synthesize(rest(args)?, &args[2..]),
        "simulate" => commands::simulate(rest(args)?, &args[2..]),
        "profile" => profile::profile(rest(args)?, &args[2..]),
        "sensitivity" => commands::sensitivity(rest(args)?, &args[2..]),
        "dot" => commands::dot(rest(args)?),
        "codegen" => commands::codegen(rest(args)?),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn rest(args: &[String]) -> Result<&str, CliError> {
    args.get(1)
        .map(|s| s.as_str())
        .ok_or_else(|| CliError::Usage("missing <spec.rtcg> argument".into()))
}
