//! `rtcg serve` — a persistent analysis daemon over stdin/stdout JSONL.
//!
//! One request line in, one response line out (see [`crate::protocol`]
//! for the wire format). The daemon holds one [`Engine`] for its whole
//! lifetime — every open session shares the 16-way sharded result memo
//! — and a map of named [`Session`]s, each owning a resident model, a
//! delta journal, and a hot candidate memo that survives model edits
//! via sub-fingerprint invalidation. An editor or build system keeps
//! the process alive across an edit-analyze loop instead of paying a
//! cold start per probe.
//!
//! Request errors (bad JSON, wrong wire version, unknown session,
//! rejected delta) answer `{"v":1,"ok":false,"error":...}` and leave
//! the daemon and every session untouched; only a stdin read failure
//! ends the loop abnormally. EOF performs an orderly shutdown.

use std::collections::HashMap;
use std::io::{BufRead, Write};

use crate::commands::CommonOpts;
use crate::protocol::{self, Request, SpecSource};
use crate::CliError;
use rtcg_engine::session::Session;
use rtcg_engine::{Engine, SessionStats, Verdict};
use serde_json::Value;

/// `rtcg serve [--threads N] [--budget-ms M] [--cache-file FILE]
/// [--metrics-out FILE] [--trace-out FILE]` — run the JSONL daemon
/// until stdin closes. With `--cache-file`, the engine memo is warmed
/// from the snapshot at startup (if the file exists) and checkpointed
/// back — including every still-open session's candidate memo — on
/// orderly EOF shutdown; `snapshot`/`restore` requests do the same
/// mid-flight.
pub fn serve(flags: &[String]) -> Result<(), CliError> {
    let opts = CommonOpts::parse(flags)?;
    let rec = crate::profile::recorder_for(flags);
    let engine = Engine::new();
    if let Some(line) = crate::commands::load_cache_report(&engine, &opts)? {
        eprintln!("rtcg serve: {line}");
    }
    let mut sessions: HashMap<String, Session<'_>> = HashMap::new();
    eprintln!(
        "rtcg serve: wire v{} on stdin/stdout; \
         ops: open delta undo analyze stats snapshot restore close; EOF shuts down",
        protocol::WIRE_VERSION
    );
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| CliError::Input(format!("stdin read failed: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match handle(&engine, &mut sessions, &opts, &line) {
            Ok(reply) => reply,
            Err(msg) => protocol::error_response(&msg),
        };
        writeln!(out, "{reply}")
            .and_then(|()| out.flush())
            .map_err(|e| CliError::Input(format!("stdout write failed: {e}")))?;
    }
    if let Some(path) = &opts.cache_file {
        // checkpoint on orderly shutdown with the open sessions still
        // alive, so their resident candidate memos make it into the file
        let refs: Vec<&Session<'_>> = sessions.values().collect();
        let stats = engine
            .save_snapshot_with(path, &refs)
            .map_err(|e| CliError::Input(format!("cannot save cache `{path}`: {e}")))?;
        eprintln!(
            "rtcg serve: checkpointed {} section(s) to `{path}` ({} bytes)",
            stats.sections, stats.bytes
        );
    }
    drop(sessions);
    if let Some(rec) = rec {
        engine.publish_shard_metrics();
        crate::profile::emit(rec, flags)?;
    }
    Ok(())
}

/// Dispatches one request line; `Err` becomes an error response line.
fn handle<'e>(
    engine: &'e Engine,
    sessions: &mut HashMap<String, Session<'e>>,
    opts: &CommonOpts,
    line: &str,
) -> Result<String, String> {
    match protocol::parse_request(line)? {
        Request::Open { id, source } => {
            if sessions.contains_key(&id) {
                return Err(format!("session `{id}` is already open"));
            }
            let src = match &source {
                SpecSource::Path(path) => std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?,
                SpecSource::Inline(text) => text.clone(),
            };
            let model = rtcg_lang::parse_model(&src).map_err(|e| e.render(&src))?;
            let (elements, constraints) = (model.comm().element_count(), model.constraints().len());
            let session = engine
                .open_session_with(model, opts.engine_options())
                .map_err(|e| e.to_string())?;
            sessions.insert(id.clone(), session);
            Ok(protocol::response(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("open".into())),
                ("id", Value::Str(id)),
                ("elements", Value::UInt(elements as u64)),
                ("constraints", Value::UInt(constraints as u64)),
            ]))
        }
        Request::Delta { id, delta } => {
            let session = session_mut(sessions, &id)?;
            let delta = protocol::delta_from_value(&delta, session.model())?;
            let out = session.apply(&delta).map_err(|e| e.to_string())?;
            Ok(protocol::response(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("delta".into())),
                ("id", Value::Str(id)),
                ("kind", Value::Str(out.kind.into())),
                ("slices_evicted", Value::UInt(out.slices_evicted)),
                ("slices_kept", Value::UInt(out.slices_kept)),
                ("results_evicted", Value::UInt(out.results_evicted)),
                ("full_invalidation", Value::Bool(out.full_invalidation)),
                ("journal_len", Value::UInt(session.journal_len() as u64)),
            ]))
        }
        Request::Undo { id } => {
            let session = session_mut(sessions, &id)?;
            let undone = session
                .undo()
                .map_err(|e| e.to_string())?
                .ok_or("nothing to undo: the journal is empty")?;
            Ok(protocol::response(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("undo".into())),
                ("id", Value::Str(id)),
                ("undone", Value::Str(undone.kind().into())),
                ("journal_len", Value::UInt(session.journal_len() as u64)),
            ]))
        }
        Request::Analyze { id, query } => {
            let query = protocol::query_from_value(&query)?;
            let before = engine.stats();
            let session = session_mut(sessions, &id)?;
            let report = session.analyze(&query).map_err(|e| e.to_string())?;
            let after = engine.stats();
            let mut fields = vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("analyze".into())),
                ("id", Value::Str(id)),
            ];
            match &report.verdict {
                Verdict::Feasible { schedule, strategy } => {
                    fields.push(("verdict", Value::Str("feasible".into())));
                    fields.push(("strategy", Value::Str(strategy.to_string())));
                    let comm = report.analysis_model.comm();
                    let actions = schedule
                        .actions()
                        .iter()
                        .map(|a| match a {
                            rtcg_core::Action::Idle => Ok(Value::Str(".".into())),
                            rtcg_core::Action::Run(id) => comm
                                .name(*id)
                                .map(|n| Value::Str(n.to_string()))
                                .map_err(|e| e.to_string()),
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    fields.push(("schedule", Value::Arr(actions)));
                }
                Verdict::FeasibleLanes { schedule, strategy } => {
                    fields.push(("verdict", Value::Str("feasible".into())));
                    fields.push(("strategy", Value::Str(strategy.to_string())));
                    fields.push(("lanes", Value::UInt(schedule.lane_count() as u64)));
                    let comm = report.analysis_model.comm();
                    let mut lanes = Vec::with_capacity(schedule.lane_count());
                    for row in schedule.rows() {
                        let actions = row
                            .iter()
                            .map(|a| match a {
                                rtcg_core::Action::Idle => Ok(Value::Str(".".into())),
                                rtcg_core::Action::Run(id) => comm
                                    .name(*id)
                                    .map(|n| Value::Str(n.to_string()))
                                    .map_err(|e| e.to_string()),
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        lanes.push(Value::Arr(actions));
                    }
                    fields.push(("lane_schedule", Value::Arr(lanes)));
                }
                Verdict::Infeasible { reason } => {
                    fields.push(("verdict", Value::Str("infeasible".into())));
                    fields.push(("reason", Value::Str(reason.clone())));
                }
                Verdict::Unknown { reason } => {
                    fields.push(("verdict", Value::Str("unknown".into())));
                    fields.push(("reason", Value::Str(reason.clone())));
                }
            }
            if let Some(stats) = report.search {
                fields.push(("nodes", Value::UInt(stats.nodes_visited)));
                fields.push(("candidates", Value::UInt(stats.candidates_checked)));
            }
            // per-call engine-counter deltas: the serve smoke test (and
            // any latency-sensitive client) reads memo reuse off these
            fields.push(("result_memo_hit", Value::Bool(after.hits > before.hits)));
            fields.push((
                "leaf_evals_saved",
                Value::UInt(after.leaf_evals_saved - before.leaf_evals_saved),
            ));
            fields.push((
                "leaf_evals_computed",
                Value::UInt(after.leaf_evals_computed - before.leaf_evals_computed),
            ));
            Ok(protocol::response(fields))
        }
        Request::Stats { id } => {
            let e = engine.stats();
            let evictions: u64 = e.shards.iter().map(|s| s.evictions).sum();
            let occupancy: u64 = e.shards.iter().map(|s| s.occupancy).sum();
            let engine_obj = Value::Obj(vec![
                ("hits".into(), Value::UInt(e.hits)),
                ("misses".into(), Value::UInt(e.misses)),
                ("leaf_evals_saved".into(), Value::UInt(e.leaf_evals_saved)),
                (
                    "leaf_evals_computed".into(),
                    Value::UInt(e.leaf_evals_computed),
                ),
                ("result_occupancy".into(), Value::UInt(occupancy)),
                ("result_evictions".into(), Value::UInt(evictions)),
                (
                    "snapshot".into(),
                    Value::Obj(vec![
                        ("saves".into(), Value::UInt(e.snapshot.saves)),
                        ("loads".into(), Value::UInt(e.snapshot.loads)),
                        (
                            "sections_loaded".into(),
                            Value::UInt(e.snapshot.sections_loaded),
                        ),
                        (
                            "sections_skipped".into(),
                            Value::UInt(e.snapshot.sections_skipped),
                        ),
                        (
                            "bytes_written".into(),
                            Value::UInt(e.snapshot.bytes_written),
                        ),
                        ("bytes_read".into(), Value::UInt(e.snapshot.bytes_read)),
                    ]),
                ),
            ]);
            let mut names: Vec<&String> = sessions.keys().collect();
            names.sort();
            let per_session = names
                .into_iter()
                .filter(|n| id.as_ref().is_none_or(|want| *n == want))
                .map(|n| (n.clone(), session_stats_value(sessions[n].stats())))
                .collect::<Vec<_>>();
            if let Some(want) = &id {
                if per_session.is_empty() {
                    return Err(format!("no open session `{want}`"));
                }
            }
            Ok(protocol::response(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("stats".into())),
                ("engine", engine_obj),
                ("sessions", Value::Obj(per_session)),
            ]))
        }
        Request::Snapshot { path } => {
            let path = path
                .or_else(|| opts.cache_file.clone())
                .ok_or("snapshot needs a `path` field (or serve started with --cache-file)")?;
            let refs: Vec<&Session<'_>> = sessions.values().collect();
            let stats = engine
                .save_snapshot_with(&path, &refs)
                .map_err(|e| format!("cannot save snapshot `{path}`: {e}"))?;
            Ok(protocol::response(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("snapshot".into())),
                ("path", Value::Str(path)),
                ("sections", Value::UInt(stats.sections)),
                ("result_entries", Value::UInt(stats.result_entries)),
                ("candidate_entries", Value::UInt(stats.candidate_entries)),
                ("bytes", Value::UInt(stats.bytes)),
            ]))
        }
        Request::Restore { path } => {
            let path = path
                .or_else(|| opts.cache_file.clone())
                .ok_or("restore needs a `path` field (or serve started with --cache-file)")?;
            let mut muts: Vec<&mut Session<'_>> = sessions.values_mut().collect();
            let stats = engine
                .load_snapshot_with(&path, &mut muts)
                .map_err(|e| format!("cannot load snapshot `{path}`: {e}"))?;
            Ok(protocol::response(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("restore".into())),
                ("path", Value::Str(path)),
                ("sections_loaded", Value::UInt(stats.sections_loaded)),
                ("sections_skipped", Value::UInt(stats.sections_skipped)),
                ("results_inserted", Value::UInt(stats.results_inserted)),
                ("candidates_merged", Value::UInt(stats.candidates_merged)),
                ("entries_skipped", Value::UInt(stats.entries_skipped)),
                ("bytes", Value::UInt(stats.bytes)),
            ]))
        }
        Request::Close { id } => {
            let session = sessions
                .remove(&id)
                .ok_or_else(|| format!("no open session `{id}`"))?;
            let stats = session.stats();
            Ok(protocol::response(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("close".into())),
                ("id", Value::Str(id)),
                ("final", session_stats_value(stats)),
            ]))
        }
    }
}

fn session_mut<'s, 'e>(
    sessions: &'s mut HashMap<String, Session<'e>>,
    id: &str,
) -> Result<&'s mut Session<'e>, String> {
    sessions
        .get_mut(id)
        .ok_or_else(|| format!("no open session `{id}`"))
}

fn session_stats_value(s: SessionStats) -> Value {
    Value::Obj(vec![
        ("deltas_applied".into(), Value::UInt(s.deltas_applied)),
        ("journal_len".into(), Value::UInt(s.journal_len as u64)),
        ("analyses".into(), Value::UInt(s.analyses)),
        ("memo_candidates".into(), Value::UInt(s.memo_candidates)),
        ("memo_entries".into(), Value::UInt(s.memo_entries)),
        ("slices_evicted".into(), Value::UInt(s.slices_evicted)),
        ("results_evicted".into(), Value::UInt(s.results_evicted)),
        (
            "full_invalidations".into(),
            Value::UInt(s.full_invalidations),
        ),
    ])
}
