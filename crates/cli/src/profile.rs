//! `rtcg profile` and the shared `--metrics` / `--metrics-out` /
//! `--trace-out` / `--progress` plumbing.
//!
//! Profiling installs an in-memory [`rtcg_obs`] recorder, drives the
//! whole toolchain over one spec — necessary-condition bounds, a
//! budget-capped exact search (through an [`Engine`] so the sharded
//! result memo is exercised), heuristic synthesis, a table-executor
//! simulation, and a persistent-snapshot round-trip of the warmed memo
//! — and prints what the instrumentation collected:
//! counters, span timings, latency histograms, and per-shard cache
//! counters. `--trace-out` additionally dumps a Chrome `trace_event`
//! JSON loadable in Perfetto or chrome://tracing; `--format prom` or
//! `--metrics-out FILE` emit the Prometheus text exposition instead.

use crate::commands::{engine_err, load, run_simulation};
use crate::CliError;
use rtcg_core::feasibility::{quick_infeasible, SearchConfig};
use rtcg_core::heuristic::synthesize as core_synthesize;
use rtcg_engine::{AnalysisMode, AnalysisRequest, Engine, EngineStats, Verdict, SHARDS};
use rtcg_obs::MemoryRecorder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Aligned-text table (same shape as the bench crate's experiment
/// tables: padded columns, dashed rule under the header).
struct Table {
    header: Vec<&'static str>,
    rows: Vec<Vec<String>>,
}

impl Table {
    fn new(header: &[&'static str]) -> Self {
        Table {
            header: header.to_vec(),
            rows: Vec::new(),
        }
    }

    fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            line.trim_end().to_string()
        };
        let header: Vec<String> = self.header.iter().map(|h| h.to_string()).collect();
        let mut out = fmt(&header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt(row));
            out.push('\n');
        }
        out
    }
}

/// Installs the in-memory recorder when any observability flag
/// (`--metrics`, `--metrics-out`, `--trace-out`, `--progress`) is
/// present. Returns `None` when nothing asks for observability.
pub fn recorder_for(flags: &[String]) -> Option<&'static MemoryRecorder> {
    let wanted = ["--metrics", "--metrics-out", "--trace-out", "--progress"]
        .iter()
        .any(|w| flags.iter().any(|f| f == w));
    if wanted {
        Some(MemoryRecorder::install())
    } else {
        None
    }
}

/// Emits whatever the flags asked for: a Chrome trace file for
/// `--trace-out FILE`, a Prometheus text exposition file for
/// `--metrics-out FILE`, a metrics summary table for `--metrics`.
pub fn emit(rec: &MemoryRecorder, flags: &[String]) -> Result<(), CliError> {
    if let Some(path) = flag_str(flags, "--trace-out")? {
        std::fs::write(&path, rec.chrome_trace_json())
            .map_err(|e| CliError::Input(format!("cannot write `{path}`: {e}")))?;
        eprintln!("trace written to {path} (open in Perfetto or chrome://tracing)");
    }
    if let Some(path) = crate::commands::CommonOpts::parse(flags)?.metrics_out {
        std::fs::write(&path, rec.prometheus_text())
            .map_err(|e| CliError::Input(format!("cannot write `{path}`: {e}")))?;
        eprintln!("metrics written to {path} (Prometheus text exposition)");
    }
    if flags.iter().any(|f| f == "--metrics") {
        print!("{}", render_metrics(rec));
    }
    Ok(())
}

/// Live `--progress` ticker: a sampler thread that polls the
/// `search.progress.*` gauges the exact search publishes at its cancel
/// poll stride and rewrites one stderr status line. Sampling reads four
/// gauges off the recorder (no snapshot), so the cost is a handful of
/// map lookups per tick regardless of how much trace data accumulated.
/// Dropping the ticker stops the thread and prints a final sample, so
/// even a search faster than one tick leaves its closing rates visible.
pub struct ProgressTicker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressTicker {
    /// Starts the ticker when `--progress` was given (the flag forces
    /// recorder installation via [`recorder_for`], so `rec` is `Some`
    /// whenever the flag is present). Flag parse errors surface later,
    /// from the subcommand's own [`CommonOpts::parse`] call.
    ///
    /// [`CommonOpts::parse`]: crate::commands::CommonOpts::parse
    pub fn start_if(flags: &[String], rec: Option<&'static MemoryRecorder>) -> Option<Self> {
        let wanted = crate::commands::CommonOpts::parse(flags).is_ok_and(|o| o.progress);
        if !wanted {
            return None;
        }
        let rec = rec?;
        let stop = Arc::new(AtomicBool::new(false));
        let seen = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut ticked = false;
            while !seen.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(100));
                if let Some(line) = progress_line(rec) {
                    eprint!("\r{line}");
                    ticked = true;
                }
            }
            // final sample on shutdown: short searches still report
            if let Some(line) = progress_line(rec) {
                eprintln!("\r{line}");
            } else if ticked {
                eprintln!();
            }
        });
        Some(ProgressTicker {
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for ProgressTicker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn progress_line(rec: &MemoryRecorder) -> Option<String> {
    let nps = rec.gauge("search.progress.nodes_per_sec")?;
    let depth = rec.gauge("search.progress.frontier_depth").unwrap_or(0);
    let prune = rec.gauge("search.progress.prune_rate_pct").unwrap_or(0);
    let bound = rec.gauge("search.progress.best_bound").unwrap_or(0);
    Some(format!(
        "search: {nps} nodes/s  depth {depth}  prune {prune}%  bound {bound}   "
    ))
}

/// Renders the recorder's current contents as summary tables.
pub fn render_metrics(rec: &MemoryRecorder) -> String {
    let snap = rec.snapshot();
    let mut out = String::new();

    if !snap.counters.is_empty() {
        let mut t = Table::new(&["counter", "value"]);
        for (name, v) in &snap.counters {
            t.row(vec![name.to_string(), v.to_string()]);
        }
        out.push_str("\ncounters:\n");
        out.push_str(&t.render());
    }

    if !snap.spans.is_empty() {
        // aggregate spans by name, preserving first-seen order
        let mut names: Vec<&'static str> = Vec::new();
        for s in &snap.spans {
            if !names.contains(&s.name) {
                names.push(s.name);
            }
        }
        let mut t = Table::new(&["span", "cat", "count", "total"]);
        for name in names {
            let count = snap.spans.iter().filter(|s| s.name == name).count();
            let cat = snap
                .spans
                .iter()
                .find(|s| s.name == name)
                .map_or("", |s| s.cat);
            let total = snap.span_total(name);
            t.row(vec![
                name.to_string(),
                cat.to_string(),
                count.to_string(),
                format!("{:.3}ms", total.as_secs_f64() * 1e3),
            ]);
        }
        out.push_str("\nspans:\n");
        out.push_str(&t.render());
    }

    if !snap.histograms.is_empty() {
        let mut t = Table::new(&["histogram", "count", "mean", "p50", "p90", "p99", "max"]);
        for h in &snap.histograms {
            t.row(vec![
                h.name.to_string(),
                h.count.to_string(),
                format!("{:.1}", h.mean()),
                h.percentile(50.0).to_string(),
                h.percentile(90.0).to_string(),
                h.percentile(99.0).to_string(),
                h.max.to_string(),
            ]);
        }
        out.push_str("\nhistograms:\n");
        out.push_str(&t.render());
    }

    if !snap.events.is_empty() {
        out.push_str(&format!(
            "\n{} instant event(s) recorded\n",
            snap.events.len()
        ));
    }
    out
}

/// Renders per-shard cache counters of the engine's 16-way result memo
/// as an aligned table (plus a totals row).
pub fn render_shard_table(stats: &EngineStats) -> String {
    let mut t = Table::new(&["shard", "hits", "misses", "inserts", "poison", "occupancy"]);
    let (mut h, mut m, mut i, mut p, mut o) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for (ix, s) in stats.shards.iter().enumerate() {
        t.row(vec![
            format!("{ix:02}"),
            s.hits.to_string(),
            s.misses.to_string(),
            s.inserts.to_string(),
            s.poison_recoveries.to_string(),
            s.occupancy.to_string(),
        ]);
        h += s.hits;
        m += s.misses;
        i += s.inserts;
        p += s.poison_recoveries;
        o += s.occupancy;
    }
    t.row(vec![
        "all".into(),
        h.to_string(),
        m.to_string(),
        i.to_string(),
        p.to_string(),
        o.to_string(),
    ]);
    let mut out = String::from("\nengine result-memo shards:\n");
    out.push_str(&t.render());
    debug_assert_eq!(stats.shards.len(), SHARDS);
    out
}

/// `rtcg profile <spec.rtcg> [--ticks N] [--format table|prom]
/// [--trace-out FILE] [--metrics-out FILE]` — run the full pipeline
/// under the recorder and print the metrics summary.
pub fn profile(path: &str, flags: &[String]) -> Result<(), CliError> {
    let format = flag_str(flags, "--format")?.unwrap_or_else(|| "table".into());
    if format != "table" && format != "prom" {
        return Err(CliError::Usage(format!(
            "--format must be `table` or `prom`, got `{format}`"
        )));
    }
    let rec = MemoryRecorder::install();
    let (_, model) = load(path)?;
    let ticks = crate::commands::flag_value(flags, "--ticks")?.unwrap_or(1000);

    println!("profiling {path}:");

    // 1. necessary-condition bounds
    let bound = quick_infeasible(&model).map_err(|e| CliError::Input(e.to_string()))?;
    println!(
        "  bounds: {}",
        bound.map_or("pass".to_string(), |r| format!("infeasible ({r})"))
    );

    // 2. budget-capped exact search through an engine, so the run
    //    exercises (and reports) the sharded result memo. Profiling
    //    wants node counts, not an exhaustive answer, hence the
    //    deliberately small budget.
    let engine = Engine::new();
    let req = AnalysisRequest {
        mode: AnalysisMode::Exact,
        search: SearchConfig {
            max_len: 8,
            node_budget: 50_000,
        },
        ..AnalysisRequest::default()
    };
    let report = engine.analyze(&model, &req).map_err(engine_err)?;
    let schedule_cell = match report.verdict {
        Verdict::Feasible { .. } | Verdict::FeasibleLanes { .. } => "found",
        Verdict::Infeasible { .. } => "none within bound",
        Verdict::Unknown { .. } => "budget exhausted",
    };
    // a degraded request (budget fallback, warm memo hit) may answer
    // without search stats; profile the row as degraded, don't panic
    match report.search {
        Some(stats) => println!(
            "  exact search: {} nodes, {} candidates, schedule {}",
            stats.nodes_visited, stats.candidates_checked, schedule_cell
        ),
        None => println!("  exact search: degraded (no search stats), schedule {schedule_cell}"),
    }

    // 3. heuristic synthesis + 4. table-executor simulation
    match core_synthesize(&model) {
        Ok(out) => {
            println!(
                "  synthesis: {} ({} actions)",
                out.strategy,
                out.schedule.len()
            );
            let run = run_simulation(out.model(), &out.schedule, ticks, 0)?;
            println!(
                "  simulation: {ticks} ticks, {} windows checked, {} missed",
                run.total_checked(),
                run.outcomes.iter().map(|o| o.missed).sum::<usize>()
            );
        }
        Err(e) => println!("  synthesis: infeasible ({e})"),
    }

    // 5. persistent-snapshot round-trip over the memo the steps above
    //    warmed, so the engine.snapshot.* metrics (save/load latency
    //    histograms, byte and section counters) carry real values in
    //    every output format
    let snap = std::env::temp_dir().join(format!("rtcg_profile_{}.snap", std::process::id()));
    let saved = engine
        .save_snapshot(&snap)
        .map_err(|e| CliError::Input(e.to_string()))?;
    let loaded = engine
        .load_snapshot(&snap)
        .map_err(|e| CliError::Input(e.to_string()))?;
    let _ = std::fs::remove_file(&snap);
    println!(
        "  snapshot: {} section(s), {} bytes round-tripped ({} loaded, {} stale)",
        saved.sections, saved.bytes, loaded.sections_loaded, loaded.sections_skipped
    );

    // fold the shard counters into the metric stream so every output
    // format (tables, prom text, --metrics-out) sees the same data
    engine.publish_shard_metrics();

    if format == "prom" {
        print!("{}", rec.prometheus_text());
    } else {
        print!("{}", render_metrics(rec));
        print!("{}", render_shard_table(&engine.stats()));
    }

    if let Some(out) = flag_str(flags, "--metrics-out")? {
        std::fs::write(&out, rec.prometheus_text())
            .map_err(|e| CliError::Input(format!("cannot write `{out}`: {e}")))?;
        println!("\nmetrics written to {out} (Prometheus text exposition)");
    }
    if let Some(out) = flag_str(flags, "--trace-out")? {
        std::fs::write(&out, rec.chrome_trace_json())
            .map_err(|e| CliError::Input(format!("cannot write `{out}`: {e}")))?;
        println!("\ntrace written to {out} (open in Perfetto or chrome://tracing)");
    }
    Ok(())
}

/// Extracts a string-valued `--flag VALUE` pair.
pub fn flag_str(flags: &[String], name: &str) -> Result<Option<String>, CliError> {
    match flags.iter().position(|f| f == name) {
        None => Ok(None),
        Some(ix) => flags
            .get(ix + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| CliError::Usage(format!("{name} needs a value"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["name", "v"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        let off = lines[0].find('v').unwrap();
        assert_eq!(lines[2].find('1'), Some(off));
    }

    #[test]
    fn flag_str_parses() {
        let flags = vec!["--trace-out".to_string(), "t.json".to_string()];
        assert_eq!(flag_str(&flags, "--trace-out").unwrap().unwrap(), "t.json");
        assert!(flag_str(&flags, "--other").unwrap().is_none());
        assert!(flag_str(&flags[..1], "--trace-out").is_err());
    }
}
