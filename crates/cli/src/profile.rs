//! `rtcg profile` and the shared `--metrics` / `--trace-out` plumbing.
//!
//! Profiling installs an in-memory [`rtcg_obs`] recorder, drives the
//! whole toolchain over one spec — necessary-condition bounds, a
//! budget-capped exact search, heuristic synthesis, and a table-executor
//! simulation — and prints what the instrumentation collected: counters,
//! span timings, and latency histograms. `--trace-out` additionally
//! dumps a Chrome `trace_event` JSON loadable in Perfetto or
//! chrome://tracing.

use crate::commands::{load, run_simulation};
use crate::CliError;
use rtcg_core::feasibility::{find_feasible, quick_infeasible, SearchConfig};
use rtcg_core::heuristic::synthesize as core_synthesize;
use rtcg_obs::MemoryRecorder;

/// Aligned-text table (same shape as the bench crate's experiment
/// tables: padded columns, dashed rule under the header).
struct Table {
    header: Vec<&'static str>,
    rows: Vec<Vec<String>>,
}

impl Table {
    fn new(header: &[&'static str]) -> Self {
        Table {
            header: header.to_vec(),
            rows: Vec::new(),
        }
    }

    fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            line.trim_end().to_string()
        };
        let header: Vec<String> = self.header.iter().map(|h| h.to_string()).collect();
        let mut out = fmt(&header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt(row));
            out.push('\n');
        }
        out
    }
}

/// Installs the in-memory recorder when `--metrics` or `--trace-out` is
/// present. Returns `None` when neither flag asks for observability.
pub fn recorder_for(flags: &[String]) -> Option<&'static MemoryRecorder> {
    let wanted = flags.iter().any(|f| f == "--metrics") || flags.iter().any(|f| f == "--trace-out");
    if wanted {
        Some(MemoryRecorder::install())
    } else {
        None
    }
}

/// Emits whatever the flags asked for: a Chrome trace file for
/// `--trace-out FILE`, a metrics summary table for `--metrics`.
pub fn emit(rec: &MemoryRecorder, flags: &[String]) -> Result<(), CliError> {
    if let Some(path) = flag_str(flags, "--trace-out")? {
        std::fs::write(&path, rec.chrome_trace_json())
            .map_err(|e| CliError::Input(format!("cannot write `{path}`: {e}")))?;
        eprintln!("trace written to {path} (open in Perfetto or chrome://tracing)");
    }
    if flags.iter().any(|f| f == "--metrics") {
        print!("{}", render_metrics(rec));
    }
    Ok(())
}

/// Renders the recorder's current contents as summary tables.
pub fn render_metrics(rec: &MemoryRecorder) -> String {
    let snap = rec.snapshot();
    let mut out = String::new();

    if !snap.counters.is_empty() {
        let mut t = Table::new(&["counter", "value"]);
        for (name, v) in &snap.counters {
            t.row(vec![name.to_string(), v.to_string()]);
        }
        out.push_str("\ncounters:\n");
        out.push_str(&t.render());
    }

    if !snap.spans.is_empty() {
        // aggregate spans by name, preserving first-seen order
        let mut names: Vec<&'static str> = Vec::new();
        for s in &snap.spans {
            if !names.contains(&s.name) {
                names.push(s.name);
            }
        }
        let mut t = Table::new(&["span", "cat", "count", "total"]);
        for name in names {
            let count = snap.spans.iter().filter(|s| s.name == name).count();
            let cat = snap
                .spans
                .iter()
                .find(|s| s.name == name)
                .map_or("", |s| s.cat);
            let total = snap.span_total(name);
            t.row(vec![
                name.to_string(),
                cat.to_string(),
                count.to_string(),
                format!("{:.3}ms", total.as_secs_f64() * 1e3),
            ]);
        }
        out.push_str("\nspans:\n");
        out.push_str(&t.render());
    }

    if !snap.histograms.is_empty() {
        let mut t = Table::new(&["histogram", "count", "mean", "p50", "p99", "max"]);
        for h in &snap.histograms {
            t.row(vec![
                h.name.to_string(),
                h.count.to_string(),
                format!("{:.1}", h.mean()),
                h.percentile(50.0).to_string(),
                h.percentile(99.0).to_string(),
                h.max.to_string(),
            ]);
        }
        out.push_str("\nhistograms:\n");
        out.push_str(&t.render());
    }

    if !snap.events.is_empty() {
        out.push_str(&format!(
            "\n{} instant event(s) recorded\n",
            snap.events.len()
        ));
    }
    out
}

/// `rtcg profile <spec.rtcg> [--ticks N] [--trace-out FILE]` — run the
/// full pipeline under the recorder and print the metrics summary.
pub fn profile(path: &str, flags: &[String]) -> Result<(), CliError> {
    let rec = MemoryRecorder::install();
    let (_, model) = load(path)?;
    let ticks = crate::commands::flag_value(flags, "--ticks")?.unwrap_or(1000);

    println!("profiling {path}:");

    // 1. necessary-condition bounds
    let bound = quick_infeasible(&model).map_err(|e| CliError::Input(e.to_string()))?;
    println!(
        "  bounds: {}",
        bound.map_or("pass".to_string(), |r| format!("infeasible ({r})"))
    );

    // 2. budget-capped exact search (profiling wants node counts, not an
    //    exhaustive answer, so the budget is deliberately small)
    let search = find_feasible(
        &model,
        SearchConfig {
            max_len: 8,
            node_budget: 50_000,
        },
    )
    .map_err(|e| CliError::Input(e.to_string()))?;
    println!(
        "  exact search: {} nodes, {} candidates, schedule {}",
        search.nodes_visited,
        search.candidates_checked,
        if search.schedule.is_some() {
            "found"
        } else if search.exhausted_bound {
            "none within bound"
        } else {
            "budget exhausted"
        }
    );

    // 3. heuristic synthesis + 4. table-executor simulation
    match core_synthesize(&model) {
        Ok(out) => {
            println!(
                "  synthesis: {} ({} actions)",
                out.strategy,
                out.schedule.len()
            );
            let run = run_simulation(out.model(), &out.schedule, ticks, 0)?;
            println!(
                "  simulation: {ticks} ticks, {} windows checked, {} missed",
                run.total_checked(),
                run.outcomes.iter().map(|o| o.missed).sum::<usize>()
            );
        }
        Err(e) => println!("  synthesis: infeasible ({e})"),
    }

    print!("{}", render_metrics(rec));

    if let Some(out) = flag_str(flags, "--trace-out")? {
        std::fs::write(&out, rec.chrome_trace_json())
            .map_err(|e| CliError::Input(format!("cannot write `{out}`: {e}")))?;
        println!("\ntrace written to {out} (open in Perfetto or chrome://tracing)");
    }
    Ok(())
}

/// Extracts a string-valued `--flag VALUE` pair.
pub fn flag_str(flags: &[String], name: &str) -> Result<Option<String>, CliError> {
    match flags.iter().position(|f| f == name) {
        None => Ok(None),
        Some(ix) => flags
            .get(ix + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| CliError::Usage(format!("{name} needs a value"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["name", "v"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        let off = lines[0].find('v').unwrap();
        assert_eq!(lines[2].find('1'), Some(off));
    }

    #[test]
    fn flag_str_parses() {
        let flags = vec!["--trace-out".to_string(), "t.json".to_string()];
        assert_eq!(flag_str(&flags, "--trace-out").unwrap().unwrap(), "t.json");
        assert!(flag_str(&flags, "--other").unwrap().is_none());
        assert!(flag_str(&flags[..1], "--trace-out").is_err());
    }
}
