//! Subcommand implementations.

use crate::CliError;
use rtcg_core::heuristic::synthesize as core_synthesize;
use rtcg_core::model::Model;
use rtcg_engine::{AnalysisMode, AnalysisRequest, Engine, EngineError, Verdict};
use rtcg_sim::gantt::render_gantt;
use rtcg_sim::invocation::InvocationPattern;
use rtcg_sim::report::SimReport;
use rtcg_sim::table::run_table_executor;

pub(crate) fn load(path: &str) -> Result<(String, Model), CliError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError::Input(format!("cannot read `{path}`: {e}")))?;
    let model = rtcg_lang::parse_model(&src)
        .map_err(|e| CliError::Input(format!("{path}:{}", e.render(&src))))?;
    Ok((src, model))
}

fn summary(model: &Model) -> String {
    format!(
        "{} elements, {} constraints ({} periodic, {} asynchronous), \
         deadline density {:.3}, hyperperiod {}",
        model.comm().element_count(),
        model.constraints().len(),
        model.periodic().count(),
        model.asynchronous().count(),
        model.deadline_density(),
        model.hyperperiod()
    )
}

/// The session-level options shared verbatim by `analyze`, `serve`,
/// `synthesize` and `analyze --batch`: resource knobs (`--threads`,
/// `--budget-ms`), observability sinks (`--metrics-out`, `--progress`)
/// and the persistent memo snapshot (`--cache-file`), parsed once with
/// uniform positive-value validation so every subcommand rejects
/// `--threads 0` or `--budget-ms 0` with the same usage diagnostic
/// (exit code 1).
#[derive(Debug, Clone)]
pub(crate) struct CommonOpts {
    /// Exact-search worker threads (default 1).
    pub threads: usize,
    /// Wall-clock budget per analysis, in milliseconds.
    pub budget_ms: Option<u64>,
    /// Prometheus text-exposition output file.
    pub metrics_out: Option<String>,
    /// Live stderr progress ticker.
    pub progress: bool,
    /// Memo snapshot loaded before and saved after the run.
    pub cache_file: Option<String>,
}

impl CommonOpts {
    pub fn parse(flags: &[String]) -> Result<Self, CliError> {
        Ok(CommonOpts {
            threads: positive_flag_value(flags, "--threads")?.unwrap_or(1) as usize,
            budget_ms: positive_flag_value(flags, "--budget-ms")?,
            metrics_out: crate::profile::flag_str(flags, "--metrics-out")?,
            progress: flags.iter().any(|f| f == "--progress"),
            cache_file: cache_file_flag(flags)?,
        })
    }

    /// The engine's session-level half of these options.
    pub fn engine_options(&self) -> rtcg_engine::EngineOptions {
        rtcg_engine::EngineOptions {
            threads: self.threads,
            budget_ms: self.budget_ms,
        }
    }
}

/// `--cache-file <path>`: a memo snapshot to load before and save
/// after the run. Validation is eager and usage-level (exit code 1):
/// the path must not name a directory, and a not-yet-existing file must
/// at least sit in an existing directory — so a typo'd path fails
/// before a long batch runs rather than at save time after it.
pub(crate) fn cache_file_flag(flags: &[String]) -> Result<Option<String>, CliError> {
    let Some(path) = crate::profile::flag_str(flags, "--cache-file")? else {
        return Ok(None);
    };
    let p = std::path::Path::new(&path);
    if p.is_dir() {
        return Err(CliError::Usage(format!(
            "--cache-file `{path}` is a directory, not a snapshot file"
        )));
    }
    if !p.exists() {
        if let Some(parent) = p.parent() {
            if !parent.as_os_str().is_empty() && !parent.is_dir() {
                return Err(CliError::Usage(format!(
                    "--cache-file `{path}`: parent directory `{}` does not exist",
                    parent.display()
                )));
            }
        }
    }
    Ok(Some(path))
}

/// Warms `engine` from the `--cache-file` snapshot, if one is set and
/// already exists (a missing file is the normal cold-start case, not an
/// error). Corrupt or unreadable snapshots abort the run: silently
/// recomputing cold would mask the operational problem the flag exists
/// to avoid. Returns the one-line human report, which [`load_cache`]
/// prints to stdout and `rtcg serve` routes to stderr (its stdout is
/// the JSONL response stream).
pub(crate) fn load_cache_report(
    engine: &Engine,
    common: &CommonOpts,
) -> Result<Option<String>, CliError> {
    let Some(path) = &common.cache_file else {
        return Ok(None);
    };
    if !std::path::Path::new(path).exists() {
        return Ok(Some(format!("cache: `{path}` not found, starting cold")));
    }
    let stats = engine
        .load_snapshot(path)
        .map_err(|e| CliError::Input(format!("cannot load cache `{path}`: {e}")))?;
    Ok(Some(format!(
        "cache: loaded {} section(s) from `{path}` ({} stale section(s) skipped, {} bytes)",
        stats.sections_loaded, stats.sections_skipped, stats.bytes
    )))
}

/// [`load_cache_report`], reporting on stdout.
pub(crate) fn load_cache(engine: &Engine, common: &CommonOpts) -> Result<(), CliError> {
    if let Some(line) = load_cache_report(engine, common)? {
        println!("{line}");
    }
    Ok(())
}

/// Persists `engine`'s memos to the `--cache-file` snapshot, if set.
pub(crate) fn save_cache(engine: &Engine, common: &CommonOpts) -> Result<(), CliError> {
    let Some(path) = &common.cache_file else {
        return Ok(());
    };
    let stats = engine
        .save_snapshot(path)
        .map_err(|e| CliError::Input(format!("cannot save cache `{path}`: {e}")))?;
    println!(
        "cache: saved {} section(s) to `{path}` ({} bytes)",
        stats.sections, stats.bytes
    );
    Ok(())
}

/// Maps the shared analysis flags onto one [`AnalysisRequest`]:
/// `--merged`/`--exact` select the mode, `--threads`, `--max-len` and
/// `--budget` tune the exact search.
pub(crate) fn request_from_flags(flags: &[String]) -> Result<AnalysisRequest, CliError> {
    let mut req = AnalysisRequest::default();
    if flags.iter().any(|f| f == "--merged") {
        req.mode = AnalysisMode::Merged;
    }
    if flags.iter().any(|f| f == "--exact") {
        req.mode = AnalysisMode::Exact;
    }
    req.threads = CommonOpts::parse(flags)?.threads;
    if let Some(l) = flag_value(flags, "--max-len")? {
        req.search.max_len = l as usize;
    }
    if let Some(b) = positive_flag_value(flags, "--budget")? {
        req.search.node_budget = b;
    }
    if let Some(m) = positive_flag_value(flags, "--lanes")? {
        req.lanes = m as usize;
    }
    Ok(req)
}

pub(crate) fn engine_err(e: EngineError) -> CliError {
    match e {
        EngineError::Infeasible(reason) => CliError::Infeasible(reason),
        other => CliError::Input(other.to_string()),
    }
}

pub(crate) fn print_cache_stats(engine: &Engine) {
    let s = engine.stats();
    println!(
        "engine cache: {} hit(s), {} miss(es); leaf evals: {} saved, {} computed; \
         {} structure session(s), {} candidate memo(s)",
        s.hits, s.misses, s.leaf_evals_saved, s.leaf_evals_computed, s.sessions, s.memo_candidates
    );
}

/// `rtcg check [--cache-stats]` — parse, validate, report bounds.
pub fn check(path: &str, flags: &[String]) -> Result<(), CliError> {
    let (_, model) = load(path)?;
    println!("{path}: OK");
    println!("{}", summary(&model));
    match rtcg_core::feasibility::quick_infeasible(&model)
        .map_err(|e| CliError::Input(e.to_string()))?
    {
        Some(reason) => println!("warning: certainly infeasible — {reason}"),
        None => println!("necessary conditions pass (density bound, span bounds)"),
    }
    for (_, c) in model.constraints_enumerated() {
        let w = c
            .computation_time(model.comm())
            .map_err(|e| CliError::Input(e.to_string()))?;
        println!(
            "  {:<16} {:<12} p={:<6} d={:<6} w={}",
            c.name,
            if c.is_periodic() {
                "periodic"
            } else {
                "asynchronous"
            },
            c.period,
            c.deadline,
            w
        );
    }
    if flags.iter().any(|f| f == "--cache-stats") {
        // run a full feasibility analysis through the engine so the
        // stats line reflects a real workload (second run memo-hits)
        let engine = Engine::new();
        let req = request_from_flags(flags)?;
        let report = engine.analyze(&model, &req).map_err(engine_err)?;
        let verdict = match &report.verdict {
            Verdict::Feasible { strategy, .. } => format!("feasible ({strategy})"),
            Verdict::FeasibleLanes { schedule, strategy } => {
                format!("feasible ({strategy}, {} lanes)", schedule.lane_count())
            }
            Verdict::Infeasible { reason } => format!("infeasible — {reason}"),
            Verdict::Unknown { reason } => format!("unknown — {reason}"),
        };
        println!("engine verdict: {verdict}");
        print_cache_stats(&engine);
    }
    Ok(())
}

/// `rtcg synthesize [--merged|--exact] [--threads N] [--max-len L]
/// [--budget B] [--gantt N] [--cache-file F] [--progress] [--metrics]
/// [--metrics-out F] [--trace-out F]`.
pub fn synthesize(path: &str, flags: &[String]) -> Result<(), CliError> {
    let rec = crate::profile::recorder_for(flags);
    let ticker = crate::profile::ProgressTicker::start_if(flags, rec);
    let result = synthesize_inner(path, flags);
    drop(ticker);
    if let Some(rec) = rec {
        // emit even when synthesis failed: the trace shows *where* the
        // pipeline spent its time before giving up
        crate::profile::emit(rec, flags)?;
    }
    result
}

fn synthesize_inner(path: &str, flags: &[String]) -> Result<(), CliError> {
    // flags validate before the spec loads: a usage error is a usage
    // error whether or not the file exists
    let gantt_ticks = flag_value(flags, "--gantt")?;
    let req = request_from_flags(flags)?;
    let common = CommonOpts::parse(flags)?;
    let (_, model) = load(path)?;
    let engine = Engine::new();
    load_cache(&engine, &common)?;
    let report = {
        let (query, _) = req.split();
        let mut session = engine
            .open_session_with(model, common.engine_options())
            .map_err(engine_err)?;
        session.analyze(&query).map_err(engine_err)?
    };
    save_cache(&engine, &common)?;
    if let (AnalysisMode::Exact, Some(stats)) = (req.mode, report.search) {
        println!(
            "exact search ({} thread(s), max len {}, budget {}): {} nodes, {} candidates{}",
            req.threads,
            req.search.max_len,
            req.search.node_budget,
            stats.nodes_visited,
            stats.candidates_checked,
            if stats.exhausted_bound {
                ""
            } else {
                " — budget exhausted"
            }
        );
    }
    let result = match &report.verdict {
        Verdict::Feasible { schedule, strategy } => {
            match req.mode {
                AnalysisMode::Heuristic => println!("latency scheduling ({strategy}):"),
                AnalysisMode::Merged => println!(
                    "merged latency scheduling ({strategy}, {} group(s) merged):",
                    report.groups_merged
                ),
                AnalysisMode::Exact => {}
            }
            print_schedule(&report.analysis_model, schedule, gantt_ticks)
        }
        Verdict::FeasibleLanes { schedule, strategy } => {
            println!("lane scheduling ({strategy}):");
            print_lane_schedule(&report.analysis_model, schedule)
        }
        Verdict::Infeasible { reason } => Err(CliError::Infeasible(reason.clone())),
        Verdict::Unknown { reason } => Err(CliError::Infeasible(reason.clone())),
    };
    if flags.iter().any(|f| f == "--cache-stats") {
        print_cache_stats(&engine);
    }
    result
}

/// `rtcg analyze [--merged|--exact] [--threads N] [--max-len L]
/// [--budget B] [--sweep] [--cache-stats] [--cache-file F] [--progress]
/// [--metrics] [--metrics-out F] [--trace-out F]` — the unified analysis front
/// end. Without `--sweep`, reports the verdict for the model as
/// written; with `--sweep`, binary-searches every constraint's minimum
/// feasible deadline through the engine's incremental cache.
pub fn analyze(path: &str, flags: &[String]) -> Result<(), CliError> {
    let rec = crate::profile::recorder_for(flags);
    let ticker = crate::profile::ProgressTicker::start_if(flags, rec);
    let result = analyze_inner(path, flags);
    drop(ticker);
    if let Some(rec) = rec {
        // emit even on an infeasible verdict: the metrics show what the
        // search did before concluding
        crate::profile::emit(rec, flags)?;
    }
    result
}

fn analyze_inner(path: &str, flags: &[String]) -> Result<(), CliError> {
    let req = request_from_flags(flags)?;
    let common = CommonOpts::parse(flags)?;
    let (_, model) = load(path)?;
    let engine = Engine::new();
    load_cache(&engine, &common)?;
    if flags.iter().any(|f| f == "--sweep") {
        println!("deadline sensitivity sweep ({}):", mode_name(req.mode));
        let rows = engine
            .deadline_sensitivities(&model, &req)
            .map_err(engine_err)?;
        for r in rows {
            print_sensitivity_row(&r);
        }
        let pct = engine
            .max_uniform_tightening(&model, &req)
            .map_err(engine_err)?;
        println!("maximum uniform tightening: {pct}% of declared deadlines");
        save_cache(&engine, &common)?;
    } else {
        let report = {
            let (query, _) = req.split();
            let mut session = engine
                .open_session_with(model, common.engine_options())
                .map_err(engine_err)?;
            session.analyze(&query).map_err(engine_err)?
        };
        save_cache(&engine, &common)?;
        if let Some(stats) = report.search {
            println!(
                "search: {} nodes, {} candidates{}",
                stats.nodes_visited,
                stats.candidates_checked,
                if stats.exhausted_bound {
                    ""
                } else {
                    " — budget exhausted"
                }
            );
        }
        let verdict = match &report.verdict {
            Verdict::Feasible { schedule, strategy } => {
                println!("feasible ({strategy}):");
                print_schedule(&report.analysis_model, schedule, None)
            }
            Verdict::FeasibleLanes { schedule, strategy } => {
                println!("feasible ({strategy}):");
                print_lane_schedule(&report.analysis_model, schedule)
            }
            Verdict::Infeasible { reason } => Err(CliError::Infeasible(reason.clone())),
            Verdict::Unknown { reason } => Err(CliError::Infeasible(format!("unknown: {reason}"))),
        };
        if flags.iter().any(|f| f == "--cache-stats") {
            print_cache_stats(&engine);
        }
        return verdict;
    }
    if flags.iter().any(|f| f == "--cache-stats") {
        print_cache_stats(&engine);
    }
    Ok(())
}

/// `rtcg analyze --batch <manifest> [--threads N] [--budget-ms M]
/// [--merged|--exact] [--max-len L] [--budget B] [--cache-stats]
/// [--cache-file F]` — analyzes every spec listed in the manifest (one
/// path per line, `#` comments, paths relative to the manifest) through
/// one shared engine cache, fanned across `N` worker threads. With
/// `--budget-ms`, a request whose exact search exceeds the budget
/// degrades to the heuristic verdict instead of erroring. With
/// `--cache-file`, the engine memo is warmed from the snapshot before
/// the batch and persisted back after it.
pub fn analyze_batch(manifest: &str, flags: &[String]) -> Result<(), CliError> {
    let rec = crate::profile::recorder_for(flags);
    let result = analyze_batch_inner(manifest, flags);
    if let Some(rec) = rec {
        crate::profile::emit(rec, flags)?;
    }
    result
}

fn analyze_batch_inner(manifest: &str, flags: &[String]) -> Result<(), CliError> {
    let req = request_from_flags(flags)?;
    let common = CommonOpts::parse(flags)?;
    let opts = rtcg_engine::batch::BatchOptions {
        threads: common.threads,
        budget_ms: common.budget_ms,
    };
    let listing = std::fs::read_to_string(manifest)
        .map_err(|e| CliError::Input(format!("cannot read manifest `{manifest}`: {e}")))?;
    let base = std::path::Path::new(manifest)
        .parent()
        .map(|p| p.to_path_buf())
        .unwrap_or_default();
    let mut paths = Vec::new();
    let mut jobs = Vec::new();
    for (lineno, line) in listing.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // manifests accept two entry forms per line: a bare spec path
        // (legacy), or a versioned JSONL record `{"v":1,"spec":"path"}`
        // whose version field is checked explicitly
        let entry = if line.starts_with('{') {
            crate::protocol::manifest_entry(line)
                .map_err(|e| CliError::Input(format!("{manifest}:{}: {e}", lineno + 1)))?
        } else {
            line.to_string()
        };
        let path = base.join(&entry);
        let path = path
            .to_str()
            .ok_or_else(|| CliError::Input(format!("non-UTF-8 path in `{manifest}`")))?
            .to_string();
        let (_, model) = load(&path)?;
        paths.push(path);
        jobs.push((model, req));
    }
    if jobs.is_empty() {
        return Err(CliError::Input(format!(
            "manifest `{manifest}` lists no specs"
        )));
    }
    println!(
        "batch: {} spec(s), {} worker thread(s), budget {}",
        jobs.len(),
        opts.threads,
        match opts.budget_ms {
            Some(ms) => format!("{ms} ms/request"),
            None => "unlimited".into(),
        }
    );
    let engine = Engine::new();
    load_cache(&engine, &common)?;
    let results = engine.analyze_batch(&jobs, &opts);
    // save before the verdict-derived exit code: an infeasible batch
    // still warmed the memo, and the next run wants that work
    save_cache(&engine, &common)?;
    let width = paths.iter().map(|p| p.len()).max().unwrap_or(0);
    let (mut feasible, mut infeasible, mut unknown, mut errors, mut degraded) = (0, 0, 0, 0, 0);
    for (path, result) in paths.iter().zip(&results) {
        let verdict = match &result.report {
            Ok(report) => match &report.verdict {
                Verdict::Feasible { strategy, .. } => {
                    feasible += 1;
                    format!("feasible ({strategy})")
                }
                Verdict::FeasibleLanes { schedule, strategy } => {
                    feasible += 1;
                    format!("feasible ({strategy}, {} lanes)", schedule.lane_count())
                }
                Verdict::Infeasible { reason } => {
                    infeasible += 1;
                    format!("infeasible — {reason}")
                }
                Verdict::Unknown { reason } => {
                    unknown += 1;
                    format!("unknown — {reason}")
                }
            },
            Err(e) => {
                errors += 1;
                format!("error — {e}")
            }
        };
        let tag = match &result.degraded {
            Some(reason) => {
                degraded += 1;
                format!("  [degraded: {reason}]")
            }
            None => String::new(),
        };
        println!("  {path:<width$}  {verdict}{tag}");
    }
    println!(
        "summary: {feasible} feasible, {infeasible} infeasible, {unknown} unknown, \
         {errors} error(s), {degraded} degraded"
    );
    if flags.iter().any(|f| f == "--cache-stats") {
        print_cache_stats(&engine);
    }
    if errors > 0 {
        Err(CliError::Input(format!(
            "{errors} of {} batch request(s) failed",
            results.len()
        )))
    } else if infeasible + unknown > 0 {
        Err(CliError::Infeasible(format!(
            "{} of {} batch request(s) not feasible",
            infeasible + unknown,
            results.len()
        )))
    } else {
        Ok(())
    }
}

/// One sweep table row. A row can have a minimum but no slack (the
/// minimum exceeds the declared deadline, e.g. from a degraded probe);
/// that renders as `n/a` rather than panicking mid-table.
pub(crate) fn print_sensitivity_row(r: &rtcg_core::sensitivity::DeadlineSensitivity) {
    println!("{}", sensitivity_row(r));
}

fn sensitivity_row(r: &rtcg_core::sensitivity::DeadlineSensitivity) -> String {
    match r.minimum_feasible {
        Some(min) => {
            let slack = match r.slack() {
                Some(s) => s.to_string(),
                None => "n/a".into(),
            };
            format!(
                "  {:<16} declared d={:<6} minimum d={:<6} slack={}",
                r.name, r.declared, min, slack
            )
        }
        None => format!("  {:<16} declared d={:<6} INFEASIBLE", r.name, r.declared),
    }
}

fn mode_name(mode: AnalysisMode) -> &'static str {
    match mode {
        AnalysisMode::Heuristic => "heuristic",
        AnalysisMode::Merged => "merged",
        AnalysisMode::Exact => "exact",
    }
}

fn print_schedule(
    model: &Model,
    schedule: &rtcg_core::StaticSchedule,
    gantt_ticks: Option<u64>,
) -> Result<(), CliError> {
    let comm = model.comm();
    println!(
        "schedule: {} actions, duration {} ticks, busy {:.1}%",
        schedule.len(),
        schedule
            .duration(comm)
            .map_err(|e| CliError::Input(e.to_string()))?,
        100.0
            * schedule
                .busy_fraction(comm)
                .map_err(|e| CliError::Input(e.to_string()))?
    );
    println!(
        "{}",
        schedule
            .display(comm)
            .map_err(|e| CliError::Input(e.to_string()))?
    );
    let report = schedule
        .feasibility(model)
        .map_err(|e| CliError::Input(e.to_string()))?;
    print!("{report}");
    if let Some(n) = gantt_ticks {
        let trace = schedule
            .expand(comm, 2)
            .map_err(|e| CliError::Input(e.to_string()))?;
        println!();
        print!(
            "{}",
            render_gantt(&trace, comm, 0, n).map_err(|e| CliError::Input(e.to_string()))?
        );
    }
    if !report.is_feasible() {
        return Err(CliError::Infeasible(
            "synthesized schedule failed verification".into(),
        ));
    }
    Ok(())
}

fn print_lane_schedule(
    model: &Model,
    schedule: &rtcg_core::feasibility::LaneSchedule,
) -> Result<(), CliError> {
    let comm = model.comm();
    println!(
        "lane schedule: {} lanes, joint period {} ticks",
        schedule.lane_count(),
        schedule
            .joint_period(comm)
            .map_err(|e| CliError::Input(e.to_string()))?
    );
    println!(
        "{}",
        schedule
            .display(comm)
            .map_err(|e| CliError::Input(e.to_string()))?
    );
    let report = schedule
        .feasibility(model)
        .map_err(|e| CliError::Input(e.to_string()))?;
    print!("{report}");
    if !report.is_feasible() {
        return Err(CliError::Infeasible(
            "synthesized lane schedule failed verification".into(),
        ));
    }
    Ok(())
}

/// `rtcg simulate --ticks N [--seed S] [--metrics] [--trace-out F]`.
pub fn simulate(path: &str, flags: &[String]) -> Result<(), CliError> {
    let rec = crate::profile::recorder_for(flags);
    let result = simulate_inner(path, flags);
    if let Some(rec) = rec {
        crate::profile::emit(rec, flags)?;
    }
    result
}

/// Synthesis-independent simulation core shared with `rtcg profile`:
/// periodic constraints invoke on their period, asynchronous ones from a
/// seeded sporadic stream.
pub(crate) fn run_simulation(
    m: &Model,
    schedule: &rtcg_core::StaticSchedule,
    ticks: u64,
    seed: u64,
) -> Result<rtcg_sim::table::TableRun, CliError> {
    let patterns: Vec<InvocationPattern> = m
        .constraints()
        .iter()
        .map(|c| {
            if c.is_periodic() {
                InvocationPattern::Periodic {
                    period: c.period,
                    offset: 0,
                }
            } else {
                InvocationPattern::SporadicRandom {
                    separation: c.period,
                    spread: c.period,
                    seed,
                }
            }
        })
        .collect();
    run_table_executor(m, schedule, &patterns, ticks).map_err(|e| CliError::Input(e.to_string()))
}

fn simulate_inner(path: &str, flags: &[String]) -> Result<(), CliError> {
    let (_, model) = load(path)?;
    let ticks = flag_value(flags, "--ticks")?
        .ok_or_else(|| CliError::Usage("simulate requires --ticks N".into()))?;
    let seed = flag_value(flags, "--seed")?.unwrap_or(0);
    let out = core_synthesize(&model).map_err(|e| CliError::Infeasible(e.to_string()))?;
    let run = run_simulation(out.model(), &out.schedule, ticks, seed)?;
    println!("simulated {ticks} ticks (seed {seed}):");
    print!("{}", rtcg_sim::report::render_rows(&run));
    if SimReport::no_misses(&run) {
        println!("all deadlines met");
        Ok(())
    } else {
        Err(CliError::Infeasible("deadline misses observed".into()))
    }
}

/// `rtcg sensitivity [--cache-stats]` — kept as an alias for
/// `rtcg analyze --sweep` (heuristic mode); probes route through the
/// engine cache.
pub fn sensitivity(path: &str, flags: &[String]) -> Result<(), CliError> {
    let (_, model) = load(path)?;
    let req = request_from_flags(flags)?;
    let engine = Engine::new();
    let rows = engine
        .deadline_sensitivities(&model, &req)
        .map_err(engine_err)?;
    println!("deadline sensitivity (synthesizer-verified minima):");
    for r in rows {
        print_sensitivity_row(&r);
    }
    let pct = engine
        .max_uniform_tightening(&model, &req)
        .map_err(engine_err)?;
    println!("maximum uniform tightening: {pct}% of declared deadlines");
    if flags.iter().any(|f| f == "--cache-stats") {
        print_cache_stats(&engine);
    }
    Ok(())
}

/// `rtcg dot`.
pub fn dot(path: &str) -> Result<(), CliError> {
    let (_, model) = load(path)?;
    print!("{}", model.comm().to_dot(path));
    Ok(())
}

/// `rtcg codegen`.
pub fn codegen(path: &str) -> Result<(), CliError> {
    let (_, model) = load(path)?;
    let (programs, _) = rtcg_synth::straightline::synthesize_programs(&model)
        .map_err(|e| CliError::Input(e.to_string()))?;
    print!(
        "{}",
        rtcg_synth::codegen::render_process_system(&model, &programs)
            .map_err(|e| CliError::Input(e.to_string()))?
    );
    let out = core_synthesize(&model).map_err(|e| CliError::Infeasible(e.to_string()))?;
    print!(
        "{}",
        rtcg_synth::codegen::render_table_scheduler(out.model().comm(), &out.schedule)
            .map_err(|e| CliError::Input(e.to_string()))?
    );
    Ok(())
}

pub(crate) fn flag_value(flags: &[String], name: &str) -> Result<Option<u64>, CliError> {
    match flags.iter().position(|f| f == name) {
        None => Ok(None),
        Some(ix) => {
            let v = flags
                .get(ix + 1)
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))?;
            v.parse::<u64>()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("{name} needs an integer, got `{v}`")))
        }
    }
}

/// Like [`flag_value`] but rejects 0 — for flags where zero is never a
/// meaningful request (worker counts, budgets).
pub(crate) fn positive_flag_value(flags: &[String], name: &str) -> Result<Option<u64>, CliError> {
    match flag_value(flags, name)? {
        Some(0) => Err(CliError::Usage(format!("{name} must be at least 1, got 0"))),
        other => Ok(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::sensitivity::DeadlineSensitivity;
    use rtcg_core::ConstraintId;

    fn row(declared: u64, minimum_feasible: Option<u64>) -> DeadlineSensitivity {
        DeadlineSensitivity {
            constraint: ConstraintId::new(0),
            name: "c".into(),
            declared,
            minimum_feasible,
        }
    }

    #[test]
    fn sweep_row_renders_slack() {
        assert!(sensitivity_row(&row(10, Some(7))).contains("slack=3"));
    }

    #[test]
    fn sweep_row_without_minimum_is_infeasible() {
        assert!(sensitivity_row(&row(10, None)).contains("INFEASIBLE"));
    }

    /// Regression: a degraded probe can report a minimum above the
    /// declared deadline; the row must render `n/a`, not panic on an
    /// underflowing subtraction.
    #[test]
    fn sweep_row_with_inverted_minimum_renders_na() {
        let r = row(5, Some(9));
        assert_eq!(r.slack(), None);
        assert!(sensitivity_row(&r).contains("slack=n/a"));
    }

    #[test]
    fn lanes_flag_reaches_the_request() {
        let flags = vec!["--lanes".to_string(), "3".to_string()];
        assert_eq!(request_from_flags(&flags).unwrap().lanes, 3);
        assert_eq!(request_from_flags(&[]).unwrap().lanes, 1);
        let zero = vec!["--lanes".to_string(), "0".to_string()];
        assert!(request_from_flags(&zero).is_err());
    }
}
