//! Subcommand implementations.

use crate::CliError;
use rtcg_core::heuristic::{synthesize as core_synthesize, SynthesisConfig};
use rtcg_core::model::Model;
use rtcg_core::sensitivity::deadline_sensitivities;
use rtcg_sim::gantt::render_gantt;
use rtcg_sim::invocation::InvocationPattern;
use rtcg_sim::table::run_table_executor;
use rtcg_synth::latency::latency_synthesize;

pub(crate) fn load(path: &str) -> Result<(String, Model), CliError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError::Input(format!("cannot read `{path}`: {e}")))?;
    let model = rtcg_lang::parse_model(&src)
        .map_err(|e| CliError::Input(format!("{path}:{}", e.render(&src))))?;
    Ok((src, model))
}

fn summary(model: &Model) -> String {
    format!(
        "{} elements, {} constraints ({} periodic, {} asynchronous), \
         deadline density {:.3}, hyperperiod {}",
        model.comm().element_count(),
        model.constraints().len(),
        model.periodic().count(),
        model.asynchronous().count(),
        model.deadline_density(),
        model.hyperperiod()
    )
}

/// `rtcg check` — parse, validate, report bounds.
pub fn check(path: &str) -> Result<(), CliError> {
    let (_, model) = load(path)?;
    println!("{path}: OK");
    println!("{}", summary(&model));
    match rtcg_core::feasibility::quick_infeasible(&model)
        .map_err(|e| CliError::Input(e.to_string()))?
    {
        Some(reason) => println!("warning: certainly infeasible — {reason}"),
        None => println!("necessary conditions pass (density bound, span bounds)"),
    }
    for (_, c) in model.constraints_enumerated() {
        let w = c
            .computation_time(model.comm())
            .map_err(|e| CliError::Input(e.to_string()))?;
        println!(
            "  {:<16} {:<12} p={:<6} d={:<6} w={}",
            c.name,
            if c.is_periodic() {
                "periodic"
            } else {
                "asynchronous"
            },
            c.period,
            c.deadline,
            w
        );
    }
    Ok(())
}

/// `rtcg synthesize [--merged|--exact] [--threads N] [--max-len L]
/// [--budget B] [--gantt N] [--metrics] [--trace-out F]`.
pub fn synthesize(path: &str, flags: &[String]) -> Result<(), CliError> {
    let rec = crate::profile::recorder_for(flags);
    let result = synthesize_inner(path, flags);
    if let Some(rec) = rec {
        // emit even when synthesis failed: the trace shows *where* the
        // pipeline spent its time before giving up
        crate::profile::emit(rec, flags)?;
    }
    result
}

fn synthesize_inner(path: &str, flags: &[String]) -> Result<(), CliError> {
    let (_, model) = load(path)?;
    let gantt_ticks = flag_value(flags, "--gantt")?;
    if flags.iter().any(|f| f == "--merged") {
        let out = latency_synthesize(&model).map_err(|e| CliError::Infeasible(e.to_string()))?;
        println!(
            "merged latency scheduling ({}; {} group(s) merged):",
            out.strategy, out.groups_merged
        );
        print_schedule(&out.analysis_model, &out.schedule, gantt_ticks)
    } else if flags.iter().any(|f| f == "--exact") {
        let threads = flag_value(flags, "--threads")?.unwrap_or(1).max(1) as usize;
        let mut cfg = rtcg_core::feasibility::SearchConfig::default();
        if let Some(l) = flag_value(flags, "--max-len")? {
            cfg.max_len = l as usize;
        }
        if let Some(b) = flag_value(flags, "--budget")? {
            cfg.node_budget = b;
        }
        let out = if threads > 1 {
            rtcg_core::feasibility::find_feasible_parallel(&model, cfg, threads)
        } else {
            rtcg_core::feasibility::find_feasible(&model, cfg)
        }
        .map_err(|e| CliError::Input(e.to_string()))?;
        println!(
            "exact search ({} thread(s), max len {}, budget {}): {} nodes, {} candidates{}",
            threads,
            cfg.max_len,
            cfg.node_budget,
            out.nodes_visited,
            out.candidates_checked,
            if out.exhausted_bound {
                ""
            } else {
                " — budget exhausted"
            }
        );
        match out.schedule {
            Some(s) => print_schedule(&model, &s, gantt_ticks),
            None if out.exhausted_bound => Err(CliError::Infeasible(format!(
                "no feasible schedule of length <= {}",
                cfg.max_len
            ))),
            None => Err(CliError::Infeasible(
                "search budget exhausted before a schedule was found".into(),
            )),
        }
    } else {
        let out = core_synthesize(&model).map_err(|e| CliError::Infeasible(e.to_string()))?;
        println!("latency scheduling ({}):", out.strategy);
        print_schedule(out.model(), &out.schedule, gantt_ticks)
    }
}

fn print_schedule(
    model: &Model,
    schedule: &rtcg_core::StaticSchedule,
    gantt_ticks: Option<u64>,
) -> Result<(), CliError> {
    let comm = model.comm();
    println!(
        "schedule: {} actions, duration {} ticks, busy {:.1}%",
        schedule.len(),
        schedule
            .duration(comm)
            .map_err(|e| CliError::Input(e.to_string()))?,
        100.0
            * schedule
                .busy_fraction(comm)
                .map_err(|e| CliError::Input(e.to_string()))?
    );
    println!("{}", schedule.display(comm));
    let report = schedule
        .feasibility(model)
        .map_err(|e| CliError::Input(e.to_string()))?;
    print!("{report}");
    if let Some(n) = gantt_ticks {
        let trace = schedule
            .expand(comm, 2)
            .map_err(|e| CliError::Input(e.to_string()))?;
        println!();
        print!("{}", render_gantt(&trace, comm, 0, n));
    }
    if !report.is_feasible() {
        return Err(CliError::Infeasible(
            "synthesized schedule failed verification".into(),
        ));
    }
    Ok(())
}

/// `rtcg simulate --ticks N [--seed S] [--metrics] [--trace-out F]`.
pub fn simulate(path: &str, flags: &[String]) -> Result<(), CliError> {
    let rec = crate::profile::recorder_for(flags);
    let result = simulate_inner(path, flags);
    if let Some(rec) = rec {
        crate::profile::emit(rec, flags)?;
    }
    result
}

/// Synthesis-independent simulation core shared with `rtcg profile`:
/// periodic constraints invoke on their period, asynchronous ones from a
/// seeded sporadic stream.
pub(crate) fn run_simulation(
    m: &Model,
    schedule: &rtcg_core::StaticSchedule,
    ticks: u64,
    seed: u64,
) -> Result<rtcg_sim::table::TableRun, CliError> {
    let patterns: Vec<InvocationPattern> = m
        .constraints()
        .iter()
        .map(|c| {
            if c.is_periodic() {
                InvocationPattern::Periodic {
                    period: c.period,
                    offset: 0,
                }
            } else {
                InvocationPattern::SporadicRandom {
                    separation: c.period,
                    spread: c.period,
                    seed,
                }
            }
        })
        .collect();
    run_table_executor(m, schedule, &patterns, ticks).map_err(|e| CliError::Input(e.to_string()))
}

fn simulate_inner(path: &str, flags: &[String]) -> Result<(), CliError> {
    let (_, model) = load(path)?;
    let ticks = flag_value(flags, "--ticks")?
        .ok_or_else(|| CliError::Usage("simulate requires --ticks N".into()))?;
    let seed = flag_value(flags, "--seed")?.unwrap_or(0);
    let out = core_synthesize(&model).map_err(|e| CliError::Infeasible(e.to_string()))?;
    let run = run_simulation(out.model(), &out.schedule, ticks, seed)?;
    println!("simulated {ticks} ticks (seed {seed}):");
    for o in &run.outcomes {
        println!(
            "  {:<16} invocations={:<6} met={:<6} missed={:<4} worst response={}",
            o.name,
            o.checked,
            o.met,
            o.missed,
            o.worst_response.map_or("-".to_string(), |r| r.to_string())
        );
    }
    if run.all_met() {
        println!("all deadlines met");
        Ok(())
    } else {
        Err(CliError::Infeasible("deadline misses observed".into()))
    }
}

/// `rtcg sensitivity`.
pub fn sensitivity(path: &str) -> Result<(), CliError> {
    let (_, model) = load(path)?;
    let config = SynthesisConfig::default();
    let rows =
        deadline_sensitivities(&model, config).map_err(|e| CliError::Input(e.to_string()))?;
    println!("deadline sensitivity (synthesizer-verified minima):");
    for r in rows {
        match r.minimum_feasible {
            Some(min) => println!(
                "  {:<16} declared d={:<6} minimum d={:<6} slack={}",
                r.name,
                r.declared,
                min,
                r.slack().expect("feasible")
            ),
            None => println!("  {:<16} declared d={:<6} INFEASIBLE", r.name, r.declared),
        }
    }
    let pct = rtcg_core::sensitivity::max_uniform_tightening(&model, config)
        .map_err(|e| CliError::Input(e.to_string()))?;
    println!("maximum uniform tightening: {pct}% of declared deadlines");
    Ok(())
}

/// `rtcg dot`.
pub fn dot(path: &str) -> Result<(), CliError> {
    let (_, model) = load(path)?;
    print!("{}", model.comm().to_dot(path));
    Ok(())
}

/// `rtcg codegen`.
pub fn codegen(path: &str) -> Result<(), CliError> {
    let (_, model) = load(path)?;
    let (programs, _) = rtcg_synth::straightline::synthesize_programs(&model)
        .map_err(|e| CliError::Input(e.to_string()))?;
    print!(
        "{}",
        rtcg_synth::codegen::render_process_system(&model, &programs)
    );
    let out = core_synthesize(&model).map_err(|e| CliError::Infeasible(e.to_string()))?;
    print!(
        "{}",
        rtcg_synth::codegen::render_table_scheduler(out.model().comm(), &out.schedule)
    );
    Ok(())
}

pub(crate) fn flag_value(flags: &[String], name: &str) -> Result<Option<u64>, CliError> {
    match flags.iter().position(|f| f == name) {
        None => Ok(None),
        Some(ix) => {
            let v = flags
                .get(ix + 1)
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))?;
            v.parse::<u64>()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("{name} needs an integer, got `{v}`")))
        }
    }
}
