//! `rtcg corpus` — mass-generate deterministic spec corpora and run
//! them through the batch analyzer.
//!
//! `generate` renders [`rtcg_bench::generate_corpus`]'s seeded model
//! families (chain / mok / threepart / singleop / random) to one
//! `.rtcg` file each under a target directory, plus a `manifest.txt`
//! of versioned `{"v":1,"spec":"..."}` entries — the same format
//! `rtcg analyze --batch` consumes. `run` is that consumption: it
//! resolves the directory back to its manifest and drives the whole
//! corpus through one shared engine, so the cold-vs-warm fleet flow is
//! two invocations:
//!
//! ```text
//! rtcg corpus generate fleet --count 1000 --seed 5
//! rtcg corpus run fleet --cache-file fleet.snap   # cold: builds the memo
//! rtcg corpus run fleet --cache-file fleet.snap   # warm: replays from it
//! ```

use crate::commands::{flag_value, positive_flag_value};
use crate::CliError;

/// The manifest file `generate` writes and `run` resolves inside a
/// corpus directory.
const MANIFEST: &str = "manifest.txt";

/// `rtcg corpus generate <dir> [--count N] [--seed S]` — write `N`
/// seeded specs and their batch manifest under `<dir>`.
pub fn generate(dir: &str, flags: &[String]) -> Result<(), CliError> {
    let count = positive_flag_value(flags, "--count")?.unwrap_or(100) as usize;
    let seed = flag_value(flags, "--seed")?.unwrap_or(0);
    let base = std::path::Path::new(dir);
    if base.exists() && !base.is_dir() {
        return Err(CliError::Usage(format!(
            "corpus target `{dir}` exists and is not a directory"
        )));
    }
    std::fs::create_dir_all(base)
        .map_err(|e| CliError::Input(format!("cannot create `{dir}`: {e}")))?;
    let specs = rtcg_bench::generate_corpus(count, seed);
    let mut manifest = format!(
        "# rtcg corpus: {count} spec(s), seed {seed}\n\
         # run with: rtcg corpus run {dir} [--cache-file FILE]\n"
    );
    for spec in &specs {
        let file = format!("{}.rtcg", spec.name);
        std::fs::write(
            base.join(&file),
            rtcg_lang::pretty::render_model(&spec.model),
        )
        .map_err(|e| CliError::Input(format!("cannot write `{dir}/{file}`: {e}")))?;
        manifest.push_str(&format!(
            "{{\"v\":{},\"spec\":\"{file}\"}}\n",
            crate::protocol::WIRE_VERSION
        ));
    }
    std::fs::write(base.join(MANIFEST), manifest)
        .map_err(|e| CliError::Input(format!("cannot write `{dir}/{MANIFEST}`: {e}")))?;
    println!("corpus: wrote {count} spec(s) (seed {seed}) and {MANIFEST} under `{dir}`");
    Ok(())
}

/// `rtcg corpus run <dir|manifest> [batch flags]` — analyze a generated
/// corpus through `analyze --batch`, accepting either the corpus
/// directory (resolved to its `manifest.txt`) or an explicit manifest
/// path. All batch flags apply, most usefully `--cache-file` for the
/// cold-save / warm-load fleet flow.
pub fn run(target: &str, flags: &[String]) -> Result<(), CliError> {
    let path = std::path::Path::new(target);
    let manifest = if path.is_dir() {
        let m = path.join(MANIFEST);
        if !m.is_file() {
            return Err(CliError::Input(format!(
                "`{target}` has no {MANIFEST} — generate the corpus first \
                 (rtcg corpus generate {target})"
            )));
        }
        m.to_str()
            .ok_or_else(|| CliError::Input(format!("non-UTF-8 path under `{target}`")))?
            .to_string()
    } else {
        target.to_string()
    };
    crate::commands::analyze_batch(&manifest, flags)
}
