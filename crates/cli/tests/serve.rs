//! Black-box tests of `rtcg serve` (the JSONL daemon) and the versioned
//! wire format shared with `--batch` manifests.

use serde_json::Value;
use std::io::Write;
use std::process::{Command, Stdio};

const SPEC: &str = "element fx wcet 1;\nelement fs wcet 2;\nchannel fx -> fs;\n\
    asynchronous chain period 7 deadline 7 { op x: fx; op s: fs; x -> s; }\n\
    periodic beat period 6 deadline 5 { op s: fs; }\n";

/// Runs `rtcg serve`, feeds `lines` on stdin, returns one parsed JSON
/// object per response line (asserting the process exits cleanly).
fn serve(lines: &[String]) -> Vec<Value> {
    serve_with(&[], lines)
}

/// [`serve`] with extra command-line flags (e.g. `--cache-file`).
fn serve_with(extra_args: &[&str], lines: &[String]) -> Vec<Value> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rtcg"))
        .arg("serve")
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary runs");
    {
        let stdin = child.stdin.as_mut().expect("stdin piped");
        for line in lines {
            writeln!(stdin, "{line}").expect("write request");
        }
    }
    let out = child.wait_with_output().expect("daemon exits");
    assert!(out.status.success(), "serve exited abnormally: {out:?}");
    String::from_utf8(out.stdout)
        .expect("utf8 output")
        .lines()
        .map(|l| serde_json::from_str(l).expect("each response line is JSON"))
        .collect()
}

fn obj(pairs: Vec<(&str, Value)>) -> String {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).to_string()
}

fn req(op: &str, extra: Vec<(&str, Value)>) -> String {
    let mut pairs = vec![
        ("v", Value::UInt(1)),
        ("op", Value::Str(op.into())),
        ("id", Value::Str("s1".into())),
    ];
    pairs.extend(extra);
    obj(pairs)
}

fn get<'v>(v: &'v Value, key: &str) -> &'v Value {
    v.get(key)
        .unwrap_or_else(|| panic!("response missing `{key}`: {v}"))
}

#[test]
fn serve_session_keeps_memo_hot_across_deltas() {
    let analyze = req(
        "analyze",
        vec![
            ("mode", Value::Str("exact".into())),
            ("max_len", Value::UInt(6)),
        ],
    );
    let responses = serve(&[
        req("open", vec![("spec", Value::Str(SPEC.into()))]),
        analyze.clone(),
        obj(vec![
            ("v", Value::UInt(1)),
            ("op", Value::Str("delta".into())),
            ("id", Value::Str("s1".into())),
            (
                "delta",
                Value::Obj(vec![
                    ("kind".into(), Value::Str("set_deadline".into())),
                    ("constraint".into(), Value::UInt(0)),
                    ("deadline".into(), Value::UInt(6)),
                ]),
            ),
        ]),
        analyze,
        req("stats", vec![]),
        req("close", vec![]),
    ]);
    assert_eq!(responses.len(), 6, "one response per request");
    for r in &responses {
        assert_eq!(get(r, "v").as_u64(), Some(1));
        assert_eq!(get(r, "ok").as_bool(), Some(true), "{r}");
    }
    assert_eq!(get(&responses[0], "constraints").as_u64(), Some(2));
    assert_eq!(get(&responses[1], "verdict").as_str(), Some("feasible"));
    // the deadline retune keeps every candidate-memo slice...
    let delta = &responses[2];
    assert_eq!(get(delta, "kind").as_str(), Some("set_deadline"));
    assert_eq!(get(delta, "slices_evicted").as_u64(), Some(0));
    assert!(get(delta, "slices_kept").as_u64().unwrap() > 0);
    assert_eq!(get(delta, "full_invalidation").as_bool(), Some(false));
    // ...so the re-analysis is served from the hot memo
    let warm = &responses[3];
    assert_eq!(get(warm, "verdict").as_str(), Some("feasible"));
    assert!(
        get(warm, "leaf_evals_saved").as_u64().unwrap() > 0,
        "retune probe must reuse memoized leaf evals: {warm}"
    );
    let stats = &responses[4];
    let session = get(get(stats, "sessions"), "s1");
    assert_eq!(get(session, "deltas_applied").as_u64(), Some(1));
    assert_eq!(get(session, "analyses").as_u64(), Some(2));
    assert!(get(session, "memo_entries").as_u64().unwrap() > 0);
    assert_eq!(get(&responses[5], "op").as_str(), Some("close"));
}

#[test]
fn serve_rejects_unsupported_versions_but_keeps_serving() {
    let responses = serve(&[
        r#"{"v":2,"op":"stats"}"#.to_string(),
        r#"{"op":"stats"}"#.to_string(),
        r#"this is not json"#.to_string(),
        r#"{"v":1,"op":"frobnicate"}"#.to_string(),
        r#"{"v":1,"op":"analyze","id":"ghost"}"#.to_string(),
        r#"{"v":1,"op":"stats"}"#.to_string(),
    ]);
    assert_eq!(responses.len(), 6);
    let errors: Vec<&str> = responses[..5]
        .iter()
        .map(|r| {
            assert_eq!(get(r, "ok").as_bool(), Some(false), "{r}");
            get(r, "error").as_str().unwrap()
        })
        .collect();
    assert!(
        errors[0].contains("unsupported wire version 2"),
        "{}",
        errors[0]
    );
    assert!(errors[1].contains("missing wire version"), "{}", errors[1]);
    assert!(errors[2].contains("malformed JSON"), "{}", errors[2]);
    assert!(errors[3].contains("unknown op"), "{}", errors[3]);
    assert!(errors[4].contains("no open session"), "{}", errors[4]);
    // the daemon survived all five bad lines
    assert_eq!(get(&responses[5], "ok").as_bool(), Some(true));
}

#[test]
fn serve_undo_restores_the_previous_verdict() {
    let analyze = req("analyze", vec![("mode", Value::Str("exact".into()))]);
    let tighten = obj(vec![
        ("v", Value::UInt(1)),
        ("op", Value::Str("delta".into())),
        ("id", Value::Str("s1".into())),
        (
            "delta",
            Value::Obj(vec![
                ("kind".into(), Value::Str("set_deadline".into())),
                ("constraint".into(), Value::UInt(0)),
                ("deadline".into(), Value::UInt(3)),
            ]),
        ),
    ]);
    let responses = serve(&[
        req("open", vec![("spec", Value::Str(SPEC.into()))]),
        analyze.clone(),
        tighten,
        analyze.clone(),
        req("undo", vec![]),
        analyze,
    ]);
    assert_eq!(get(&responses[1], "verdict").as_str(), Some("feasible"));
    // deadline 3 < chain computation cannot hold at arbitrary offsets
    assert_eq!(get(&responses[3], "verdict").as_str(), Some("infeasible"));
    assert_eq!(get(&responses[4], "undone").as_str(), Some("set_deadline"));
    assert_eq!(get(&responses[4], "journal_len").as_u64(), Some(0));
    assert_eq!(get(&responses[5], "verdict").as_str(), Some("feasible"));
}

#[test]
fn serve_structural_deltas_report_slice_granularity() {
    let analyze = req(
        "analyze",
        vec![
            ("mode", Value::Str("exact".into())),
            ("max_len", Value::UInt(6)),
        ],
    );
    let responses = serve(&[
        req("open", vec![("spec", Value::Str(SPEC.into()))]),
        analyze.clone(),
        // removing a constraint drops exactly its memo column
        obj(vec![
            ("v", Value::UInt(1)),
            ("op", Value::Str("delta".into())),
            ("id", Value::Str("s1".into())),
            (
                "delta",
                Value::Obj(vec![
                    ("kind".into(), Value::Str("remove_constraint".into())),
                    ("at".into(), Value::UInt(1)),
                ]),
            ),
        ]),
        // a weight edit clears everything
        obj(vec![
            ("v", Value::UInt(1)),
            ("op", Value::Str("delta".into())),
            ("id", Value::Str("s1".into())),
            (
                "delta",
                Value::Obj(vec![
                    ("kind".into(), Value::Str("set_wcet".into())),
                    ("element".into(), Value::Str("fx".into())),
                    ("wcet".into(), Value::UInt(2)),
                ]),
            ),
        ]),
        analyze,
    ]);
    let drop_col = &responses[2];
    assert_eq!(get(drop_col, "ok").as_bool(), Some(true), "{drop_col}");
    assert!(get(drop_col, "slices_evicted").as_u64().unwrap() > 0);
    assert!(get(drop_col, "slices_kept").as_u64().unwrap() > 0);
    assert_eq!(get(drop_col, "full_invalidation").as_bool(), Some(false));
    let reweigh = &responses[3];
    assert_eq!(get(reweigh, "full_invalidation").as_bool(), Some(true));
    assert_eq!(get(reweigh, "slices_kept").as_u64(), Some(0));
    assert_eq!(get(&responses[4], "ok").as_bool(), Some(true));
}

#[test]
fn serve_snapshot_restore_round_trip() {
    let dir = std::env::temp_dir().join(format!("rtcg-serve-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("memo.snap");
    let snap_str = snap.to_str().unwrap();
    let analyze = req(
        "analyze",
        vec![
            ("mode", Value::Str("exact".into())),
            ("max_len", Value::UInt(6)),
        ],
    );

    // daemon 1: warm a session, persist its memo, check the counters
    let responses = serve(&[
        req("open", vec![("spec", Value::Str(SPEC.into()))]),
        analyze.clone(),
        obj(vec![
            ("v", Value::UInt(1)),
            ("op", Value::Str("snapshot".into())),
            ("path", Value::Str(snap_str.into())),
        ]),
        r#"{"v":1,"op":"stats"}"#.to_string(),
    ]);
    let saved = &responses[2];
    assert_eq!(get(saved, "ok").as_bool(), Some(true), "{saved}");
    assert!(get(saved, "sections").as_u64().unwrap() > 0);
    assert!(get(saved, "bytes").as_u64().unwrap() > 0);
    let snap_stats = get(get(get(&responses[3], "engine"), "snapshot"), "saves");
    assert_eq!(snap_stats.as_u64(), Some(1), "{}", responses[3]);

    // daemon 2: a cold process restores the file and replays warm
    let responses = serve(&[
        req("open", vec![("spec", Value::Str(SPEC.into()))]),
        obj(vec![
            ("v", Value::UInt(1)),
            ("op", Value::Str("restore".into())),
            ("path", Value::Str(snap_str.into())),
        ]),
        analyze,
    ]);
    let restored = &responses[1];
    assert_eq!(get(restored, "ok").as_bool(), Some(true), "{restored}");
    assert!(get(restored, "sections_loaded").as_u64().unwrap() > 0);
    assert_eq!(get(restored, "sections_skipped").as_u64(), Some(0));
    let warm = &responses[2];
    assert_eq!(get(warm, "verdict").as_str(), Some("feasible"));
    assert_eq!(get(warm, "result_memo_hit").as_bool(), Some(true), "{warm}");
    assert_eq!(get(warm, "leaf_evals_computed").as_u64(), Some(0), "{warm}");

    // restoring a missing file reports, the daemon keeps serving
    let responses = serve(&[
        obj(vec![
            ("v", Value::UInt(1)),
            ("op", Value::Str("restore".into())),
            ("path", Value::Str(format!("{snap_str}.missing"))),
        ]),
        obj(vec![
            ("v", Value::UInt(1)),
            ("op", Value::Str("snapshot".into())),
        ]),
        r#"{"v":1,"op":"stats"}"#.to_string(),
    ]);
    assert_eq!(get(&responses[0], "ok").as_bool(), Some(false));
    assert!(
        get(&responses[0], "error")
            .as_str()
            .unwrap()
            .contains("cannot load snapshot"),
        "{}",
        responses[0]
    );
    // snapshot without a path and without --cache-file is an error too
    assert!(
        get(&responses[1], "error")
            .as_str()
            .unwrap()
            .contains("--cache-file"),
        "{}",
        responses[1]
    );
    assert_eq!(get(&responses[2], "ok").as_bool(), Some(true));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_cache_file_checkpoints_across_restarts() {
    let dir = std::env::temp_dir().join(format!("rtcg-serve-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("daemon.snap");
    let cache_str = cache.to_str().unwrap().to_string();
    let analyze = req(
        "analyze",
        vec![
            ("mode", Value::Str("exact".into())),
            ("max_len", Value::UInt(6)),
        ],
    );

    // first daemon: cold start, EOF shutdown checkpoints automatically
    let responses = serve_with(
        &["--cache-file", &cache_str],
        &[
            req("open", vec![("spec", Value::Str(SPEC.into()))]),
            analyze.clone(),
        ],
    );
    assert_eq!(get(&responses[1], "result_memo_hit").as_bool(), Some(false));
    assert!(cache.is_file(), "EOF shutdown must write the checkpoint");

    // second daemon: warms from the checkpoint at startup
    let responses = serve_with(
        &["--cache-file", &cache_str],
        &[
            req("open", vec![("spec", Value::Str(SPEC.into()))]),
            analyze,
        ],
    );
    let warm = &responses[1];
    assert_eq!(get(warm, "result_memo_hit").as_bool(), Some(true), "{warm}");
    assert_eq!(get(warm, "leaf_evals_computed").as_u64(), Some(0), "{warm}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_validates_common_flags_like_other_subcommands() {
    for args in [
        &["serve", "--threads", "0"][..],
        &["serve", "--budget-ms", "0"][..],
        &["analyze", "x.rtcg", "--threads", "0"][..],
        &["synthesize", "x.rtcg", "--budget-ms", "0"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_rtcg"))
            .args(args)
            .output()
            .expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{args:?} should be a usage error"
        );
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("must be at least 1"), "{args:?}: {stderr}");
    }
}

#[test]
fn batch_manifests_accept_versioned_jsonl_entries() {
    let dir = std::env::temp_dir().join(format!("rtcg-serve-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("good.rtcg");
    std::fs::write(&spec, SPEC).unwrap();

    // mixed manifest: legacy bare path + versioned JSONL record
    let ok_manifest = dir.join("ok.txt");
    std::fs::write(
        &ok_manifest,
        "good.rtcg\n{\"v\":1,\"spec\":\"good.rtcg\"}\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_rtcg"))
        .args(["analyze", "--batch", ok_manifest.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("batch: 2 spec(s)"), "{stdout}");

    // a future-versioned entry names its version instead of mis-parsing
    let bad_manifest = dir.join("bad.txt");
    std::fs::write(&bad_manifest, "{\"v\":9,\"spec\":\"good.rtcg\"}\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_rtcg"))
        .args(["analyze", "--batch", bad_manifest.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unsupported wire version 9"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Two wcet-2 elements each demanding latency <= 3: infeasible on one
/// processor, feasible on two lanes.
const TWO_LANE_SPEC: &str = "element a wcet 2;\nelement b wcet 2;\n\
    asynchronous ca period 3 deadline 3 { op o: a; }\n\
    asynchronous cb period 3 deadline 3 { op o: b; }\n";

#[test]
fn serve_analyze_accepts_lanes() {
    let responses = serve(&[
        req("open", vec![("spec", Value::Str(TWO_LANE_SPEC.into()))]),
        req(
            "analyze",
            vec![
                ("mode", Value::Str("exact".into())),
                ("max_len", Value::UInt(3)),
            ],
        ),
        req(
            "analyze",
            vec![
                ("mode", Value::Str("exact".into())),
                ("max_len", Value::UInt(3)),
                ("lanes", Value::UInt(2)),
            ],
        ),
        req("analyze", vec![("lanes", Value::UInt(0))]),
        req("close", vec![]),
    ]);
    assert_eq!(responses.len(), 5);
    assert_eq!(get(&responses[1], "verdict").as_str(), Some("infeasible"));
    let lanes = &responses[2];
    assert_eq!(get(lanes, "verdict").as_str(), Some("feasible"), "{lanes}");
    assert_eq!(get(lanes, "strategy").as_str(), Some("lane-exact"));
    assert_eq!(get(lanes, "lanes").as_u64(), Some(2));
    let rows = get(lanes, "lane_schedule").as_arr().expect("lane rows");
    assert_eq!(rows.len(), 2, "{lanes}");
    assert_eq!(get(&responses[3], "ok").as_bool(), Some(false));
    assert!(
        get(&responses[3], "error")
            .as_str()
            .unwrap()
            .contains("lanes"),
        "{}",
        responses[3]
    );
    assert_eq!(get(&responses[4], "ok").as_bool(), Some(true));
}
