//! Black-box tests of the `rtcg` binary.

use std::process::Command;

const GOOD_SPEC: &str = r#"
    element fX wcet 1;
    element fS wcet 2;
    element fK wcet 1;
    channel fX -> fS; channel fS -> fK; channel fK -> fS;
    periodic xchain period 20 deadline 20 { op x: fX; op s: fS; op k: fK; x -> s -> k; }
    asynchronous burst period 30 deadline 12 { op s: fS; }
"#;

const INFEASIBLE_SPEC: &str = r#"
    element a wcet 2;
    element b wcet 2;
    asynchronous ca period 3 deadline 3 { op o: a; }
    asynchronous cb period 3 deadline 3 { op o: b; }
"#;

fn write_spec(content: &str) -> tempfile::NamedSpec {
    tempfile::NamedSpec::new(content)
}

/// Minimal stand-in for tempfile (not a dependency): unique files under
/// the target tmp dir, removed on drop.
mod tempfile {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct NamedSpec {
        pub path: PathBuf,
    }

    impl NamedSpec {
        pub fn new(content: &str) -> Self {
            let dir = std::env::temp_dir().join("rtcg-cli-tests");
            std::fs::create_dir_all(&dir).expect("tmp dir");
            let n = COUNTER.fetch_add(1, Ordering::SeqCst);
            let path = dir.join(format!("spec-{}-{n}.rtcg", std::process::id()));
            std::fs::write(&path, content).expect("write spec");
            NamedSpec { path }
        }

        pub fn path_str(&self) -> &str {
            self.path.to_str().expect("utf8 path")
        }
    }

    impl Drop for NamedSpec {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

fn rtcg(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rtcg"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn check_accepts_good_spec() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["check", spec.path_str()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("OK"));
    assert!(stdout.contains("xchain"));
    assert!(stdout.contains("necessary conditions pass"));
}

#[test]
fn check_warns_on_infeasible_spec() {
    let spec = write_spec(INFEASIBLE_SPEC);
    let out = rtcg(&["check", spec.path_str()]);
    assert!(out.status.success(), "check reports, it does not fail");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("certainly infeasible"));
}

#[test]
fn check_rejects_bad_syntax_with_position() {
    let spec = write_spec("element broken wcet;");
    let out = rtcg(&["check", spec.path_str()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("expected"), "{stderr}");
    assert!(stderr.contains("1:"), "position missing: {stderr}");
}

#[test]
fn check_rejects_missing_file() {
    let out = rtcg(&["check", "/nonexistent/nope.rtcg"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn synthesize_produces_verified_schedule() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["synthesize", spec.path_str()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("schedule:"));
    assert!(stdout.contains("OK"));
    assert!(!stdout.contains("VIOLATED"));
}

#[test]
fn synthesize_gantt_renders_rows() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["synthesize", spec.path_str(), "--gantt", "30"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("tick"), "{stdout}");
    assert!(stdout.contains('#'));
}

#[test]
fn synthesize_infeasible_exits_3() {
    let spec = write_spec(INFEASIBLE_SPEC);
    let out = rtcg(&["synthesize", spec.path_str()]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn simulate_meets_deadlines() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&[
        "simulate",
        spec.path_str(),
        "--ticks",
        "2000",
        "--seed",
        "7",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("all deadlines met"));
    assert!(stdout.contains("xchain"));
}

#[test]
fn simulate_requires_ticks() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["simulate", spec.path_str()]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn sensitivity_reports_minima() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["sensitivity", spec.path_str()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("minimum d="));
    assert!(stdout.contains("uniform tightening"));
}

#[test]
fn dot_emits_graphviz() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["dot", spec.path_str()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("fS (2)"));
}

#[test]
fn codegen_emits_processes_and_table() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["codegen", spec.path_str()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("process xchain"));
    assert!(stdout.contains("table-driven cyclic executor"));
}

#[test]
fn unknown_command_shows_usage() {
    let out = rtcg(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage"));
}

#[test]
fn help_prints_usage() {
    let out = rtcg(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("synthesize"));
}

#[test]
fn merged_synthesis_flag() {
    // two same-period chains sharing fS: --merged must report a merge
    let spec = write_spec(
        r#"
        element fX wcet 1; element fY wcet 1; element fS wcet 2;
        channel fX -> fS; channel fY -> fS;
        periodic cx period 24 deadline 24 { op x: fX; op s: fS; x -> s; }
        periodic cy period 24 deadline 24 { op y: fY; op s: fS; y -> s; }
        "#,
    );
    let out = rtcg(&["synthesize", spec.path_str(), "--merged"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1 group(s) merged"), "{stdout}");
}

#[test]
fn synthesize_exact_finds_schedule() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["synthesize", spec.path_str(), "--exact"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("exact search (1 thread"), "{stdout}");
    assert!(stdout.contains("schedule:"));
    assert!(stdout.contains("OK"));
    assert!(!stdout.contains("VIOLATED"));
}

#[test]
fn synthesize_exact_parallel_matches_sequential() {
    let spec = write_spec(GOOD_SPEC);
    let seq = rtcg(&["synthesize", spec.path_str(), "--exact"]);
    let par = rtcg(&["synthesize", spec.path_str(), "--exact", "--threads", "2"]);
    assert!(seq.status.success(), "{seq:?}");
    assert!(par.status.success(), "{par:?}");
    let schedule_line = |out: &std::process::Output| {
        String::from_utf8(out.stdout.clone())
            .unwrap()
            .lines()
            .find(|l| l.starts_with('['))
            .map(str::to_string)
            .expect("schedule line")
    };
    assert_eq!(schedule_line(&seq), schedule_line(&par));
}

#[test]
fn synthesize_exact_budget_exhaustion_exits_3() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&[
        "synthesize",
        spec.path_str(),
        "--exact",
        "--budget",
        "1",
        "--max-len",
        "3",
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("budget"), "{stderr}");
}

#[test]
fn profile_prints_metrics_tables() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["profile", spec.path_str()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("counters:"), "{stdout}");
    assert!(stdout.contains("spans:"), "{stdout}");
    // acceptance: nonzero search-node and sim-tick counters
    let counter = |name: &str| -> u64 {
        stdout
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("missing counter {name}: {stdout}"))
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(counter("search.nodes_expanded") > 0);
    assert!(counter("sim.ticks") > 0);
}

#[test]
fn profile_trace_out_writes_valid_json() {
    let spec = write_spec(GOOD_SPEC);
    let trace = spec.path.with_extension("trace.json");
    let out = rtcg(&[
        "profile",
        spec.path_str(),
        "--ticks",
        "200",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let body = std::fs::read_to_string(&trace).expect("trace file exists");
    std::fs::remove_file(&trace).ok();
    let v: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
}

#[test]
fn simulate_trace_out_round_trips() {
    let spec = write_spec(GOOD_SPEC);
    let trace = spec.path.with_extension("sim-trace.json");
    let out = rtcg(&[
        "simulate",
        spec.path_str(),
        "--ticks",
        "1000",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let body = std::fs::read_to_string(&trace).expect("trace file exists");
    std::fs::remove_file(&trace).ok();
    // serde_json round-trip: parse, re-serialize, parse again
    let v: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
    let again: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
    assert_eq!(v, again);
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(events.iter().any(|e| e["ph"] == "X"), "has span events");
}

#[test]
fn simulate_metrics_prints_summary() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["simulate", spec.path_str(), "--ticks", "500", "--metrics"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("counters:"), "{stdout}");
    assert!(stdout.contains("sim.ticks"), "{stdout}");
}

#[test]
fn trace_out_requires_value() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["simulate", spec.path_str(), "--ticks", "100", "--trace-out"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn profile_renders_percentiles_and_shard_columns() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["profile", spec.path_str(), "--ticks", "200"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    // histogram table: percentile columns in order
    let hist_header = stdout
        .lines()
        .find(|l| l.starts_with("histogram") && l.contains("count"))
        .unwrap_or_else(|| panic!("histogram table missing: {stdout}"));
    for col in ["count", "mean", "p50", "p90", "p99", "max"] {
        assert!(hist_header.contains(col), "missing column {col}: {stdout}");
    }
    // shard table: one row per shard plus the totals row
    assert!(stdout.contains("engine result-memo shards:"), "{stdout}");
    let shard_header = stdout
        .lines()
        .find(|l| l.starts_with("shard"))
        .expect("shard table header");
    for col in ["hits", "misses", "inserts", "poison", "occupancy"] {
        assert!(shard_header.contains(col), "missing column {col}: {stdout}");
    }
    for row in ["00", "07", "15", "all"] {
        assert!(
            stdout.lines().any(|l| l.starts_with(row)),
            "missing shard row {row}: {stdout}"
        );
    }
}

#[test]
fn profile_format_prom_emits_valid_exposition() {
    // four elements so the exact search must reach length-4 candidates:
    // deep enough that leaves go through the batched last row (the
    // unit prefix covers lengths up to 3 by itself).
    let spec = write_spec(
        r#"
        element a wcet 1;
        element b wcet 1;
        element c wcet 1;
        element d wcet 1;
        asynchronous ca period 8 deadline 8 { op o: a; }
        asynchronous cb period 8 deadline 8 { op o: b; }
        asynchronous cc period 8 deadline 8 { op o: c; }
        asynchronous cd period 8 deadline 8 { op o: d; }
    "#,
    );
    let out = rtcg(&["profile", spec.path_str(), "--format", "prom"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let start = stdout
        .find("# TYPE")
        .unwrap_or_else(|| panic!("no exposition in output: {stdout}"));
    let samples = rtcg_obs::validate_prometheus_text(&stdout[start..])
        .unwrap_or_else(|e| panic!("invalid exposition: {e:?}\n{stdout}"));
    assert!(samples > 0);
    // the shard family folds into labeled metrics
    assert!(
        stdout.contains("rtcg_engine_shard_occupancy{shard=\"00\"}"),
        "{stdout}"
    );
    assert!(
        stdout.contains("rtcg_search_leaf_eval_us{quantile=\"0.9\"}"),
        "{stdout}"
    );
    // leaf checks run batched: the last-row width gauge rides along
    assert!(stdout.contains("rtcg_search_leaf_batch_width"), "{stdout}");
}

#[test]
fn profile_rejects_unknown_format() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["profile", spec.path_str(), "--format", "yaml"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--format"), "{stderr}");
}

#[test]
fn analyze_progress_ticker_reports_on_stderr() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["analyze", spec.path_str(), "--exact", "--progress"]);
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    // the ticker prints a final sample even when the search beats the
    // first tick, so this is deterministic
    assert!(stderr.contains("nodes/s"), "{stderr}");
    assert!(stderr.contains("prune"), "{stderr}");
}

#[test]
fn analyze_metrics_out_writes_valid_prometheus() {
    let spec = write_spec(GOOD_SPEC);
    let prom = spec.path.with_extension("metrics.prom");
    let out = rtcg(&[
        "analyze",
        spec.path_str(),
        "--exact",
        "--metrics-out",
        prom.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let body = std::fs::read_to_string(&prom).expect("metrics file exists");
    std::fs::remove_file(&prom).ok();
    let samples = rtcg_obs::validate_prometheus_text(&body)
        .unwrap_or_else(|e| panic!("invalid exposition: {e:?}\n{body}"));
    assert!(samples > 0);
    assert!(body.contains("rtcg_search_nodes_expanded"), "{body}");
}

#[test]
fn analyze_batch_metrics_out_includes_request_latency() {
    let spec = write_spec(GOOD_SPEC);
    let manifest = write_spec(&format!("{0}\n{0}\n", spec.path_str()));
    let prom = spec.path.with_extension("batch.prom");
    let out = rtcg(&[
        "analyze",
        "--batch",
        manifest.path_str(),
        "--threads",
        "2",
        "--metrics-out",
        prom.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let body = std::fs::read_to_string(&prom).expect("metrics file exists");
    std::fs::remove_file(&prom).ok();
    let samples = rtcg_obs::validate_prometheus_text(&body)
        .unwrap_or_else(|e| panic!("invalid exposition: {e:?}\n{body}"));
    assert!(samples > 0);
    // per-request latency histogram → summary with count 2
    assert!(body.contains("rtcg_engine_request_us_count 2"), "{body}");
    // queue-depth gauge drained to zero at batch end
    assert!(body.contains("rtcg_engine_batch_queue_depth 0"), "{body}");
}

#[test]
fn analyze_reports_verdict_and_cache_stats() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["analyze", spec.path_str(), "--cache-stats"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("feasible"), "{stdout}");
    assert!(stdout.contains("engine cache:"), "{stdout}");
}

#[test]
fn analyze_sweep_lists_every_constraint() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["analyze", spec.path_str(), "--sweep", "--cache-stats"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("deadline sensitivity sweep"), "{stdout}");
    assert!(stdout.contains("xchain"), "{stdout}");
    assert!(stdout.contains("burst"), "{stdout}");
    assert!(stdout.contains("maximum uniform tightening"), "{stdout}");
}

#[test]
fn analyze_infeasible_model_fails() {
    let spec = write_spec(INFEASIBLE_SPEC);
    let out = rtcg(&["analyze", spec.path_str()]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("infeasible"), "{stderr}");
}

#[test]
fn analyze_batch_reports_per_spec_verdicts_and_shares_cache() {
    let spec = write_spec(GOOD_SPEC);
    // the same spec three times over two workers: at most two requests
    // can miss the memo concurrently, so the third must hit it
    let manifest = write_spec(&format!(
        "# batch manifest\n{0}\n\n{0}\n{0}\n",
        spec.path_str()
    ));
    let out = rtcg(&[
        "analyze",
        "--batch",
        manifest.path_str(),
        "--threads",
        "2",
        "--cache-stats",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("batch: 3 spec(s), 2 worker thread(s)"),
        "{stdout}"
    );
    assert!(stdout.matches("feasible").count() >= 3, "{stdout}");
    assert!(stdout.contains("summary: 3 feasible"), "{stdout}");
    let hits_line = stdout
        .lines()
        .find(|l| l.contains("engine cache:"))
        .expect("cache stats printed");
    assert!(
        !hits_line.contains("0 hit(s)"),
        "duplicate spec must hit: {stdout}"
    );
}

#[test]
fn analyze_batch_mixed_feasibility_exits_3() {
    let good = write_spec(GOOD_SPEC);
    let bad = write_spec(INFEASIBLE_SPEC);
    let manifest = write_spec(&format!("{}\n{}\n", good.path_str(), bad.path_str()));
    let out = rtcg(&["analyze", "--batch", manifest.path_str()]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("summary: 1 feasible, 1 infeasible"),
        "{stdout}"
    );
}

#[test]
fn analyze_batch_missing_manifest_exits_2() {
    let out = rtcg(&["analyze", "--batch", "/nonexistent/batch.txt"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn analyze_batch_without_manifest_is_usage_error() {
    let out = rtcg(&["analyze", "--batch"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("manifest"), "{stderr}");
}

#[test]
fn threads_zero_rejected_with_diagnostic() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["analyze", spec.path_str(), "--exact", "--threads", "0"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--threads must be at least 1"), "{stderr}");
}

#[test]
fn budget_ms_zero_rejected_with_diagnostic() {
    let spec = write_spec(GOOD_SPEC);
    let manifest = write_spec(&format!("{}\n", spec.path_str()));
    let out = rtcg(&[
        "analyze",
        "--batch",
        manifest.path_str(),
        "--budget-ms",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("--budget-ms must be at least 1"),
        "{stderr}"
    );
}

#[test]
fn budget_zero_rejected_with_diagnostic() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["synthesize", spec.path_str(), "--exact", "--budget", "0"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--budget must be at least 1"), "{stderr}");
}

#[test]
fn analyze_exact_sweep_saves_leaf_evals() {
    // tiny model so the complete exact search stays fast; the sweep's
    // repeated probes must be served from the candidate memo
    let spec = write_spec(
        r#"
        element a wcet 1; element b wcet 1;
        asynchronous ca period 6 deadline 4 { op o: a; }
        asynchronous cb period 6 deadline 4 { op o: b; }
        "#,
    );
    let out = rtcg(&[
        "analyze",
        spec.path_str(),
        "--exact",
        "--max-len",
        "4",
        "--sweep",
        "--cache-stats",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let saved_line = stdout
        .lines()
        .find(|l| l.contains("leaf evals:"))
        .expect("cache stats line");
    let saved: u64 = saved_line
        .split("leaf evals: ")
        .nth(1)
        .and_then(|t| t.split(" saved").next())
        .and_then(|t| t.trim().parse().ok())
        .expect("saved count");
    assert!(saved > 0, "{stdout}");
}

#[test]
fn cache_file_flag_validates_eagerly() {
    let spec = write_spec(GOOD_SPEC);
    // a directory is never a snapshot file
    let dir = std::env::temp_dir();
    let out = rtcg(&[
        "analyze",
        spec.path_str(),
        "--cache-file",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("is a directory"), "{stderr}");
    // a fresh file must at least land in an existing directory
    let out = rtcg(&[
        "analyze",
        spec.path_str(),
        "--cache-file",
        "/nonexistent-rtcg-dir/memo.snap",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("does not exist"), "{stderr}");
    // and the flag needs a value at all
    let out = rtcg(&["analyze", spec.path_str(), "--cache-file"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn analyze_cache_file_warms_the_second_run() {
    let spec = write_spec(GOOD_SPEC);
    let snap = spec.path.with_extension("snap");
    let args = [
        "analyze",
        spec.path_str(),
        "--cache-file",
        snap.to_str().unwrap(),
        "--cache-stats",
    ];
    let cold = rtcg(&args);
    assert!(cold.status.success(), "{cold:?}");
    let stdout = String::from_utf8(cold.stdout).unwrap();
    assert!(stdout.contains("starting cold"), "{stdout}");
    assert!(stdout.contains("cache: saved"), "{stdout}");
    assert!(snap.is_file(), "snapshot file written");

    let warm = rtcg(&args);
    std::fs::remove_file(&snap).ok();
    assert!(warm.status.success(), "{warm:?}");
    let stdout = String::from_utf8(warm.stdout).unwrap();
    assert!(stdout.contains("cache: loaded"), "{stdout}");
    assert!(stdout.contains("1 hit(s), 0 miss(es)"), "{stdout}");
}

#[test]
fn corpus_generate_then_run_replays_warm_from_cache() {
    let dir = std::env::temp_dir().join(format!("rtcg-corpus-test-{}", std::process::id()));
    let snap = dir.join("fleet.snap");
    let out = rtcg(&[
        "corpus",
        "generate",
        dir.to_str().unwrap(),
        "--count",
        "10",
        "--seed",
        "1",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("wrote 10 spec(s)"), "{stdout}");
    assert!(dir.join("manifest.txt").is_file());
    // versioned manifest entries, one generated spec file per line
    let manifest = std::fs::read_to_string(dir.join("manifest.txt")).unwrap();
    let entries: Vec<&str> = manifest.lines().filter(|l| l.starts_with('{')).collect();
    assert_eq!(entries.len(), 10, "{manifest}");
    assert!(entries[0].starts_with("{\"v\":1,\"spec\":\""), "{manifest}");

    let args = [
        "corpus",
        "run",
        dir.to_str().unwrap(),
        "--cache-file",
        snap.to_str().unwrap(),
        "--cache-stats",
    ];
    let cold = rtcg(&args);
    // generated corpora deliberately straddle feasibility boundaries, so
    // exit 3 (some spec infeasible) is as valid as 0 — but never 1/2
    assert!(matches!(cold.status.code(), Some(0) | Some(3)), "{cold:?}");
    let cold_stdout = String::from_utf8(cold.stdout).unwrap();
    assert!(cold_stdout.contains("batch: 10 spec(s)"), "{cold_stdout}");
    assert!(cold_stdout.contains("cache: saved"), "{cold_stdout}");

    let warm = rtcg(&args);
    assert_eq!(
        warm.status.code(),
        cold.status.code(),
        "verdicts must replay"
    );
    let warm_stdout = String::from_utf8(warm.stdout).unwrap();
    assert!(warm_stdout.contains("cache: loaded"), "{warm_stdout}");
    assert!(
        warm_stdout.contains("10 hit(s), 0 miss(es)"),
        "warm corpus run must be all memo hits: {warm_stdout}"
    );
    // identical per-spec verdict lines, cold vs warm
    let verdicts = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.trim_start().starts_with('/'))
            .map(|l| l.trim().to_string())
            .collect()
    };
    assert_eq!(verdicts(&cold_stdout), verdicts(&warm_stdout));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_generation_is_deterministic_across_invocations() {
    let base = std::env::temp_dir().join(format!("rtcg-corpus-det-{}", std::process::id()));
    let (a, b) = (base.join("a"), base.join("b"));
    for d in [&a, &b] {
        let out = rtcg(&[
            "corpus",
            "generate",
            d.to_str().unwrap(),
            "--count",
            "5",
            "--seed",
            "7",
        ]);
        assert!(out.status.success(), "{out:?}");
    }
    let mut names: Vec<String> = std::fs::read_dir(&a)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(names.len(), 6, "5 specs + manifest: {names:?}");
    for name in &names {
        let x = std::fs::read_to_string(a.join(name)).unwrap();
        let y = std::fs::read_to_string(b.join(name)).unwrap();
        // the manifest's comment header names the target directory;
        // everything else must be byte-identical
        let strip = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(
            strip(&x),
            strip(&y),
            "regenerated corpus diverged at {name}"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn corpus_usage_errors() {
    let out = rtcg(&["corpus"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let out = rtcg(&["corpus", "frobnicate"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // running a directory that was never generated names the fix
    let empty = std::env::temp_dir().join(format!("rtcg-corpus-empty-{}", std::process::id()));
    std::fs::create_dir_all(&empty).unwrap();
    let out = rtcg(&["corpus", "run", empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("generate the corpus first"), "{stderr}");
    let _ = std::fs::remove_dir_all(&empty);
}

#[test]
fn profile_reports_snapshot_metrics_in_both_formats() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["profile", spec.path_str()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("snapshot:"), "{stdout}");
    assert!(stdout.contains("round-tripped"), "{stdout}");
    // the counters table carries the engine.snapshot.* family
    assert!(stdout.contains("engine.snapshot.bytes"), "{stdout}");

    let out = rtcg(&["profile", spec.path_str(), "--format", "prom"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let start = stdout.find("# TYPE").expect("exposition present");
    rtcg_obs::validate_prometheus_text(&stdout[start..])
        .unwrap_or_else(|e| panic!("invalid exposition: {e:?}\n{stdout}"));
    for name in [
        "rtcg_engine_snapshot_save_us",
        "rtcg_engine_snapshot_load_us",
        "rtcg_engine_snapshot_bytes",
        "rtcg_engine_snapshot_sections_loaded",
        "rtcg_engine_snapshot_sections_skipped",
    ] {
        assert!(stdout.contains(name), "missing {name}: {stdout}");
    }
}

#[test]
fn analyze_lanes_two_schedules_what_one_cannot() {
    // two wcet-2 elements each demanding latency <= 3: provably
    // infeasible on one processor, trivially feasible on two lanes
    let spec = write_spec(INFEASIBLE_SPEC);
    let one = rtcg(&["analyze", spec.path_str(), "--exact", "--max-len", "3"]);
    assert_eq!(one.status.code(), Some(3), "{one:?}");
    let two = rtcg(&[
        "analyze",
        spec.path_str(),
        "--exact",
        "--max-len",
        "3",
        "--lanes",
        "2",
    ]);
    assert!(two.status.success(), "{two:?}");
    let stdout = String::from_utf8(two.stdout).unwrap();
    assert!(stdout.contains("lane-exact"), "{stdout}");
    assert!(stdout.contains("2 lanes"), "{stdout}");
    assert!(stdout.contains("lane 0"), "{stdout}");
    assert!(stdout.contains("lane 1"), "{stdout}");
}

#[test]
fn analyze_lanes_heuristic_verifies_its_schedule() {
    let spec = write_spec(INFEASIBLE_SPEC);
    let out = rtcg(&["analyze", spec.path_str(), "--lanes", "2"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("lane-list"), "{stdout}");
}

#[test]
fn analyze_lanes_one_is_the_scalar_path() {
    let spec = write_spec(GOOD_SPEC);
    let plain = rtcg(&["analyze", spec.path_str(), "--exact", "--max-len", "6"]);
    let one = rtcg(&[
        "analyze",
        spec.path_str(),
        "--exact",
        "--max-len",
        "6",
        "--lanes",
        "1",
    ]);
    assert_eq!(plain.status.code(), one.status.code());
    assert_eq!(plain.stdout, one.stdout, "--lanes 1 must change nothing");
}

#[test]
fn analyze_lanes_zero_is_a_usage_error() {
    let spec = write_spec(GOOD_SPEC);
    let out = rtcg(&["analyze", spec.path_str(), "--lanes", "0"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--lanes"), "{stderr}");
}
