//! Error type for the process-model crate.

use std::fmt;

/// Errors produced by process-set construction and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessError {
    /// A process identifier is out of range.
    UnknownProcess(usize),
    /// A process was declared with zero period.
    ZeroPeriod(String),
    /// A process was declared with zero deadline.
    ZeroDeadline(String),
    /// A process's computation time exceeds its deadline.
    ComputationExceedsDeadline {
        /// Offending process name.
        name: String,
        /// Computation time.
        computation: u64,
        /// Deadline.
        deadline: u64,
    },
    /// Analysis horizon exceeded a budget (e.g. huge hyperperiod).
    BudgetExhausted(&'static str),
    /// A model-level error surfaced during naive synthesis.
    Model(rtcg_core::ModelError),
}

impl fmt::Display for ProcessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessError::UnknownProcess(i) => write!(f, "unknown process #{i}"),
            ProcessError::ZeroPeriod(n) => write!(f, "process `{n}` has zero period"),
            ProcessError::ZeroDeadline(n) => write!(f, "process `{n}` has zero deadline"),
            ProcessError::ComputationExceedsDeadline {
                name,
                computation,
                deadline,
            } => write!(
                f,
                "process `{name}`: computation {computation} > deadline {deadline}"
            ),
            ProcessError::BudgetExhausted(what) => write!(f, "budget exhausted during {what}"),
            ProcessError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for ProcessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProcessError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rtcg_core::ModelError> for ProcessError {
    fn from(e: rtcg_core::ModelError) -> Self {
        ProcessError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ProcessError::UnknownProcess(3).to_string().contains('3'));
        assert!(ProcessError::ZeroPeriod("p".into())
            .to_string()
            .contains("p"));
        let e = ProcessError::ComputationExceedsDeadline {
            name: "q".into(),
            computation: 9,
            deadline: 4,
        };
        assert!(e.to_string().contains('9'));
    }
}
