//! The paper's naive process synthesis ("Synthesis Techniques", ¶1).
//!
//! "A straightforward way to implement an instance of our graph-based
//! model is to map each periodic/asynchronous timing constraint `(C,p,d)`
//! into a periodic/asynchronous (i.e., demand driven) process `T'` where
//! the body of `T'` consists of a straight-line program which is any
//! topological sort of the operations in the task graph `C`. The
//! computation time `c` of the process `T'` is then the computation time
//! of `C`. In order to enforce pipeline ordering, we create a monitor for
//! each functional element that occurs in two or more timing
//! constraints."
//!
//! "However, this approach is inefficient since it does not take
//! advantage of operations that are common to two or more timing
//! constraints. For example, if `p_x` is equal to `p_y` […] there is no
//! reason why `f_S` should be executed twice per period."
//!
//! [`naive_synthesis`] performs exactly this mapping and quantifies the
//! inefficiency: [`NaiveSynthesis::redundant_work_rate`] measures the
//! processor time per tick spent re-executing shared elements that a
//! merged (latency-scheduled) implementation runs once.

use crate::error::ProcessError;
use crate::process::{Process, ProcessId, ProcessKind, ProcessSet};
use rtcg_core::constraint::ConstraintKind;
use rtcg_core::model::{ElementId, Model};

/// One synthesized process: the straight-line body plus its attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesizedProcess {
    /// Index in the generated [`ProcessSet`].
    pub id: ProcessId,
    /// The straight-line body: element executions in topological order.
    pub body: Vec<ElementId>,
    /// Elements of the body that are guarded by monitors (shared with
    /// another constraint's process).
    pub monitored: Vec<ElementId>,
}

/// Output of the naive synthesis.
#[derive(Debug, Clone)]
pub struct NaiveSynthesis {
    /// The generated process set (one process per timing constraint, in
    /// declaration order).
    pub set: ProcessSet,
    /// Straight-line bodies and monitor annotations, parallel to `set`.
    pub programs: Vec<SynthesizedProcess>,
    /// Elements for which a monitor was created (used by ≥ 2 constraints).
    pub monitors: Vec<ElementId>,
}

impl NaiveSynthesis {
    /// Long-run processor demand (time per tick) of the naive
    /// implementation, with every constraint invoked at its maximum rate:
    /// `Σᵢ wᵢ/pᵢ`.
    pub fn demand_rate(&self) -> f64 {
        crate::analysis::utilization(&self.set)
    }

    /// Long-run processor demand of an implementation that executes each
    /// *shared* element once per "round" at the fastest participating
    /// rate instead of once per constraint — the paper's motivating
    /// saving. Elements used by a single constraint are unchanged.
    pub fn merged_demand_rate(&self, model: &Model) -> Result<f64, ProcessError> {
        let comm = model.comm();
        let mut rate = 0.0;
        // per element: max over constraints of (count·1/p) instead of sum
        let mut per_elem: std::collections::BTreeMap<ElementId, f64> =
            std::collections::BTreeMap::new();
        for c in model.constraints() {
            for (elem, count) in c.task.element_usage() {
                let r = count as f64 / c.period as f64;
                let e = per_elem.entry(elem).or_insert(0.0);
                if r > *e {
                    *e = r;
                }
            }
        }
        for (elem, r) in per_elem {
            rate += comm.wcet(elem).map_err(ProcessError::from)? as f64 * r;
        }
        Ok(rate)
    }

    /// Processor time per tick wasted on redundant executions of shared
    /// elements: `demand_rate − merged_demand_rate`.
    pub fn redundant_work_rate(&self, model: &Model) -> Result<f64, ProcessError> {
        Ok(self.demand_rate() - self.merged_demand_rate(model)?)
    }
}

/// Maps each timing constraint of the model to a process (see module
/// docs).
pub fn naive_synthesis(model: &Model) -> Result<NaiveSynthesis, ProcessError> {
    model.validate().map_err(ProcessError::from)?;
    let comm = model.comm();

    // elements used by ≥ 2 constraints get monitors
    let shared: Vec<ElementId> = rtcg_core::analysis::shared_elements(model);

    let mut set = ProcessSet::new();
    let mut programs = Vec::with_capacity(model.constraints().len());
    for c in model.constraints() {
        let body: Vec<ElementId> = c
            .task
            .topo_ops()
            .into_iter()
            .map(|op| c.task.element_of(op).expect("live op"))
            .collect();
        let wcet = c.task.computation_time(comm).map_err(ProcessError::from)?;
        let id = set.add(Process {
            name: c.name.clone(),
            wcet,
            period: c.period,
            deadline: c.deadline,
            kind: match c.kind {
                ConstraintKind::Periodic => ProcessKind::Periodic,
                ConstraintKind::Asynchronous => ProcessKind::Sporadic,
            },
        })?;
        let monitored: Vec<ElementId> = body
            .iter()
            .copied()
            .filter(|e| shared.contains(e))
            .collect();
        programs.push(SynthesizedProcess {
            id,
            body,
            monitored,
        });
    }
    Ok(NaiveSynthesis {
        set,
        programs,
        monitors: shared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::model::ModelBuilder;
    use rtcg_core::task::TaskGraphBuilder;

    /// The paper's p_x == p_y situation: two chains sharing fS (and fK).
    fn shared_fs_model(px: u64, py: u64) -> Model {
        let mut b = ModelBuilder::new();
        let fx = b.element("fx", 1);
        let fy = b.element("fy", 1);
        let fs = b.element("fs", 2);
        b.channel(fx, fs).channel(fy, fs);
        let tx = TaskGraphBuilder::new()
            .op("x", fx)
            .op("s", fs)
            .edge("x", "s")
            .build()
            .unwrap();
        let ty = TaskGraphBuilder::new()
            .op("y", fy)
            .op("s", fs)
            .edge("y", "s")
            .build()
            .unwrap();
        b.periodic("cx", tx, px, px);
        b.periodic("cy", ty, py, py);
        b.build().unwrap()
    }

    #[test]
    fn one_process_per_constraint() {
        let m = shared_fs_model(10, 10);
        let n = naive_synthesis(&m).unwrap();
        assert_eq!(n.set.len(), 2);
        assert_eq!(n.programs.len(), 2);
        assert_eq!(n.set.processes()[0].name, "cx");
        assert_eq!(n.set.processes()[0].wcet, 3); // fx + fs
        assert_eq!(n.set.processes()[1].wcet, 3);
    }

    #[test]
    fn bodies_are_topological() {
        let m = shared_fs_model(10, 10);
        let n = naive_synthesis(&m).unwrap();
        let comm = m.comm();
        let names: Vec<&str> = n.programs[0]
            .body
            .iter()
            .map(|&e| comm.name(e).unwrap())
            .collect();
        assert_eq!(names, vec!["fx", "fs"]);
    }

    #[test]
    fn shared_element_gets_monitor() {
        let m = shared_fs_model(10, 10);
        let n = naive_synthesis(&m).unwrap();
        assert_eq!(n.monitors.len(), 1);
        assert_eq!(m.comm().name(n.monitors[0]).unwrap(), "fs");
        // both programs mark fs as monitored
        for prog in &n.programs {
            assert_eq!(prog.monitored.len(), 1);
        }
    }

    #[test]
    fn paper_inefficiency_quantified() {
        // p_x == p_y == 10: naive runs fs twice per 10 ticks, merged once.
        let m = shared_fs_model(10, 10);
        let n = naive_synthesis(&m).unwrap();
        // naive: (1+2)/10 + (1+2)/10 = 0.6
        assert!((n.demand_rate() - 0.6).abs() < 1e-9);
        // merged: fx 1/10 + fy 1/10 + fs 2/10 = 0.4
        assert!((n.merged_demand_rate(&m).unwrap() - 0.4).abs() < 1e-9);
        // redundancy = one extra fs per period = 0.2
        assert!((n.redundant_work_rate(&m).unwrap() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn no_sharing_no_redundancy() {
        let mut b = ModelBuilder::new();
        let a = b.element("a", 1);
        let c = b.element("c", 1);
        let ta = TaskGraphBuilder::new().op("a", a).build().unwrap();
        let tc = TaskGraphBuilder::new().op("c", c).build().unwrap();
        b.periodic("ca", ta, 4, 4);
        b.periodic("cc", tc, 6, 6);
        let m = b.build().unwrap();
        let n = naive_synthesis(&m).unwrap();
        assert!(n.monitors.is_empty());
        assert!(n.redundant_work_rate(&m).unwrap().abs() < 1e-9);
    }

    #[test]
    fn different_rates_share_at_fastest() {
        // p_x = 5, p_y = 10: merged fs rate = max(1/5, 1/10) = 1/5
        let m = shared_fs_model(5, 10);
        let n = naive_synthesis(&m).unwrap();
        // naive: 3/5 + 3/10 = 0.9 ; merged: 1/5 + 1/10 + 2/5 = 0.7
        assert!((n.demand_rate() - 0.9).abs() < 1e-9);
        assert!((n.merged_demand_rate(&m).unwrap() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn asynchronous_constraints_become_sporadic() {
        let mut b = ModelBuilder::new();
        let z = b.element("z", 1);
        let tz = TaskGraphBuilder::new().op("z", z).build().unwrap();
        b.asynchronous("cz", tz, 7, 5);
        let m = b.build().unwrap();
        let n = naive_synthesis(&m).unwrap();
        assert_eq!(n.set.processes()[0].kind, ProcessKind::Sporadic);
        assert_eq!(n.set.processes()[0].period, 7);
        assert_eq!(n.set.processes()[0].deadline, 5);
    }

    #[test]
    fn mok_example_synthesis() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let n = naive_synthesis(&m).unwrap();
        assert_eq!(n.set.len(), 3);
        // fS and fK are shared between x-chain and y-chain
        let names: Vec<&str> = n
            .monitors
            .iter()
            .map(|&e| m.comm().name(e).unwrap())
            .collect();
        assert!(names.contains(&"fS"));
        assert!(names.contains(&"fK"));
        assert!(n.redundant_work_rate(&m).unwrap() > 0.0);
    }
}
