//! # rtcg-process — the process-based baseline model of \[MOK 83\]
//!
//! The paper contrasts its graph-based model with *process-based models*:
//! "critical timing constraints are specified by permitting a process to
//! have a deadline and/or repetition period attribute" and cites the
//! author's dissertation for scheduling results. This crate is that
//! baseline substrate, built from scratch:
//!
//! * [`process`] — periodic/sporadic process sets with computation time,
//!   period and deadline attributes;
//! * [`analysis`] — classical schedulability analysis: utilization, the
//!   Liu–Layland rate-monotonic bound, exact response-time analysis for
//!   fixed priorities, and the EDF processor-demand criterion;
//! * [`naive`] — the paper's *straightforward* synthesis: "map each
//!   periodic/asynchronous timing constraint `(C,p,d)` into a
//!   periodic/asynchronous process `T'` where the body of `T'` is a
//!   straight-line program which is any topological sort of the
//!   operations in the task graph `C`", with monitors guarding functional
//!   elements shared between constraints. This is the baseline the
//!   latency-scheduling experiments (E6) compare against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod error;
pub mod naive;
pub mod process;

pub use analysis::{
    edf_schedulable, liu_layland_bound, response_time, rm_schedulable_by_bound,
    rm_schedulable_exact, utilization,
};
pub use error::ProcessError;
pub use naive::{naive_synthesis, NaiveSynthesis, SynthesizedProcess};
pub use process::{Process, ProcessId, ProcessKind, ProcessSet};
