//! Classical schedulability analysis for process sets.
//!
//! These are the \[MOK 83\]-era results the paper leans on ("The
//! scheduling results for process-based models, e.g., \[MOK 83\] can now
//! be applied to implement the resulting set of processes"):
//!
//! * utilization and the Liu–Layland rate-monotonic bound
//!   `U ≤ n(2^{1/n} − 1)`;
//! * exact fixed-priority response-time analysis (RM/DM);
//! * the EDF processor-demand criterion, exact for constrained-deadline
//!   synchronous periodic sets.

use crate::error::ProcessError;
use crate::process::{ProcessId, ProcessSet};

/// Total utilization `Σ wcet/period`.
pub fn utilization(set: &ProcessSet) -> f64 {
    set.processes().iter().map(|p| p.utilization()).sum()
}

/// The Liu–Layland rate-monotonic utilization bound for `n` processes:
/// `n(2^{1/n} − 1)`; 1.0 for `n = 0`.
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// Sufficient RM test: utilization at most the Liu–Layland bound
/// (requires implicit deadlines; returns `false` — "cannot conclude" —
/// when some deadline differs from its period).
pub fn rm_schedulable_by_bound(set: &ProcessSet) -> bool {
    if set.processes().iter().any(|p| p.deadline != p.period) {
        return false;
    }
    utilization(set) <= liu_layland_bound(set.len()) + 1e-12
}

/// Exact worst-case response time of `id` under the given fixed-priority
/// order (earlier in `order` = higher priority), by the standard
/// fixed-point iteration `R = w + Σ_{hp} ⌈R/p_j⌉ w_j`. Returns `None`
/// when the iteration diverges past the deadline (unschedulable) and an
/// error for unknown ids.
pub fn response_time(
    set: &ProcessSet,
    order: &[ProcessId],
    id: ProcessId,
) -> Result<Option<u64>, ProcessError> {
    let me = set.get(id)?;
    let my_pos = order
        .iter()
        .position(|&x| x == id)
        .ok_or(ProcessError::UnknownProcess(id.index()))?;
    let higher: Vec<&crate::process::Process> = order[..my_pos]
        .iter()
        .map(|&hid| set.get(hid))
        .collect::<Result<_, _>>()?;
    let mut r = me.wcet;
    loop {
        let interference: u64 = higher.iter().map(|h| r.div_ceil(h.period) * h.wcet).sum();
        let next = me.wcet + interference;
        if next == r {
            return Ok(Some(r));
        }
        if next > me.deadline {
            return Ok(None);
        }
        r = next;
    }
}

/// Exact fixed-priority schedulability under rate-monotonic priorities:
/// every process's worst-case response time is within its deadline.
/// (Exact for synchronous, constrained-deadline sets.)
pub fn rm_schedulable_exact(set: &ProcessSet) -> Result<bool, ProcessError> {
    let order = set.rm_order();
    for &id in &order {
        match response_time(set, &order, id)? {
            Some(r) if r <= set.get(id)?.deadline => {}
            _ => return Ok(false),
        }
    }
    Ok(true)
}

/// EDF processor-demand criterion: `∀ t ∈ testing set: dbf(t) ≤ t`,
/// where `dbf(t) = Σᵢ max(0, ⌊(t − Dᵢ)/Pᵢ⌋ + 1)·wᵢ`. Exact for
/// synchronous periodic sets with constrained deadlines. The testing set
/// is all absolute deadlines up to `min(hyperperiod + max D, horizon_cap)`;
/// exceeding the cap errors with `BudgetExhausted`.
pub fn edf_schedulable(set: &ProcessSet, horizon_cap: u64) -> Result<bool, ProcessError> {
    if set.is_empty() {
        return Ok(true);
    }
    if utilization(set) > 1.0 + 1e-12 {
        return Ok(false);
    }
    let max_d = set.processes().iter().map(|p| p.deadline).max().unwrap();
    let horizon = set.hyperperiod().saturating_add(max_d);
    if horizon > horizon_cap {
        return Err(ProcessError::BudgetExhausted("EDF demand-bound horizon"));
    }
    // testing set: absolute deadlines kP + D ≤ horizon
    let mut points: Vec<u64> = Vec::new();
    for p in set.processes() {
        let mut t = p.deadline;
        while t <= horizon {
            points.push(t);
            t += p.period;
        }
    }
    points.sort_unstable();
    points.dedup();
    for &t in &points {
        let demand: u64 = set
            .processes()
            .iter()
            .map(|p| {
                if t >= p.deadline {
                    ((t - p.deadline) / p.period + 1) * p.wcet
                } else {
                    0
                }
            })
            .sum();
        if demand > t {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Process, ProcessKind};

    fn mk(specs: &[(u64, u64, u64)]) -> ProcessSet {
        let mut s = ProcessSet::new();
        for (i, &(w, p, d)) in specs.iter().enumerate() {
            s.add(Process {
                name: format!("p{i}"),
                wcet: w,
                period: p,
                deadline: d,
                kind: ProcessKind::Periodic,
            })
            .unwrap();
        }
        s
    }

    #[test]
    fn liu_layland_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-9);
        assert!((liu_layland_bound(2) - 0.8284271).abs() < 1e-6);
        assert!((liu_layland_bound(3) - 0.7797631).abs() < 1e-6);
        // limit ln 2 ≈ 0.693
        assert!(liu_layland_bound(1000) > 0.693);
        assert!(liu_layland_bound(1000) < 0.694);
        assert_eq!(liu_layland_bound(0), 1.0);
    }

    #[test]
    fn utilization_sums() {
        let s = mk(&[(1, 4, 4), (2, 8, 8)]);
        assert!((utilization(&s) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rm_bound_test() {
        // U = 0.5 ≤ LL(2) ≈ 0.828 → pass
        let s = mk(&[(1, 4, 4), (2, 8, 8)]);
        assert!(rm_schedulable_by_bound(&s));
        // constrained deadline ≠ period → bound test inapplicable
        let s = mk(&[(1, 4, 3)]);
        assert!(!rm_schedulable_by_bound(&s));
        // U over the bound but under 1: bound says no (inconclusive)
        let s = mk(&[(4, 8, 8), (4, 9, 9)]);
        assert!(utilization(&s) > liu_layland_bound(2));
        assert!(!rm_schedulable_by_bound(&s));
    }

    #[test]
    fn response_time_classic_example() {
        // textbook: w/p = (1,4), (2,6), (3,13) RM-order
        let s = mk(&[(1, 4, 4), (2, 6, 6), (3, 13, 13)]);
        let order = s.rm_order();
        assert_eq!(response_time(&s, &order, order[0]).unwrap(), Some(1));
        assert_eq!(response_time(&s, &order, order[1]).unwrap(), Some(3));
        // p2: R = 3 + ⌈R/4⌉1 + ⌈R/6⌉2; fixed point:
        // R0=3 → 3+1+2=6 → 3+2+2=7 → 3+2+4=9 → 3+3+4=10 → 3+3+4=10 ✓
        assert_eq!(response_time(&s, &order, order[2]).unwrap(), Some(10));
        assert!(rm_schedulable_exact(&s).unwrap());
    }

    #[test]
    fn response_time_detects_miss() {
        // two processes each needing 3 of every 4 ticks — hopeless
        let s = mk(&[(3, 4, 4), (3, 4, 4)]);
        let order = s.rm_order();
        assert_eq!(response_time(&s, &order, order[1]).unwrap(), None);
        assert!(!rm_schedulable_exact(&s).unwrap());
    }

    #[test]
    fn rm_beats_bound_sometimes() {
        // harmonic periods: U = 1.0 > LL bound but RM-exact passes
        let s = mk(&[(1, 2, 2), (2, 4, 4)]);
        assert!(!rm_schedulable_by_bound(&s));
        assert!(rm_schedulable_exact(&s).unwrap());
    }

    #[test]
    fn edf_demand_criterion() {
        // U = 1.0 implicit deadlines → EDF schedulable
        let s = mk(&[(1, 2, 2), (2, 4, 4)]);
        assert!(edf_schedulable(&s, 1_000_000).unwrap());
        // over-utilized → no
        let s = mk(&[(3, 4, 4), (2, 4, 4)]);
        assert!(!edf_schedulable(&s, 1_000_000).unwrap());
        // constrained deadlines force failure despite U < 1
        let s = mk(&[(2, 10, 2), (2, 10, 3)]);
        assert!(!edf_schedulable(&s, 1_000_000).unwrap());
        // and a feasible constrained set passes
        let s = mk(&[(1, 10, 2), (1, 10, 3)]);
        assert!(edf_schedulable(&s, 1_000_000).unwrap());
    }

    #[test]
    fn edf_horizon_budget() {
        let s = mk(&[(1, 9973, 9973), (1, 9967, 9967)]);
        assert!(matches!(
            edf_schedulable(&s, 10),
            Err(ProcessError::BudgetExhausted(_))
        ));
    }

    #[test]
    fn empty_set_schedulable_everywhere() {
        let s = ProcessSet::new();
        assert!(rm_schedulable_by_bound(&s));
        assert!(rm_schedulable_exact(&s).unwrap());
        assert!(edf_schedulable(&s, 10).unwrap());
        assert_eq!(utilization(&s), 0.0);
    }

    #[test]
    fn edf_dominates_rm() {
        // any RM-schedulable implicit-deadline set is EDF-schedulable
        for specs in [
            vec![(1u64, 4u64, 4u64), (2, 6, 6), (3, 13, 13)],
            vec![(1, 2, 2), (2, 4, 4)],
            vec![(2, 5, 5), (1, 7, 7), (1, 11, 11)],
        ] {
            let s = mk(&specs);
            if rm_schedulable_exact(&s).unwrap() {
                assert!(edf_schedulable(&s, 10_000_000).unwrap(), "{specs:?}");
            }
        }
    }
}
