//! Periodic/sporadic process sets — the \[MOK 83\] task model.

use crate::error::ProcessError;
use serde::{Deserialize, Serialize};

/// Identifier of a process within a [`ProcessSet`] (declaration index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Raw index into the set.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Invocation discipline of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessKind {
    /// Released every `period` ticks starting at time 0.
    Periodic,
    /// Released at arbitrary instants with at least `period` separation
    /// (analysed at its worst-case, maximum-rate arrival pattern).
    Sporadic,
}

/// A process with the classical real-time attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Process {
    /// Human-readable name.
    pub name: String,
    /// Worst-case computation time per release.
    pub wcet: u64,
    /// Period (periodic) or minimum inter-arrival separation (sporadic).
    pub period: u64,
    /// Relative deadline.
    pub deadline: u64,
    /// Periodic or sporadic.
    pub kind: ProcessKind,
}

impl Process {
    /// Utilization `wcet / period` of this process.
    pub fn utilization(&self) -> f64 {
        self.wcet as f64 / self.period as f64
    }

    /// True when the relative deadline is at most the period
    /// ("constrained deadline").
    pub fn constrained(&self) -> bool {
        self.deadline <= self.period
    }
}

/// An ordered collection of processes (one processor).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessSet {
    processes: Vec<Process>,
}

impl ProcessSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a process after validating its attributes.
    pub fn add(&mut self, p: Process) -> Result<ProcessId, ProcessError> {
        if p.period == 0 {
            return Err(ProcessError::ZeroPeriod(p.name));
        }
        if p.deadline == 0 {
            return Err(ProcessError::ZeroDeadline(p.name));
        }
        if p.wcet > p.deadline {
            return Err(ProcessError::ComputationExceedsDeadline {
                name: p.name,
                computation: p.wcet,
                deadline: p.deadline,
            });
        }
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(p);
        Ok(id)
    }

    /// All processes in declaration order.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// The process behind `id`.
    pub fn get(&self, id: ProcessId) -> Result<&Process, ProcessError> {
        self.processes
            .get(id.index())
            .ok_or(ProcessError::UnknownProcess(id.index()))
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Hyperperiod (LCM of periods); 1 for an empty set.
    pub fn hyperperiod(&self) -> u64 {
        rtcg_core::time::lcm_all(self.processes.iter().map(|p| p.period))
    }

    /// Process ids ordered by *rate-monotonic* priority (shorter period =
    /// higher priority; ties by declaration order).
    pub fn rm_order(&self) -> Vec<ProcessId> {
        let mut ids: Vec<ProcessId> = (0..self.processes.len() as u32).map(ProcessId).collect();
        ids.sort_by_key(|id| (self.processes[id.index()].period, id.0));
        ids
    }

    /// Process ids ordered by *deadline-monotonic* priority (shorter
    /// relative deadline = higher priority; ties by declaration order).
    pub fn dm_order(&self) -> Vec<ProcessId> {
        let mut ids: Vec<ProcessId> = (0..self.processes.len() as u32).map(ProcessId).collect();
        ids.sort_by_key(|id| (self.processes[id.index()].deadline, id.0));
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str, wcet: u64, period: u64, deadline: u64) -> Process {
        Process {
            name: name.into(),
            wcet,
            period,
            deadline,
            kind: ProcessKind::Periodic,
        }
    }

    #[test]
    fn add_and_query() {
        let mut s = ProcessSet::new();
        let a = s.add(p("a", 1, 4, 4)).unwrap();
        let b = s.add(p("b", 2, 6, 5)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a).unwrap().name, "a");
        assert_eq!(s.get(b).unwrap().deadline, 5);
        assert!(s.get(ProcessId(9)).is_err());
        assert_eq!(s.hyperperiod(), 12);
    }

    #[test]
    fn validation_rejects_bad_attributes() {
        let mut s = ProcessSet::new();
        assert!(matches!(
            s.add(p("z", 1, 0, 4)),
            Err(ProcessError::ZeroPeriod(_))
        ));
        assert!(matches!(
            s.add(p("z", 1, 4, 0)),
            Err(ProcessError::ZeroDeadline(_))
        ));
        assert!(matches!(
            s.add(p("z", 5, 8, 4)),
            Err(ProcessError::ComputationExceedsDeadline { .. })
        ));
        assert!(s.is_empty());
    }

    #[test]
    fn priority_orders() {
        let mut s = ProcessSet::new();
        let a = s.add(p("a", 1, 10, 3)).unwrap();
        let b = s.add(p("b", 1, 5, 5)).unwrap();
        let c = s.add(p("c", 1, 5, 4)).unwrap();
        // RM: shortest period first; tie between b and c broken by index
        assert_eq!(s.rm_order(), vec![b, c, a]);
        // DM: shortest deadline first: a(3), c(4), b(5)
        assert_eq!(s.dm_order(), vec![a, c, b]);
    }

    #[test]
    fn utilization_and_constrained() {
        let proc = p("a", 2, 8, 6);
        assert!((proc.utilization() - 0.25).abs() < 1e-9);
        assert!(proc.constrained());
        let proc = p("b", 2, 4, 6);
        assert!(!proc.constrained());
    }
}
