//! Pseudo-code emission: synthesized processes and the table-driven
//! run-time scheduler.
//!
//! The output is a deterministic, human-readable rendering used by the
//! examples and by documentation; it is the "automated synthesis of code
//! for time-critical applications" artifact of the paper's methodology,
//! at the level of detail a 1985 code generator would emit.

use crate::error::SynthError;
use crate::ir::Program;
use rtcg_core::model::{CommGraph, Model};
use rtcg_core::schedule::{Action, StaticSchedule};
use std::fmt::Write;

/// Renders every synthesized process of a model (straight-line bodies
/// with monitors) as one text unit.
pub fn render_process_system(model: &Model, programs: &[Program]) -> Result<String, SynthError> {
    let comm = model.comm();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// synthesized from graph-based model: {} elements, {} constraints",
        comm.element_count(),
        model.constraints().len()
    );
    let _ = writeln!(out);
    for (prog, c) in programs.iter().zip(model.constraints()) {
        let _ = writeln!(
            out,
            "// constraint ({}, p={}, d={}) [{}]",
            c.name,
            c.period,
            c.deadline,
            if c.is_periodic() {
                "periodic"
            } else {
                "asynchronous"
            }
        );
        out.push_str(&prog.display(comm)?);
        let _ = writeln!(out);
    }
    Ok(out)
}

/// Renders the table-driven run-time scheduler for a static schedule:
/// the dispatch table plus the trivial cyclic executor loop — "the
/// run-time scheduler is very efficient once a feasible static schedule
/// has been found off-line".
pub fn render_table_scheduler(
    comm: &CommGraph,
    schedule: &StaticSchedule,
) -> Result<String, SynthError> {
    let mut out = String::new();
    let _ = writeln!(out, "// table-driven cyclic executor");
    let _ = writeln!(out, "const TABLE: [Entry; {}] = [", schedule.len());
    for a in schedule.actions() {
        match a {
            Action::Idle => {
                let _ = writeln!(out, "    Entry::Idle,");
            }
            Action::Run(e) => {
                let _ = writeln!(
                    out,
                    "    Entry::Run({}),",
                    comm.name(*e).map_err(SynthError::from)?
                );
            }
        }
    }
    let _ = writeln!(out, "];");
    let _ = writeln!(out);
    let _ = writeln!(out, "loop {{");
    let _ = writeln!(out, "    for entry in &TABLE {{");
    let _ = writeln!(out, "        match entry {{");
    let _ = writeln!(out, "            Entry::Idle => wait_tick(),");
    let _ = writeln!(out, "            Entry::Run(f) => f(),");
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::straightline::synthesize_programs;

    #[test]
    fn process_system_lists_all_constraints() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let (programs, _) = synthesize_programs(&m).unwrap();
        let text = render_process_system(&m, &programs).unwrap();
        assert!(text.contains("x-chain"));
        assert!(text.contains("y-chain"));
        assert!(text.contains("z-chain"));
        assert!(text.contains("periodic"));
        assert!(text.contains("asynchronous"));
        assert!(text.contains("call fS()"));
    }

    #[test]
    fn table_scheduler_renders_actions() {
        let (m, e) = rtcg_core::mok_example::default_model();
        let s = StaticSchedule::new(vec![Action::Run(e.fx), Action::Idle, Action::Run(e.fs)]);
        let text = render_table_scheduler(m.comm(), &s).unwrap();
        assert!(text.contains("Entry::Run(fX)"));
        assert!(text.contains("Entry::Idle"));
        assert!(text.contains("Entry::Run(fS)"));
        assert!(text.contains("[Entry; 3]"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let (p1, _) = synthesize_programs(&m).unwrap();
        let (p2, _) = synthesize_programs(&m).unwrap();
        assert_eq!(
            render_process_system(&m, &p1).unwrap(),
            render_process_system(&m, &p2).unwrap()
        );
    }
}
