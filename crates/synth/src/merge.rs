//! Shared-operation merging across timing constraints.
//!
//! The paper's motivation for latency scheduling: "if `p_x` is equal to
//! `p_y` in the example control system, then there is no reason why `f_S`
//! should be executed twice per period. In the process model, there are
//! two distinct calls to `f_S` and so the redundant work cannot be
//! avoided."
//!
//! [`merge_constraints`] builds the *merged task graph* of a set of
//! constraints: operations on the same functional element are unified
//! (first occurrence per element, in declaration order), edges are the
//! union of the source edges, and the result must stay acyclic. One
//! execution of the merged graph serves every source constraint at once,
//! saving the shared elements' work.

use crate::error::SynthError;
use rtcg_core::constraint::ConstraintId;
use rtcg_core::model::{ElementId, Model};
use rtcg_core::task::{OpId, TaskGraph, TaskGraphBuilder};
use std::collections::BTreeMap;

/// A merged task graph plus bookkeeping.
#[derive(Debug, Clone)]
pub struct MergedTask {
    /// The merged graph (compatible with the model's communication graph
    /// whenever the sources were).
    pub task: TaskGraph,
    /// The constraints merged, in the order given.
    pub sources: Vec<ConstraintId>,
    /// For each source constraint, the map from its op ids to merged-op
    /// labels.
    pub op_map: Vec<BTreeMap<OpId, String>>,
    /// Computation time of the merged graph.
    pub merged_computation: u64,
    /// Sum of the sources' separate computation times.
    pub separate_computation: u64,
}

impl MergedTask {
    /// Work saved per execution by merging (`separate − merged`).
    pub fn saving(&self) -> u64 {
        self.separate_computation - self.merged_computation
    }

    /// Saving as a fraction of the separate work (0 when nothing shared).
    pub fn saving_fraction(&self) -> f64 {
        if self.separate_computation == 0 {
            return 0.0;
        }
        self.saving() as f64 / self.separate_computation as f64
    }
}

/// Merges the task graphs of the given constraints (see module docs).
///
/// Unification rule: all operations on the same functional element across
/// (and within) the sources collapse to one merged operation per element
/// *occurrence index*: the k-th op on element `e` of any source maps to
/// merged op `e@k`. This preserves multiplicity (a constraint running an
/// element twice still runs it twice) while sharing across constraints.
pub fn merge_constraints(model: &Model, ids: &[ConstraintId]) -> Result<MergedTask, SynthError> {
    if ids.is_empty() {
        return Err(SynthError::NothingToMerge);
    }
    let _span = rtcg_obs::span!("synth.merge", "synthesis");
    rtcg_obs::counter!("synth.merge_calls");
    let comm = model.comm();
    let mut builder = TaskGraphBuilder::new();
    let mut merged_labels: Vec<String> = Vec::new(); // labels added so far
    let mut label_elements: BTreeMap<String, ElementId> = BTreeMap::new();
    let mut op_map: Vec<BTreeMap<OpId, String>> = Vec::new();
    let mut separate_computation = 0u64;
    let mut edges: Vec<(String, String)> = Vec::new();

    for &cid in ids {
        let c = model.constraint(cid).map_err(SynthError::from)?;
        separate_computation += c.task.computation_time(comm).map_err(SynthError::from)?;
        // occurrence index per element within THIS constraint
        let mut occurrence: BTreeMap<ElementId, usize> = BTreeMap::new();
        let mut this_map: BTreeMap<OpId, String> = BTreeMap::new();
        for op_id in c.task.topo_ops() {
            let elem = c.task.element_of(op_id).expect("live op");
            let k = {
                let e = occurrence.entry(elem).or_insert(0);
                let k = *e;
                *e += 1;
                k
            };
            let label = format!("{}@{k}", comm.name(elem).map_err(SynthError::from)?);
            if !merged_labels.contains(&label) {
                builder = builder.op(&label, elem);
                merged_labels.push(label.clone());
                label_elements.insert(label.clone(), elem);
            }
            this_map.insert(op_id, label);
        }
        for (u, v) in c.task.precedence_edges() {
            edges.push((this_map[&u].clone(), this_map[&v].clone()));
        }
        op_map.push(this_map);
    }
    edges.sort();
    edges.dedup();
    for (u, v) in edges {
        builder = builder.edge(&u, &v);
    }
    let task = match builder.build() {
        Ok(t) => t,
        Err(rtcg_core::ModelError::CyclicTaskGraph { .. }) => {
            return Err(SynthError::MergeCreatesCycle {
                constraints: ids.to_vec(),
            })
        }
        Err(e) => return Err(SynthError::Model(e)),
    };
    let merged_computation = task.computation_time(comm).map_err(SynthError::from)?;
    Ok(MergedTask {
        task,
        sources: ids.to_vec(),
        op_map,
        merged_computation,
        separate_computation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::model::ModelBuilder;
    use rtcg_core::task::TaskGraphBuilder;

    fn cid(i: u32) -> ConstraintId {
        ConstraintId::new(i)
    }

    /// x-chain and y-chain sharing fS and fK (the paper's p_x == p_y case).
    fn paper_like_model() -> Model {
        let (m, _) = rtcg_core::mok_example::default_model();
        m
    }

    #[test]
    fn merging_xy_chains_shares_fs_fk() {
        let m = paper_like_model();
        let merged = merge_constraints(&m, &[cid(0), cid(1)]).unwrap();
        // separate: (1+2+1) + (1+2+1) = 8; merged: fx+fy+fs+fk = 1+1+2+1 = 5
        assert_eq!(merged.separate_computation, 8);
        assert_eq!(merged.merged_computation, 5);
        assert_eq!(merged.saving(), 3);
        assert!((merged.saving_fraction() - 3.0 / 8.0).abs() < 1e-9);
        // merged graph is compatible with G
        merged.task.validate_against(m.comm(), None).unwrap();
        // 4 ops: fX@0, fY@0, fS@0, fK@0
        assert_eq!(merged.task.op_count(), 4);
    }

    #[test]
    fn merged_edges_union_precedences() {
        let m = paper_like_model();
        let merged = merge_constraints(&m, &[cid(0), cid(1)]).unwrap();
        let comm = m.comm();
        // expect edges fX->fS, fY->fS, fS->fK in the merged graph
        let mut found = std::collections::BTreeSet::new();
        for (u, v) in merged.task.precedence_edges() {
            let nu = comm
                .name(merged.task.element_of(u).unwrap())
                .unwrap()
                .to_string();
            let nv = comm
                .name(merged.task.element_of(v).unwrap())
                .unwrap()
                .to_string();
            found.insert((nu, nv));
        }
        assert!(found.contains(&("fX".into(), "fS".into())));
        assert!(found.contains(&("fY".into(), "fS".into())));
        assert!(found.contains(&("fS".into(), "fK".into())));
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn op_map_covers_every_source_op() {
        let m = paper_like_model();
        let merged = merge_constraints(&m, &[cid(0), cid(1)]).unwrap();
        for (i, &cid_) in merged.sources.iter().enumerate() {
            let c = m.constraint(cid_).unwrap();
            assert_eq!(merged.op_map[i].len(), c.task.op_count());
        }
    }

    #[test]
    fn multiplicity_preserved_within_a_constraint() {
        // one constraint calls e twice; merging with another single-call
        // constraint must keep two ops on e
        let mut b = ModelBuilder::new();
        let e = b.element("e", 1);
        b.channel(e, e);
        let t2 = TaskGraphBuilder::new()
            .op("a", e)
            .op("b", e)
            .edge("a", "b")
            .build()
            .unwrap();
        let t1 = TaskGraphBuilder::new().op("c", e).build().unwrap();
        b.asynchronous("two", t2, 8, 8);
        b.asynchronous("one", t1, 8, 8);
        let m = b.build().unwrap();
        let merged = merge_constraints(&m, &[cid(0), cid(1)]).unwrap();
        assert_eq!(merged.task.op_count(), 2, "e@0 and e@1");
        assert_eq!(merged.merged_computation, 2);
        assert_eq!(merged.separate_computation, 3);
    }

    #[test]
    fn conflicting_orders_rejected() {
        // constraint A: u before v; constraint B: v before u → merge cycle
        let mut b = ModelBuilder::new();
        let u = b.element("u", 1);
        let v = b.element("v", 1);
        b.channel(u, v).channel(v, u);
        let ta = TaskGraphBuilder::new()
            .op("u", u)
            .op("v", v)
            .edge("u", "v")
            .build()
            .unwrap();
        let tb = TaskGraphBuilder::new()
            .op("v", v)
            .op("u", u)
            .edge("v", "u")
            .build()
            .unwrap();
        b.asynchronous("a", ta, 8, 8);
        b.asynchronous("b", tb, 8, 8);
        let m = b.build().unwrap();
        assert!(matches!(
            merge_constraints(&m, &[cid(0), cid(1)]),
            Err(SynthError::MergeCreatesCycle { .. })
        ));
    }

    #[test]
    fn empty_merge_rejected() {
        let m = paper_like_model();
        assert!(matches!(
            merge_constraints(&m, &[]),
            Err(SynthError::NothingToMerge)
        ));
    }

    #[test]
    fn unknown_constraint_rejected() {
        let m = paper_like_model();
        assert!(merge_constraints(&m, &[cid(99)]).is_err());
    }

    #[test]
    fn singleton_merge_is_identity_like() {
        let m = paper_like_model();
        let merged = merge_constraints(&m, &[cid(2)]).unwrap();
        assert_eq!(merged.saving(), 0);
        assert_eq!(
            merged.merged_computation,
            m.constraint(cid(2))
                .unwrap()
                .computation_time(m.comm())
                .unwrap()
        );
    }

    #[test]
    fn merge_all_three_paper_constraints() {
        let m = paper_like_model();
        let merged = merge_constraints(&m, &[cid(0), cid(1), cid(2)]).unwrap();
        // all five elements appear once: 1+1+1+2+1 = 6
        assert_eq!(merged.merged_computation, 6);
        // separate: 4 + 4 + 3 = 11
        assert_eq!(merged.separate_computation, 11);
        merged.task.validate_against(m.comm(), None).unwrap();
    }
}
