//! Straight-line program generation from task graphs.
//!
//! "The body of `T'` consists of a straight-line program which is any
//! topological sort of the operations in the task graph `C`." Sends are
//! emitted immediately after the producing call (the latest output must
//! reach each consumer before the consumer executes — on a straight-line
//! single-processor body, emitting sends right after the producer
//! trivially satisfies this). Calls to shared elements are bracketed by
//! their monitor.

use crate::error::SynthError;
use crate::ir::{MonitorId, Program, Stmt};
use rtcg_core::model::{ElementId, Model};
use rtcg_core::task::TaskGraph;
use std::collections::BTreeMap;

/// Generates the straight-line program of one task graph.
///
/// `monitor_of` maps each shared element to its monitor; calls to mapped
/// elements are wrapped in acquire/release.
pub fn synthesize_program(
    name: &str,
    task: &TaskGraph,
    monitor_of: &BTreeMap<ElementId, MonitorId>,
) -> Program {
    let mut prog = Program::new(name);
    for op_id in task.topo_ops() {
        let op = task.op(op_id).expect("live op");
        let monitor = monitor_of.get(&op.element).copied();
        if let Some(m) = monitor {
            prog.stmts.push(Stmt::Acquire(m));
        }
        prog.stmts.push(Stmt::Call {
            label: op.label.clone(),
            element: op.element,
        });
        if let Some(m) = monitor {
            prog.stmts.push(Stmt::Release(m));
        }
        // transmissions of this op's output, in successor order
        for (u, v) in task.precedence_edges() {
            if u == op_id {
                prog.stmts.push(Stmt::Send {
                    from: op.element,
                    to: task.element_of(v).expect("live op"),
                });
            }
        }
    }
    prog
}

/// Generates one program per timing constraint of the model, creating a
/// monitor for each element shared by two or more constraints (the
/// paper's rule for enforcing pipeline ordering). Returns the programs in
/// constraint order plus the monitor table.
pub fn synthesize_programs(
    model: &Model,
) -> Result<(Vec<Program>, BTreeMap<ElementId, MonitorId>), SynthError> {
    model.validate().map_err(SynthError::from)?;
    let shared = rtcg_core::analysis::shared_elements(model);
    let monitor_of: BTreeMap<ElementId, MonitorId> = shared
        .into_iter()
        .enumerate()
        .map(|(i, e)| (e, MonitorId(i as u32)))
        .collect();
    let programs = model
        .constraints()
        .iter()
        .map(|c| synthesize_program(&c.name, &c.task, &monitor_of))
        .collect();
    Ok((programs, monitor_of))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::model::ModelBuilder;
    use rtcg_core::task::TaskGraphBuilder;

    #[test]
    fn chain_program_order_and_sends() {
        let mut b = ModelBuilder::new();
        let u = b.element("u", 1);
        let v = b.element("v", 1);
        b.channel(u, v);
        let tg = TaskGraphBuilder::new()
            .op("first", u)
            .op("second", v)
            .edge("first", "second")
            .build()
            .unwrap();
        let p = synthesize_program("c", &tg, &BTreeMap::new());
        // call u; send u->v; call v
        assert_eq!(p.stmts.len(), 3);
        assert!(matches!(&p.stmts[0], Stmt::Call { label, .. } if label == "first"));
        assert!(matches!(&p.stmts[1], Stmt::Send { .. }));
        assert!(matches!(&p.stmts[2], Stmt::Call { label, .. } if label == "second"));
        assert!(p.monitors_well_bracketed());
        drop(b);
    }

    #[test]
    fn monitors_wrap_shared_calls() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let (programs, monitors) = synthesize_programs(&m).unwrap();
        assert_eq!(programs.len(), 3);
        // fS and fK shared → two monitors
        assert_eq!(monitors.len(), 2);
        // the x-chain program brackets its fS call
        let px = &programs[0];
        assert!(px.monitors_well_bracketed());
        let fs = m.comm().lookup("fS").unwrap();
        let fs_mon = monitors[&fs];
        let pos_acq = px
            .stmts
            .iter()
            .position(|s| *s == Stmt::Acquire(fs_mon))
            .expect("acquire present");
        assert!(matches!(
            &px.stmts[pos_acq + 1],
            Stmt::Call { element, .. } if *element == fs
        ));
        assert_eq!(px.stmts[pos_acq + 2], Stmt::Release(fs_mon));
    }

    #[test]
    fn computation_time_matches_constraint() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let (programs, _) = synthesize_programs(&m).unwrap();
        for (prog, c) in programs.iter().zip(m.constraints()) {
            assert_eq!(
                prog.computation_time(m.comm()).unwrap(),
                c.computation_time(m.comm()).unwrap(),
                "{}",
                c.name
            );
        }
    }

    #[test]
    fn programs_render() {
        let (m, _) = rtcg_core::mok_example::default_model();
        let (programs, _) = synthesize_programs(&m).unwrap();
        let text = programs[2].display(m.comm()).unwrap();
        assert!(text.contains("process z-chain"));
        assert!(text.contains("call fZ()"));
        assert!(text.contains("send fZ -> fS"));
    }

    #[test]
    fn parallel_ops_all_emitted() {
        let mut b = ModelBuilder::new();
        let u = b.element("u", 1);
        let v = b.element("v", 1);
        let tg = TaskGraphBuilder::new()
            .op("u", u)
            .op("v", v)
            .build()
            .unwrap();
        let p = synthesize_program("c", &tg, &BTreeMap::new());
        assert_eq!(p.call_count(), 2);
        assert!(!p.stmts.iter().any(|s| matches!(s, Stmt::Send { .. })));
        drop(b);
    }
}
