//! Error type for program synthesis.

use rtcg_core::constraint::ConstraintId;
use std::fmt;

/// Errors produced by synthesis transforms.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// Merging the given constraints would create a precedence cycle
    /// (their shared operations are ordered inconsistently).
    MergeCreatesCycle {
        /// The constraints whose merge failed.
        constraints: Vec<ConstraintId>,
    },
    /// The constraint list for a merge was empty.
    NothingToMerge,
    /// A constraint id was out of range.
    UnknownConstraint(ConstraintId),
    /// A model-level error surfaced during synthesis.
    Model(rtcg_core::ModelError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::MergeCreatesCycle { constraints } => {
                write!(f, "merging constraints {constraints:?} creates a cycle")
            }
            SynthError::NothingToMerge => write!(f, "no constraints given to merge"),
            SynthError::UnknownConstraint(c) => write!(f, "unknown constraint {c:?}"),
            SynthError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rtcg_core::ModelError> for SynthError {
    fn from(e: rtcg_core::ModelError) -> Self {
        SynthError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_subject() {
        let e = SynthError::MergeCreatesCycle {
            constraints: vec![ConstraintId::new(0), ConstraintId::new(1)],
        };
        assert!(e.to_string().contains("cycle"));
        assert!(SynthError::NothingToMerge.to_string().contains("merge"));
    }
}
