//! Program-level software pipelining: shrinking critical sections.
//!
//! "To improve efficiency, we can reduce the size of critical sections by
//! software pipelining, i.e., decomposing a functional element into a
//! chain of sub-functions each of which has the same computation time."
//!
//! [`pipeline_program`] rewrites a straight-line program over a pipelined
//! model (see [`rtcg_core::heuristic::pipeline`]): each monitored call to
//! a split element becomes a chain of stage calls, *each stage bracketed
//! by its own monitor acquire/release*, so the longest critical section
//! shrinks from the element's full weight to one tick.
//! [`max_critical_section`] measures the effect.

use crate::ir::{MonitorId, Program, Stmt};
use rtcg_core::heuristic::pipeline::Pipelined;
use rtcg_core::model::CommGraph;
use std::collections::BTreeMap;

/// Rewrites `program` (written against the *original* model) into the
/// pipelined model's element space: calls to split elements become stage
/// chains; monitored calls get per-stage brackets; sends re-attach to the
/// boundary stages. `monitor_of` is keyed by **original** element ids.
pub fn pipeline_program(
    program: &Program,
    pipelined: &Pipelined,
    monitor_of: &BTreeMap<rtcg_core::model::ElementId, MonitorId>,
) -> Program {
    let _span = rtcg_obs::span!("synth.pipeline_program", "synthesis");
    let mut out = Program::new(program.name.clone());
    for stmt in &program.stmts {
        match stmt {
            Stmt::Call { label, element } => {
                let stages = pipelined
                    .stages_of(*element)
                    .expect("program element exists in pipelined model");
                let monitor = monitor_of.get(element).copied();
                for (k, &stage) in stages.iter().enumerate() {
                    if let Some(m) = monitor {
                        out.stmts.push(Stmt::Acquire(m));
                    }
                    out.stmts.push(Stmt::Call {
                        label: if stages.len() == 1 {
                            label.clone()
                        } else {
                            format!("{label}/{k}")
                        },
                        element: stage,
                    });
                    if let Some(m) = monitor {
                        out.stmts.push(Stmt::Release(m));
                    }
                }
            }
            Stmt::Send { from, to } => {
                let from_last = *pipelined
                    .stages_of(*from)
                    .expect("known element")
                    .last()
                    .expect("non-empty");
                let to_first = *pipelined
                    .stages_of(*to)
                    .expect("known element")
                    .first()
                    .expect("non-empty");
                out.stmts.push(Stmt::Send {
                    from: from_last,
                    to: to_first,
                });
            }
            // existing brackets are dropped: the rewrite re-brackets each
            // stage individually
            Stmt::Acquire(_) | Stmt::Release(_) => {}
        }
    }
    out
}

/// Longest critical section of a program, in ticks of computation between
/// an acquire and its matching release. Zero when no monitors are used.
pub fn max_critical_section(program: &Program, comm: &CommGraph) -> u64 {
    let mut max = 0u64;
    let mut current: Vec<(MonitorId, u64)> = Vec::new();
    for s in &program.stmts {
        match s {
            Stmt::Acquire(m) => current.push((*m, 0)),
            Stmt::Release(m) => {
                if let Some(pos) = current.iter().rposition(|(mm, _)| mm == m) {
                    let (_, acc) = current.remove(pos);
                    max = max.max(acc);
                }
            }
            Stmt::Call { element, .. } => {
                let w = comm.wcet(*element).unwrap_or(0);
                for (_, acc) in current.iter_mut() {
                    *acc += w;
                }
            }
            Stmt::Send { .. } => {}
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::straightline::synthesize_programs;
    use rtcg_core::heuristic::pipeline::pipeline_model;
    use rtcg_core::model::ModelBuilder;
    use rtcg_core::task::TaskGraphBuilder;

    /// Model with a heavy shared element s(3) used by two constraints.
    fn heavy_shared() -> rtcg_core::model::Model {
        let mut b = ModelBuilder::new();
        let x = b.element("x", 1);
        let y = b.element("y", 1);
        let s = b.element("s", 3);
        b.channel(x, s).channel(y, s);
        let tx = TaskGraphBuilder::new()
            .op("x", x)
            .op("s", s)
            .edge("x", "s")
            .build()
            .unwrap();
        let ty = TaskGraphBuilder::new()
            .op("y", y)
            .op("s", s)
            .edge("y", "s")
            .build()
            .unwrap();
        b.periodic("cx", tx, 12, 12);
        b.periodic("cy", ty, 12, 12);
        b.build().unwrap()
    }

    #[test]
    fn critical_section_shrinks_to_unit() {
        let m = heavy_shared();
        let (programs, monitors) = synthesize_programs(&m).unwrap();
        // before pipelining: the monitored s-call holds the lock 3 ticks
        assert_eq!(max_critical_section(&programs[0], m.comm()), 3);

        let pipelined = pipeline_model(&m).unwrap();
        let rewritten = pipeline_program(&programs[0], &pipelined, &monitors);
        assert!(rewritten.monitors_well_bracketed());
        assert_eq!(
            max_critical_section(&rewritten, pipelined.model.comm()),
            1,
            "per-stage brackets shrink the critical section to one tick"
        );
        // total work unchanged
        assert_eq!(
            rewritten.computation_time(pipelined.model.comm()).unwrap(),
            programs[0].computation_time(m.comm()).unwrap()
        );
    }

    #[test]
    fn stage_calls_are_chained_and_labeled() {
        let m = heavy_shared();
        let (programs, monitors) = synthesize_programs(&m).unwrap();
        let pipelined = pipeline_model(&m).unwrap();
        let rewritten = pipeline_program(&programs[0], &pipelined, &monitors);
        let labels: Vec<&str> = rewritten
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Call { label, .. } => Some(label.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(labels, vec!["x", "s/0", "s/1", "s/2"]);
    }

    #[test]
    fn sends_reattach_to_boundary_stages() {
        let m = heavy_shared();
        let (programs, monitors) = synthesize_programs(&m).unwrap();
        let pipelined = pipeline_model(&m).unwrap();
        let rewritten = pipeline_program(&programs[0], &pipelined, &monitors);
        let comm = pipelined.model.comm();
        let send = rewritten
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Send { from, to } => Some((*from, *to)),
                _ => None,
            })
            .expect("send present");
        assert_eq!(comm.name(send.0).unwrap(), "x");
        assert_eq!(comm.name(send.1).unwrap(), "s/0");
    }

    #[test]
    fn unmonitored_programs_have_zero_critical_section() {
        let mut b = ModelBuilder::new();
        let u = b.element("u", 2);
        let tg = TaskGraphBuilder::new().op("u", u).build().unwrap();
        b.periodic("c", tg, 8, 8);
        let m = b.build().unwrap();
        let (programs, monitors) = synthesize_programs(&m).unwrap();
        assert!(monitors.is_empty());
        assert_eq!(max_critical_section(&programs[0], m.comm()), 0);
    }
}
