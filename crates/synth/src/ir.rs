//! Straight-line program intermediate representation.
//!
//! A synthesized process body is a sequence of statements: calls to
//! functional elements, data sends along communication paths, and monitor
//! acquire/release brackets around calls to shared elements. The IR is
//! deliberately flat — the paper's "straight-line program".

use crate::error::SynthError;
use rtcg_core::model::{CommGraph, ElementId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a monitor (one per shared functional element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MonitorId(pub u32);

/// One statement of a straight-line program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// Execute a functional element (one operation of the task graph).
    Call {
        /// Operation label from the task graph (for diagnostics).
        label: String,
        /// Element to execute.
        element: ElementId,
    },
    /// Transmit the latest output of `from` to `to` (a task-graph edge).
    Send {
        /// Producing element.
        from: ElementId,
        /// Consuming element.
        to: ElementId,
    },
    /// Enter the critical section of a monitor.
    Acquire(MonitorId),
    /// Leave the critical section of a monitor.
    Release(MonitorId),
}

/// A straight-line program: the body of one synthesized process.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Name (usually the source constraint's name).
    pub name: String,
    /// Statement sequence.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            stmts: Vec::new(),
        }
    }

    /// Total computation time of the program: the sum of weights of all
    /// called elements (sends and monitor operations are free, as in the
    /// paper's single-processor model).
    pub fn computation_time(&self, comm: &CommGraph) -> Result<u64, rtcg_core::ModelError> {
        let mut total = 0;
        for s in &self.stmts {
            if let Stmt::Call { element, .. } = s {
                total += comm.wcet(*element)?;
            }
        }
        Ok(total)
    }

    /// Number of `Call` statements.
    pub fn call_count(&self) -> usize {
        self.stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Call { .. }))
            .count()
    }

    /// Checks structural well-formedness: monitor brackets are properly
    /// nested and non-overlapping, and every acquire is released.
    pub fn monitors_well_bracketed(&self) -> bool {
        let mut stack: Vec<MonitorId> = Vec::new();
        for s in &self.stmts {
            match s {
                Stmt::Acquire(m) => {
                    if stack.contains(m) {
                        return false; // re-entrant acquire
                    }
                    stack.push(*m);
                }
                Stmt::Release(m) if stack.pop() != Some(*m) => {
                    return false; // mismatched release
                }
                _ => {}
            }
        }
        stack.is_empty()
    }

    /// Pretty-prints the program with element names resolved. Errors
    /// if the program references an element the graph does not contain.
    pub fn display(&self, comm: &CommGraph) -> Result<String, SynthError> {
        let mut out = String::new();
        use std::fmt::Write;
        let _ = writeln!(out, "process {} {{", self.name);
        let mut indent = 1usize;
        for s in &self.stmts {
            match s {
                Stmt::Acquire(m) => {
                    let _ = writeln!(out, "{}acquire monitor_{};", "  ".repeat(indent), m.0);
                    indent += 1;
                }
                Stmt::Release(m) => {
                    indent = indent.saturating_sub(1).max(1);
                    let _ = writeln!(out, "{}release monitor_{};", "  ".repeat(indent), m.0);
                }
                Stmt::Call { label, element } => {
                    let _ = writeln!(
                        out,
                        "{}call {}();   // op {}",
                        "  ".repeat(indent),
                        comm.name(*element).map_err(SynthError::from)?,
                        label
                    );
                }
                Stmt::Send { from, to } => {
                    let _ = writeln!(
                        out,
                        "{}send {} -> {};",
                        "  ".repeat(indent),
                        comm.name(*from).map_err(SynthError::from)?,
                        comm.name(*to).map_err(SynthError::from)?
                    );
                }
            }
        }
        out.push_str("}\n");
        Ok(out)
    }
}

impl fmt::Display for MonitorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "monitor_{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::model::CommGraph;

    fn comm() -> (CommGraph, ElementId, ElementId) {
        let mut g = CommGraph::new();
        let a = g.add_element("fa", 2).unwrap();
        let b = g.add_element("fb", 1).unwrap();
        g.add_channel(a, b).unwrap();
        (g, a, b)
    }

    #[test]
    fn computation_time_counts_calls_only() {
        let (g, a, b) = comm();
        let p = Program {
            name: "p".into(),
            stmts: vec![
                Stmt::Call {
                    label: "a".into(),
                    element: a,
                },
                Stmt::Send { from: a, to: b },
                Stmt::Call {
                    label: "b".into(),
                    element: b,
                },
            ],
        };
        assert_eq!(p.computation_time(&g).unwrap(), 3);
        assert_eq!(p.call_count(), 2);
    }

    #[test]
    fn bracket_checking() {
        let (_, a, _) = comm();
        let call = Stmt::Call {
            label: "a".into(),
            element: a,
        };
        let ok = Program {
            name: "ok".into(),
            stmts: vec![
                Stmt::Acquire(MonitorId(0)),
                call.clone(),
                Stmt::Release(MonitorId(0)),
            ],
        };
        assert!(ok.monitors_well_bracketed());

        let unclosed = Program {
            name: "bad".into(),
            stmts: vec![Stmt::Acquire(MonitorId(0)), call.clone()],
        };
        assert!(!unclosed.monitors_well_bracketed());

        let crossed = Program {
            name: "bad".into(),
            stmts: vec![
                Stmt::Acquire(MonitorId(0)),
                Stmt::Acquire(MonitorId(1)),
                Stmt::Release(MonitorId(0)),
                Stmt::Release(MonitorId(1)),
            ],
        };
        assert!(!crossed.monitors_well_bracketed());

        let reentrant = Program {
            name: "bad".into(),
            stmts: vec![
                Stmt::Acquire(MonitorId(0)),
                Stmt::Acquire(MonitorId(0)),
                Stmt::Release(MonitorId(0)),
                Stmt::Release(MonitorId(0)),
            ],
        };
        assert!(!reentrant.monitors_well_bracketed());
    }

    #[test]
    fn display_renders_structure() {
        let (g, a, b) = comm();
        let p = Program {
            name: "xchain".into(),
            stmts: vec![
                Stmt::Acquire(MonitorId(0)),
                Stmt::Call {
                    label: "a".into(),
                    element: a,
                },
                Stmt::Release(MonitorId(0)),
                Stmt::Send { from: a, to: b },
            ],
        };
        let text = p.display(&g).unwrap();
        assert!(text.contains("process xchain"));
        assert!(text.contains("acquire monitor_0"));
        assert!(text.contains("call fa()"));
        assert!(text.contains("send fa -> fb"));
    }

    #[test]
    fn unknown_element_errors() {
        let (g, ..) = comm();
        let p = Program {
            name: "p".into(),
            stmts: vec![Stmt::Call {
                label: "x".into(),
                element: ElementId::new(55),
            }],
        };
        assert!(p.computation_time(&g).is_err());
    }
}
