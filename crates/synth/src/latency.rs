//! Latency synthesis with shared-operation merging — the paper's full
//! pitch.
//!
//! "We introduce the latency scheduling technique for meeting
//! asynchronous timing constraints which can take advantage of
//! operations common to two or more task graphs." The plain EDF-based
//! generator in [`rtcg_core::heuristic`] schedules each constraint as a
//! separate virtual task and therefore re-executes shared elements once
//! per constraint. [`latency_synthesize`] first *merges* same-period
//! periodic constraints into one task graph (one execution serves all of
//! them), synthesizes over the merged model, and verifies the resulting
//! table against the **original** model's exact semantics — the checker
//! credits a shared instance to every constraint that can use it, so the
//! verified guarantee is for the un-merged constraints the user wrote.

use crate::error::SynthError;
use crate::merge::merge_constraints;
use rtcg_core::constraint::{ConstraintId, ConstraintKind, TimingConstraint};
use rtcg_core::heuristic::{pipeline_model, synthesize_with, SynthesisConfig};
use rtcg_core::model::Model;
use rtcg_core::schedule::StaticSchedule;
use std::collections::BTreeMap;

/// Result of merged latency synthesis.
#[derive(Debug, Clone)]
pub struct LatencyOutcome {
    /// The verified feasible static schedule.
    pub schedule: StaticSchedule,
    /// The model the schedule's element ids refer to — the pipelined
    /// transform of the *original* model. Feasibility of `schedule` was
    /// verified against this model's full constraint set.
    pub analysis_model: Model,
    /// Which core strategy produced the schedule.
    pub strategy: &'static str,
    /// How many constraint groups were merged (0 = no sharing found).
    pub groups_merged: usize,
}

/// Synthesizes a static schedule for `model`, merging same-period
/// periodic constraints first so shared operations execute once per
/// round (see module docs).
pub fn latency_synthesize(model: &Model) -> Result<LatencyOutcome, SynthError> {
    latency_synthesize_with(model, SynthesisConfig::default())
}

/// [`latency_synthesize`] with explicit core-synthesis configuration.
pub fn latency_synthesize_with(
    model: &Model,
    config: SynthesisConfig,
) -> Result<LatencyOutcome, SynthError> {
    let _span = rtcg_obs::span!("synth.latency", "synthesis");
    model.validate().map_err(SynthError::from)?;

    // group periodic constraints by period
    let mut groups: BTreeMap<u64, Vec<ConstraintId>> = BTreeMap::new();
    let mut singles: Vec<ConstraintId> = Vec::new();
    for (id, c) in model.constraints_enumerated() {
        match c.kind {
            ConstraintKind::Periodic => groups.entry(c.period).or_default().push(id),
            ConstraintKind::Asynchronous => singles.push(id),
        }
    }

    let mut merged_constraints: Vec<TimingConstraint> = Vec::new();
    let mut groups_merged = 0usize;
    for (period, ids) in &groups {
        if ids.len() >= 2 {
            match merge_constraints(model, ids) {
                Ok(merged) => {
                    let deadline = ids
                        .iter()
                        .map(|&id| model.constraint(id).expect("valid id").deadline)
                        .min()
                        .expect("non-empty group");
                    merged_constraints.push(TimingConstraint {
                        name: format!("merged-p{period}"),
                        task: merged.task,
                        period: *period,
                        deadline,
                        kind: ConstraintKind::Periodic,
                    });
                    groups_merged += 1;
                    continue;
                }
                Err(SynthError::MergeCreatesCycle { .. }) => {
                    // fall through: keep the group unmerged
                }
                Err(e) => return Err(e),
            }
        }
        for &id in ids {
            merged_constraints.push(model.constraint(id).expect("valid id").clone());
        }
    }
    for &id in &singles {
        merged_constraints.push(model.constraint(id).expect("valid id").clone());
    }

    rtcg_obs::counter!("synth.groups_merged", groups_merged as u64);
    let merged_model =
        Model::new(model.comm().clone(), merged_constraints).map_err(SynthError::from)?;

    // synthesize over the merged model
    let outcome = synthesize_with(&merged_model, config).map_err(SynthError::from)?;

    // verify against the ORIGINAL model's constraints (pipelined so the
    // element ids line up with the schedule's): pipeline_model maps
    // elements identically for identical communication graphs.
    let analysis = pipeline_model(model).map_err(SynthError::from)?;
    let report = outcome
        .schedule
        .feasibility(&analysis.model)
        .map_err(SynthError::from)?;
    if !report.is_feasible() {
        return Err(SynthError::Model(rtcg_core::ModelError::Infeasible {
            reason: "merged schedule failed verification against the original constraints"
                .to_string(),
        }));
    }
    Ok(LatencyOutcome {
        schedule: outcome.schedule,
        analysis_model: analysis.model,
        strategy: outcome.strategy,
        groups_merged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::model::ModelBuilder;
    use rtcg_core::task::TaskGraphBuilder;

    /// k same-period chains through a shared s-element core.
    fn shared(k: usize, s: usize, period: u64) -> Model {
        let mut b = ModelBuilder::new();
        let core: Vec<_> = (0..s).map(|j| b.element(&format!("core{j}"), 1)).collect();
        for w in core.windows(2) {
            b.channel(w[0], w[1]);
        }
        for i in 0..k {
            let private = b.element(&format!("in{i}"), 1);
            b.channel(private, core[0]);
            let mut tb = TaskGraphBuilder::new().op("in", private);
            for (j, &c) in core.iter().enumerate() {
                tb = tb.op(&format!("c{j}"), c);
            }
            tb = tb.edge("in", "c0");
            for j in 1..s {
                tb = tb.edge(&format!("c{}", j - 1), &format!("c{j}"));
            }
            b.periodic(&format!("chain{i}"), tb.build().unwrap(), period, period);
        }
        b.build().unwrap()
    }

    #[test]
    fn merged_synthesis_shares_the_core() {
        let model = shared(3, 2, 24);
        let out = latency_synthesize(&model).unwrap();
        assert_eq!(out.groups_merged, 1);
        // busy fraction tracks the merged demand (3 privates + 2 core =
        // 5 per 24 ≈ 0.208), not the naive demand (3·3/24 = 0.375)
        let busy = out
            .schedule
            .busy_fraction(out.analysis_model.comm())
            .unwrap();
        assert!(
            busy < 0.3,
            "expected shared-core busy fraction ≈ 0.21, got {busy}"
        );
        // and the original constraints are verified
        let report = out.schedule.feasibility(&out.analysis_model).unwrap();
        assert!(report.is_feasible());
    }

    #[test]
    fn beats_unmerged_synthesis_on_busy_fraction() {
        let model = shared(4, 4, 64);
        let merged = latency_synthesize(&model).unwrap();
        let plain = rtcg_core::heuristic::synthesize(&model).unwrap();
        let mb = merged
            .schedule
            .busy_fraction(merged.analysis_model.comm())
            .unwrap();
        let pb = plain.schedule.busy_fraction(plain.model().comm()).unwrap();
        assert!(mb < pb, "merged {mb} should beat unmerged {pb}");
    }

    #[test]
    fn different_periods_not_merged() {
        let mut b = ModelBuilder::new();
        let x = b.element("x", 1);
        let y = b.element("y", 1);
        let tx = TaskGraphBuilder::new().op("x", x).build().unwrap();
        let ty = TaskGraphBuilder::new().op("y", y).build().unwrap();
        b.periodic("cx", tx, 8, 8);
        b.periodic("cy", ty, 16, 16);
        let m = b.build().unwrap();
        let out = latency_synthesize(&m).unwrap();
        assert_eq!(out.groups_merged, 0);
        assert!(out
            .schedule
            .feasibility(&out.analysis_model)
            .unwrap()
            .is_feasible());
    }

    #[test]
    fn asynchronous_constraints_pass_through() {
        let mut b = ModelBuilder::new();
        let x = b.element("x", 1);
        let z = b.element("z", 1);
        let tx = TaskGraphBuilder::new().op("x", x).build().unwrap();
        let tx2 = TaskGraphBuilder::new().op("x", x).build().unwrap();
        let tz = TaskGraphBuilder::new().op("z", z).build().unwrap();
        b.periodic("c1", tx, 8, 8);
        b.periodic("c2", tx2, 8, 8);
        b.asynchronous("az", tz, 6, 6);
        let m = b.build().unwrap();
        let out = latency_synthesize(&m).unwrap();
        assert_eq!(out.groups_merged, 1);
        let report = out.schedule.feasibility(&out.analysis_model).unwrap();
        assert!(report.is_feasible());
    }

    #[test]
    fn conflicting_group_falls_back_unmerged() {
        // same period but opposite op orders: merge would cycle, so the
        // group stays unmerged and plain synthesis handles it
        let mut b = ModelBuilder::new();
        let u = b.element("u", 1);
        let v = b.element("v", 1);
        b.channel(u, v).channel(v, u);
        let ta = TaskGraphBuilder::new()
            .op("u", u)
            .op("v", v)
            .edge("u", "v")
            .build()
            .unwrap();
        let tb = TaskGraphBuilder::new()
            .op("v", v)
            .op("u", u)
            .edge("v", "u")
            .build()
            .unwrap();
        b.periodic("a", ta, 12, 12);
        b.periodic("b", tb, 12, 12);
        let m = b.build().unwrap();
        let out = latency_synthesize(&m).unwrap();
        assert_eq!(out.groups_merged, 0);
        assert!(out
            .schedule
            .feasibility(&out.analysis_model)
            .unwrap()
            .is_feasible());
    }

    #[test]
    fn mok_example_merges_xy_at_equal_periods() {
        let params = rtcg_core::mok_example::Params {
            p_y: 20,
            d_y: 20,
            ..Default::default()
        };
        let (m, _) = rtcg_core::mok_example::build(params).unwrap();
        let out = latency_synthesize(&m).unwrap();
        assert_eq!(out.groups_merged, 1, "x-chain and y-chain share fS, fK");
        let report = out.schedule.feasibility(&out.analysis_model).unwrap();
        assert!(report.is_feasible(), "{report}");
    }
}
