//! # rtcg-synth — program synthesis for the graph-based model
//!
//! The paper's "Synthesis Techniques" section, executable:
//!
//! * [`ir`] — a straight-line program IR: element calls, data sends,
//!   monitor acquire/release.
//! * [`straightline`] — "the body of `T'` consists of a straight-line
//!   program which is any topological sort of the operations in the task
//!   graph `C`", with monitors inserted around every functional element
//!   shared by two or more constraints (enforcing pipeline ordering).
//! * [`pipelining`] — "to improve efficiency, we can reduce the size of
//!   critical sections by software pipelining": the program-level
//!   transform that splits a monitored call into a chain of unit-stage
//!   calls, each with its own short critical section.
//! * [`merge`] — the shared-operation merging that motivates latency
//!   scheduling: "if `p_x` is equal to `p_y` … there is no reason why
//!   `f_S` should be executed twice per period". Merges compatible task
//!   graphs into one, unifying shared operations.
//! * [`codegen`] — pseudo-code emission for synthesized processes and the
//!   table-driven run-time scheduler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod error;
pub mod ir;
pub mod latency;
pub mod merge;
pub mod pipelining;
pub mod straightline;

pub use error::SynthError;
pub use ir::{MonitorId, Program, Stmt};
pub use latency::{latency_synthesize, LatencyOutcome};
pub use merge::{merge_constraints, MergedTask};
pub use pipelining::{max_critical_section, pipeline_program};
pub use straightline::{synthesize_program, synthesize_programs};
