//! Cross-checking the decomposition against the exact m-lane search.
//!
//! [`synthesize_multi`] certifies a model by composing verified
//! per-stage latencies — a *sufficient* check: when it says ok, a
//! schedule exists, but when it fails, a feasible multiprocessor
//! schedule may still exist (the slicing can cut a chain badly). The
//! exact lane search in [`rtcg_core::feasibility::find_feasible_lanes`]
//! answers the complementary question directly: does any m-row lane
//! matrix (rows up to a bounded length) satisfy the model?
//!
//! [`cross_check`] runs both on the same model and classifies their
//! agreement. The interesting divergence is
//! [`Agreement::DecomposeOnly`]: the conservative composition claims
//! feasibility while the complete bounded search proves no lane matrix
//! of the given size exists — that combination indicates a soundness
//! bug in one of the two pipelines and is worth flagging loudly.
//! [`Agreement::LanesOnly`] is expected slack: the decomposition's
//! slicing was too coarse for a model the exact search can schedule.

use crate::decompose::synthesize_multi;
use crate::error::MultiError;
use crate::partition::balance_load;
use rtcg_core::feasibility::{find_feasible_lanes, LaneSearchOutcome, SearchConfig};
use rtcg_core::heuristic::SynthesisConfig;
use rtcg_core::model::Model;

/// How the two pipelines relate on one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agreement {
    /// Both certify the model: the expected positive case.
    BothFeasible,
    /// Both decline: the decomposition failed and no lane matrix exists
    /// within the search bound.
    BothNegative,
    /// Decomposition certifies the model but the complete bounded lane
    /// search found nothing — a red flag (see module docs).
    DecomposeOnly,
    /// Only the exact lane search schedules the model: the slicing was
    /// too conservative. Expected slack, not a bug.
    LanesOnly,
    /// The lane search exhausted its node budget before deciding, so
    /// no comparison is possible.
    Inconclusive,
}

/// Outcome of [`cross_check`].
#[derive(Debug)]
pub struct CrossCheck {
    /// Whether `synthesize_multi` produced an end-to-end certificate.
    pub decompose_ok: bool,
    /// The decomposition's failure reason, when it has one.
    pub decompose_error: Option<String>,
    /// The raw lane-search outcome (schedule and counters).
    pub lanes: LaneSearchOutcome,
    /// The classification of the two verdicts.
    pub agreement: Agreement,
}

/// Runs the decomposition (balanced placement over `m` processors) and
/// the exact `m`-lane search on `model`, and classifies how the two
/// verdicts relate. `MultiError` is returned only for structural
/// problems (invalid model, zero lanes); an *infeasible* sub-problem is
/// a verdict, not an error.
pub fn cross_check(
    model: &Model,
    m: usize,
    synthesis: SynthesisConfig,
    search: SearchConfig,
) -> Result<CrossCheck, MultiError> {
    let placement = balance_load(model, m)?;
    let (decompose_ok, decompose_error) = match synthesize_multi(model, &placement, synthesis) {
        Ok(out) => (out.all_ok(), None),
        Err(
            e @ (MultiError::DeadlineTooTight { .. } | MultiError::SubproblemInfeasible { .. }),
        ) => (false, Some(e.to_string())),
        Err(e) => return Err(e),
    };
    let lanes = find_feasible_lanes(model, m, search).map_err(MultiError::from)?;
    let agreement = match (
        decompose_ok,
        lanes.schedule.is_some(),
        lanes.exhausted_bound,
    ) {
        (_, false, false) => Agreement::Inconclusive,
        (true, true, _) => Agreement::BothFeasible,
        (true, false, true) => Agreement::DecomposeOnly,
        (false, true, _) => Agreement::LanesOnly,
        (false, false, true) => Agreement::BothNegative,
    };
    Ok(CrossCheck {
        decompose_ok,
        decompose_error,
        lanes,
        agreement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::model::ModelBuilder;
    use rtcg_core::task::TaskGraphBuilder;

    fn syn() -> SynthesisConfig {
        SynthesisConfig {
            max_hyperperiod: 200_000,
            game_state_budget: 50_000,
        }
    }

    fn srch(max_len: usize) -> SearchConfig {
        SearchConfig {
            max_len,
            node_budget: 5_000_000,
        }
    }

    /// Two independent single-op constraints with roomy deadlines:
    /// every pipeline certifies this.
    fn easy_pair() -> Model {
        let mut b = ModelBuilder::new();
        let a = b.element("a", 1);
        let c = b.element("c", 1);
        let ta = TaskGraphBuilder::new().op("a", a).build().unwrap();
        let tc = TaskGraphBuilder::new().op("c", c).build().unwrap();
        b.asynchronous("ca", ta, 10, 10);
        b.asynchronous("cc", tc, 10, 10);
        b.build().unwrap()
    }

    /// Two wcet-2 elements each demanding latency ≤ 3: infeasible on
    /// one processor (minimum achievable is 2·2−1 = 3 per element, but
    /// they contend), feasible on two lanes running them continuously.
    fn two_lane_only() -> Model {
        let mut b = ModelBuilder::new();
        let a = b.element("a", 2);
        let c = b.element("c", 2);
        let ta = TaskGraphBuilder::new().op("a", a).build().unwrap();
        let tc = TaskGraphBuilder::new().op("c", c).build().unwrap();
        b.asynchronous("ca", ta, 3, 3);
        b.asynchronous("cc", tc, 3, 3);
        b.build().unwrap()
    }

    #[test]
    fn easy_model_agrees_feasible() {
        let m = easy_pair();
        let out = cross_check(&m, 2, syn(), srch(3)).unwrap();
        assert!(out.decompose_ok);
        assert!(out.lanes.schedule.is_some());
        assert_eq!(out.agreement, Agreement::BothFeasible);
    }

    #[test]
    fn lane_search_covers_decomposition_slack() {
        // the exact lane search schedules this; whether the balanced
        // decomposition also certifies it depends on slicing, so the
        // acceptable classifications are BothFeasible and LanesOnly —
        // DecomposeOnly or BothNegative would be the flagged bug
        let m = two_lane_only();
        let out = cross_check(&m, 2, syn(), srch(2)).unwrap();
        assert!(out.lanes.schedule.is_some(), "{:?}", out.lanes);
        assert!(matches!(
            out.agreement,
            Agreement::BothFeasible | Agreement::LanesOnly
        ));
    }

    #[test]
    fn zero_lanes_is_structural_error() {
        let m = easy_pair();
        assert!(cross_check(&m, 0, syn(), srch(2)).is_err());
    }

    #[test]
    fn budget_starvation_is_inconclusive_or_decided() {
        // with a 1-node budget the search cannot finish on a model it
        // would otherwise have to enumerate
        let m = two_lane_only();
        let out = cross_check(
            &m,
            2,
            syn(),
            SearchConfig {
                max_len: 2,
                node_budget: 1,
            },
        )
        .unwrap();
        if out.lanes.schedule.is_none() {
            assert!(!out.lanes.exhausted_bound);
            assert_eq!(out.agreement, Agreement::Inconclusive);
        }
    }
}
