//! Cutting task graphs at processor boundaries and slicing deadlines.
//!
//! A constraint's operations are serialized into *stages* (maximal runs
//! of same-processor operations along the canonical topological order);
//! between consecutive stages, every task edge leaving the finished
//! stage becomes a *message* on the communication network. The
//! end-to-end deadline is split into per-stage and per-boundary slices:
//! each slice must cover at least twice its stage's computation time
//! (the single-processor feasibility threshold for an atomic recurrence,
//! cf. Theorem 3's `⌊d/2⌋ ≥ w` condition), and remaining slack is spread
//! over the stages proportionally to their computation.

use crate::error::MultiError;
use crate::partition::{Placement, ProcessorId};
use rtcg_core::constraint::ConstraintId;
use rtcg_core::model::Model;
use rtcg_core::task::OpId;
use rtcg_core::time::Time;

/// One same-processor stage of a constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// The source constraint.
    pub constraint: ConstraintId,
    /// Stage index along the chain (0-based).
    pub stage: usize,
    /// The processor the stage runs on.
    pub processor: ProcessorId,
    /// Operations of the stage, in topological order.
    pub ops: Vec<OpId>,
    /// Computation time of the stage.
    pub computation: Time,
    /// Deadline slice assigned to the stage.
    pub slice: Time,
}

/// The inter-processor transfer between stage `boundary` and
/// `boundary + 1` of a constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The source constraint.
    pub constraint: ConstraintId,
    /// Boundary index (after stage `boundary`).
    pub boundary: usize,
    /// Number of task-graph edges carried (each one data value).
    pub edges: usize,
    /// Deadline slice assigned to the transfer.
    pub slice: Time,
}

/// A constraint cut into fragments and messages with sliced deadlines.
#[derive(Debug, Clone)]
pub struct SlicedConstraint {
    /// The source constraint.
    pub constraint: ConstraintId,
    /// Stages in chain order.
    pub fragments: Vec<Fragment>,
    /// Boundaries in chain order (`fragments.len() - 1` of them).
    pub messages: Vec<Message>,
    /// Minimum end-to-end time the slicing needed.
    pub minimum: Time,
}

impl SlicedConstraint {
    /// Sum of all slices — never exceeds the original deadline.
    pub fn total_slices(&self) -> Time {
        self.fragments.iter().map(|f| f.slice).sum::<Time>()
            + self.messages.iter().map(|m| m.slice).sum::<Time>()
    }

    /// True when the whole constraint lives on one processor.
    pub fn is_local(&self) -> bool {
        self.fragments.len() == 1
    }
}

/// Slices every constraint of the model under the placement.
pub fn slice_constraints(
    model: &Model,
    placement: &Placement,
) -> Result<Vec<SlicedConstraint>, MultiError> {
    placement.validate_total(model)?;
    let comm = model.comm();
    let mut out = Vec::with_capacity(model.constraints().len());
    for (cid, c) in model.constraints_enumerated() {
        // stages: maximal same-processor runs along the topo order
        let order = c.task.topo_ops();
        let mut stages: Vec<(ProcessorId, Vec<OpId>)> = Vec::new();
        for op in order {
            let elem = c.task.element_of(op).expect("live op");
            let proc = placement.processor_of(elem)?;
            match stages.last_mut() {
                Some((p, ops)) if *p == proc => ops.push(op),
                _ => stages.push((proc, vec![op])),
            }
        }
        if stages.is_empty() {
            // an empty task graph: one empty local stage with full slice
            out.push(SlicedConstraint {
                constraint: cid,
                fragments: vec![],
                messages: vec![],
                minimum: 0,
            });
            continue;
        }
        // per-stage computation and per-boundary edge counts
        let computations: Vec<Time> = stages
            .iter()
            .map(|(_, ops)| {
                ops.iter()
                    .map(|&op| {
                        comm.wcet(c.task.element_of(op).expect("live op"))
                            .expect("validated model")
                    })
                    .sum()
            })
            .collect();
        let mut edge_counts: Vec<usize> = vec![0; stages.len().saturating_sub(1)];
        let stage_of_op = |op: OpId| -> usize {
            stages
                .iter()
                .position(|(_, ops)| ops.contains(&op))
                .expect("op in some stage")
        };
        for (u, v) in c.task.precedence_edges() {
            let (su, sv) = (stage_of_op(u), stage_of_op(v));
            if su != sv {
                // the edge is transmitted at the boundary after its source
                edge_counts[su] += 1;
                debug_assert!(sv > su, "topological stages");
            }
        }
        // minimum slices: 2·w per stage (w>0), 2·edges per boundary
        let stage_min: Vec<Time> = computations
            .iter()
            .map(|&w| if w == 0 { 0 } else { 2 * w })
            .collect();
        let msg_min: Vec<Time> = edge_counts.iter().map(|&e| 2 * e as Time).collect();
        let minimum: Time = stage_min.iter().sum::<Time>() + msg_min.iter().sum::<Time>();
        if minimum > c.deadline {
            return Err(MultiError::DeadlineTooTight {
                constraint: cid,
                needed: minimum,
                deadline: c.deadline,
            });
        }
        // distribute slack over stages AND boundaries proportionally to
        // their computation / transfer volume — starving the bus of
        // slack makes its sub-problem infeasible at high fan-out
        let slack = c.deadline - minimum;
        let total_w: Time = computations.iter().sum::<Time>()
            + edge_counts.iter().map(|&e| e as Time).sum::<Time>();
        let total_w = total_w.max(1);
        let mut stage_slices: Vec<Time> = stage_min.clone();
        let mut msg_slices: Vec<Time> = msg_min.clone();
        let mut given: Time = 0;
        for (k, &w) in computations.iter().enumerate() {
            let extra = slack * w / total_w;
            stage_slices[k] += extra;
            given += extra;
        }
        for (k, &e) in edge_counts.iter().enumerate() {
            let extra = slack * e as Time / total_w;
            msg_slices[k] += extra;
            given += extra;
        }
        // leftover (rounding) goes to the first stage with work
        if let Some(first) = stage_slices
            .iter_mut()
            .zip(&computations)
            .find(|(_, &w)| w > 0)
        {
            *first.0 += slack - given;
        }

        let fragments: Vec<Fragment> = stages
            .iter()
            .enumerate()
            .map(|(k, (proc, ops))| Fragment {
                constraint: cid,
                stage: k,
                processor: *proc,
                ops: ops.clone(),
                computation: computations[k],
                slice: stage_slices[k],
            })
            .collect();
        let messages: Vec<Message> = edge_counts
            .iter()
            .enumerate()
            .map(|(k, &edges)| Message {
                constraint: cid,
                boundary: k,
                edges,
                slice: msg_slices[k],
            })
            .collect();
        out.push(SlicedConstraint {
            constraint: cid,
            fragments,
            messages,
            minimum,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Placement;
    use rtcg_core::model::ModelBuilder;
    use rtcg_core::task::TaskGraphBuilder;

    /// chain a(1) -> b(2) -> c(1), deadline d; placement splits b onto
    /// processor 1.
    fn split_chain(d: u64) -> (Model, Placement) {
        let mut bld = ModelBuilder::new();
        let a = bld.element("a", 1);
        let b = bld.element("b", 2);
        let c = bld.element("c", 1);
        bld.channel(a, b).channel(b, c);
        let tg = TaskGraphBuilder::new()
            .op("a", a)
            .op("b", b)
            .op("c", c)
            .chain(&["a", "b", "c"])
            .build()
            .unwrap();
        bld.asynchronous("chain", tg, d, d);
        let m = bld.build().unwrap();
        let mut p = Placement::new(2).unwrap();
        p.assign(a, ProcessorId(0)).unwrap();
        p.assign(b, ProcessorId(1)).unwrap();
        p.assign(c, ProcessorId(0)).unwrap();
        (m, p)
    }

    #[test]
    fn three_stage_cut() {
        let (m, p) = split_chain(40);
        let sliced = slice_constraints(&m, &p).unwrap();
        let sc = &sliced[0];
        assert_eq!(sc.fragments.len(), 3);
        assert_eq!(sc.messages.len(), 2);
        assert_eq!(
            sc.fragments
                .iter()
                .map(|f| f.computation)
                .collect::<Vec<_>>(),
            vec![1, 2, 1]
        );
        assert_eq!(
            sc.fragments.iter().map(|f| f.processor).collect::<Vec<_>>(),
            vec![ProcessorId(0), ProcessorId(1), ProcessorId(0)]
        );
        assert!(sc.messages.iter().all(|m| m.edges == 1));
        // minimum = 2(1+2+1) + 2(1+1) = 12
        assert_eq!(sc.minimum, 12);
        assert!(sc.total_slices() <= 40);
        // every slice covers its stage's minimum
        for f in &sc.fragments {
            assert!(f.slice >= 2 * f.computation);
        }
        assert!(!sc.is_local());
    }

    #[test]
    fn slack_distributed_to_heavier_stages() {
        let (m, p) = split_chain(40);
        let sc = &slice_constraints(&m, &p).unwrap()[0];
        // stage b (w=2) gets at least as much as stages a and c (w=1)
        assert!(sc.fragments[1].slice >= sc.fragments[0].slice.max(sc.fragments[2].slice) - 1);
        // slack fully used: total equals deadline
        assert_eq!(sc.total_slices(), 40);
    }

    #[test]
    fn tight_deadline_rejected() {
        let (m, p) = split_chain(11); // minimum is 12
        assert!(matches!(
            slice_constraints(&m, &p),
            Err(MultiError::DeadlineTooTight {
                needed: 12,
                deadline: 11,
                ..
            })
        ));
    }

    #[test]
    fn local_constraint_single_fragment() {
        let (m, _) = split_chain(40);
        let ids: Vec<_> = m.comm().element_ids().collect();
        let mut p = Placement::new(2).unwrap();
        for &e in &ids {
            p.assign(e, ProcessorId(1)).unwrap();
        }
        let sc = &slice_constraints(&m, &p).unwrap()[0];
        assert!(sc.is_local());
        assert_eq!(sc.fragments.len(), 1);
        assert!(sc.messages.is_empty());
        assert_eq!(sc.fragments[0].slice, 40, "whole deadline stays local");
    }

    #[test]
    fn fan_in_edges_counted_per_boundary() {
        // x -> s, y -> s with x,y on cpu0 and s on cpu1: one stage pair,
        // boundary carries both edges
        let mut bld = ModelBuilder::new();
        let x = bld.element("x", 1);
        let y = bld.element("y", 1);
        let s = bld.element("s", 1);
        bld.channel(x, s).channel(y, s);
        let tg = TaskGraphBuilder::new()
            .op("x", x)
            .op("y", y)
            .op("s", s)
            .edge("x", "s")
            .edge("y", "s")
            .build()
            .unwrap();
        bld.asynchronous("fan", tg, 30, 30);
        let m = bld.build().unwrap();
        let mut p = Placement::new(2).unwrap();
        p.assign(x, ProcessorId(0)).unwrap();
        p.assign(y, ProcessorId(0)).unwrap();
        p.assign(s, ProcessorId(1)).unwrap();
        let sc = &slice_constraints(&m, &p).unwrap()[0];
        assert_eq!(sc.fragments.len(), 2);
        assert_eq!(sc.messages.len(), 1);
        assert_eq!(sc.messages[0].edges, 2);
    }

    #[test]
    fn unplaced_element_rejected() {
        let (m, _) = split_chain(40);
        let p = Placement::new(2).unwrap();
        assert!(matches!(
            slice_constraints(&m, &p),
            Err(MultiError::Unplaced(_))
        ));
    }
}
