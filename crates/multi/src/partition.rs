//! Element-to-processor placement.

use crate::error::MultiError;
use rtcg_core::model::{ElementId, Model};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a processor (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessorId(pub u32);

impl ProcessorId {
    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Checked construction from a `usize` index. A wrapped id would
    /// silently alias another processor, so out-of-range indices are a
    /// structured error, never a truncation.
    pub fn from_index(ix: usize) -> Result<Self, MultiError> {
        u32::try_from(ix)
            .map(ProcessorId)
            .map_err(|_| MultiError::IndexOverflow {
                what: "processor index",
                value: ix as u128,
            })
    }
}

/// An assignment of functional elements to processors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    n_processors: usize,
    of: BTreeMap<ElementId, ProcessorId>,
}

impl Placement {
    /// Creates an empty placement over `n` processors.
    pub fn new(n: usize) -> Result<Self, MultiError> {
        if n == 0 {
            return Err(MultiError::NoProcessors);
        }
        Ok(Placement {
            n_processors: n,
            of: BTreeMap::new(),
        })
    }

    /// Number of processors.
    pub fn n_processors(&self) -> usize {
        self.n_processors
    }

    /// Assigns `element` to `processor`.
    pub fn assign(&mut self, element: ElementId, processor: ProcessorId) -> Result<(), MultiError> {
        if processor.index() >= self.n_processors {
            return Err(MultiError::UnknownProcessor(processor.index()));
        }
        self.of.insert(element, processor);
        Ok(())
    }

    /// The processor an element is placed on.
    pub fn processor_of(&self, element: ElementId) -> Result<ProcessorId, MultiError> {
        self.of
            .get(&element)
            .copied()
            .ok_or(MultiError::Unplaced(element))
    }

    /// All elements placed on `processor`, in id order.
    pub fn elements_on(&self, processor: ProcessorId) -> Vec<ElementId> {
        self.of
            .iter()
            .filter(|(_, &p)| p == processor)
            .map(|(&e, _)| e)
            .collect()
    }

    /// Checks that every element of the model is placed.
    pub fn validate_total(&self, model: &Model) -> Result<(), MultiError> {
        for id in model.comm().element_ids() {
            self.processor_of(id)?;
        }
        Ok(())
    }
}

/// Long-run demand of one element: `w(e) · max_i n_i(e)/d_i` — the same
/// sharing-aware quantity the feasibility bounds use.
fn demand(model: &Model, element: ElementId) -> f64 {
    let w = model.comm().wcet(element).unwrap_or(0) as f64;
    let mut max_rate = 0.0f64;
    for c in model.constraints() {
        if let Some(&count) = c.task.element_usage().get(&element) {
            let r = count as f64 / c.deadline as f64;
            if r > max_rate {
                max_rate = r;
            }
        }
    }
    w * max_rate
}

/// Greedy load balancing: elements sorted by decreasing demand, each
/// assigned to the currently least-loaded processor (ties: lowest id).
/// Deterministic.
pub fn balance_load(model: &Model, n_processors: usize) -> Result<Placement, MultiError> {
    let mut placement = Placement::new(n_processors)?;
    let mut elems: Vec<(ElementId, f64)> = model
        .comm()
        .element_ids()
        .map(|e| (e, demand(model, e)))
        .collect();
    elems.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut load = vec![0.0f64; n_processors];
    for (e, d) in elems {
        let target = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
            .map(|(i, _)| i)
            .expect("n >= 1");
        placement.assign(e, ProcessorId::from_index(target)?)?;
        load[target] += d;
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcg_core::model::ModelBuilder;
    use rtcg_core::task::TaskGraphBuilder;

    fn model4() -> Model {
        let mut b = ModelBuilder::new();
        for i in 0..4 {
            let e = b.element(&format!("e{i}"), (i + 1) as u64);
            let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
            b.asynchronous(&format!("c{i}"), tg, 40, 40);
        }
        b.build().unwrap()
    }

    #[test]
    fn zero_processors_rejected() {
        assert_eq!(Placement::new(0), Err(MultiError::NoProcessors));
    }

    #[test]
    fn assign_and_lookup() {
        let m = model4();
        let ids: Vec<_> = m.comm().element_ids().collect();
        let mut p = Placement::new(2).unwrap();
        p.assign(ids[0], ProcessorId(0)).unwrap();
        p.assign(ids[1], ProcessorId(1)).unwrap();
        assert_eq!(p.processor_of(ids[0]).unwrap(), ProcessorId(0));
        assert_eq!(p.processor_of(ids[1]).unwrap(), ProcessorId(1));
        assert!(matches!(
            p.processor_of(ids[2]),
            Err(MultiError::Unplaced(_))
        ));
        assert!(matches!(
            p.assign(ids[2], ProcessorId(5)),
            Err(MultiError::UnknownProcessor(5))
        ));
        assert!(p.validate_total(&m).is_err());
    }

    #[test]
    fn balance_is_total_and_deterministic() {
        let m = model4();
        let p1 = balance_load(&m, 2).unwrap();
        let p2 = balance_load(&m, 2).unwrap();
        assert_eq!(p1, p2);
        p1.validate_total(&m).unwrap();
        // both processors used
        assert!(!p1.elements_on(ProcessorId(0)).is_empty());
        assert!(!p1.elements_on(ProcessorId(1)).is_empty());
    }

    #[test]
    fn balance_splits_heavy_elements_apart() {
        // demands: e3 (4/40·4=0.4), e2 (0.3...) — wait, each element in
        // exactly one constraint: demand_i = w_i²/40? No: w·(1/d)·1 =
        // (i+1)/40. Heaviest two must land on different processors.
        let m = model4();
        let ids: Vec<_> = m.comm().element_ids().collect();
        let p = balance_load(&m, 2).unwrap();
        assert_ne!(
            p.processor_of(ids[3]).unwrap(),
            p.processor_of(ids[2]).unwrap()
        );
    }

    #[test]
    fn single_processor_takes_all() {
        let m = model4();
        let p = balance_load(&m, 1).unwrap();
        assert_eq!(p.elements_on(ProcessorId(0)).len(), 4);
        p.validate_total(&m).unwrap();
    }
}
