//! Error type for multiprocessor decomposition.

use rtcg_core::constraint::ConstraintId;
use rtcg_core::model::ElementId;
use std::fmt;

/// Errors from partitioning, slicing and multiprocessor synthesis.
#[derive(Debug, Clone, PartialEq)]
pub enum MultiError {
    /// Zero processors requested.
    NoProcessors,
    /// An element was not assigned to any processor.
    Unplaced(ElementId),
    /// A processor id is out of range.
    UnknownProcessor(usize),
    /// A constraint's deadline is too small to slice across its
    /// fragments and messages (every stage needs at least its
    /// computation time; every message at least one tick).
    DeadlineTooTight {
        /// The constraint that cannot be sliced.
        constraint: ConstraintId,
        /// Minimum end-to-end time the fragment chain needs.
        needed: u64,
        /// The available deadline.
        deadline: u64,
    },
    /// A sub-problem failed to synthesize.
    SubproblemInfeasible {
        /// Which sub-problem: `"cpu<k>"` or `"bus"`.
        which: String,
        /// The underlying reason.
        reason: String,
    },
    /// A numeric index or weight does not fit the target domain (e.g.
    /// a processor index beyond `u32`, or a transfer weight beyond the
    /// time type). Never silently truncate: a wrapped processor id
    /// would alias another processor's work.
    IndexOverflow {
        /// What was being converted.
        what: &'static str,
        /// The value that did not fit.
        value: u128,
    },
    /// A model-level error.
    Model(rtcg_core::ModelError),
}

impl fmt::Display for MultiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiError::NoProcessors => write!(f, "need at least one processor"),
            MultiError::Unplaced(e) => write!(f, "element {e:?} not assigned to a processor"),
            MultiError::UnknownProcessor(p) => write!(f, "unknown processor #{p}"),
            MultiError::DeadlineTooTight {
                constraint,
                needed,
                deadline,
            } => write!(
                f,
                "constraint {constraint:?}: fragment chain needs {needed} ticks end to end \
                 but deadline is {deadline}"
            ),
            MultiError::SubproblemInfeasible { which, reason } => {
                write!(f, "sub-problem `{which}` infeasible: {reason}")
            }
            MultiError::IndexOverflow { what, value } => {
                write!(f, "{what} {value} does not fit its target type")
            }
            MultiError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for MultiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MultiError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rtcg_core::ModelError> for MultiError {
    fn from(e: rtcg_core::ModelError) -> Self {
        MultiError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MultiError::NoProcessors.to_string().contains("processor"));
        let e = MultiError::DeadlineTooTight {
            constraint: ConstraintId::new(1),
            needed: 9,
            deadline: 5,
        };
        assert!(e.to_string().contains('9'));
        let e = MultiError::SubproblemInfeasible {
            which: "bus".into(),
            reason: "overload".into(),
        };
        assert!(e.to_string().contains("bus"));
    }
}
