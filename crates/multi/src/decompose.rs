//! Building and solving the per-processor and bus sub-problems.
//!
//! Each processor gets a single-processor model: its elements, the
//! channels among them, and one asynchronous constraint per fragment
//! placed on it (arrival of the predecessor stage's message is the
//! invocation — arrivals at arbitrary instants with minimum separation
//! `p` are exactly the asynchronous semantics, so the fragment's
//! verified latency bounds its stage time from *any* arrival). The bus
//! gets the paper's "similar-looking problem": a model whose elements
//! are transfers (`weight = number of values carried`, pipelinable — a
//! packet per value) and whose constraints are the messages with their
//! sliced deadlines.
//!
//! End-to-end: invocation → stage 0 completes within its verified
//! latency → boundary-0 transfer within its verified latency → … ;
//! summing verified latencies along the chain bounds the response from
//! any invocation, so `Σ latencies ≤ d` certifies the constraint.

use crate::error::MultiError;
use crate::partition::{Placement, ProcessorId};
use crate::slice::{slice_constraints, SlicedConstraint};
use rtcg_core::constraint::ConstraintId;
use rtcg_core::heuristic::{synthesize_with, SynthesisConfig, SynthesisOutcome};
use rtcg_core::model::{CommGraph, Model};
use rtcg_core::task::TaskGraphBuilder;
use rtcg_core::time::Time;

/// End-to-end verdict for one constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndToEnd {
    /// The constraint.
    pub constraint: ConstraintId,
    /// Its name.
    pub name: String,
    /// Sum of verified per-stage and per-boundary latencies.
    pub bound: Time,
    /// The original deadline.
    pub deadline: Time,
    /// `bound ≤ deadline`.
    pub ok: bool,
}

/// Result of multiprocessor synthesis.
#[derive(Debug)]
pub struct MultiSynthesis {
    /// The slicing used.
    pub sliced: Vec<SlicedConstraint>,
    /// Per-processor synthesis outcomes (index = processor id). `None`
    /// for processors with no work.
    pub cpus: Vec<Option<SynthesisOutcome>>,
    /// Bus synthesis outcome (`None` when no constraint crosses
    /// processors).
    pub bus: Option<SynthesisOutcome>,
    /// Composed end-to-end verdicts, one per constraint.
    pub end_to_end: Vec<EndToEnd>,
}

impl MultiSynthesis {
    /// True iff every constraint's composed bound meets its deadline.
    pub fn all_ok(&self) -> bool {
        self.end_to_end.iter().all(|e| e.ok)
    }
}

/// Decomposes and synthesizes (see module docs).
pub fn synthesize_multi(
    model: &Model,
    placement: &Placement,
    config: SynthesisConfig,
) -> Result<MultiSynthesis, MultiError> {
    model.validate().map_err(MultiError::from)?;
    let sliced = slice_constraints(model, placement)?;
    let comm = model.comm();

    // ----- per-processor sub-models -----
    let mut cpus: Vec<Option<SynthesisOutcome>> = Vec::with_capacity(placement.n_processors());
    // per (constraint, stage): verified latency, filled after synthesis
    let mut stage_latency: std::collections::BTreeMap<(usize, usize), Time> =
        std::collections::BTreeMap::new();

    for pix in 0..placement.n_processors() {
        let proc = ProcessorId::from_index(pix)?;
        let local_elems = placement.elements_on(proc);
        // sub communication graph: local elements + channels among them
        let mut sub = CommGraph::new();
        for &e in &local_elems {
            let fe = comm.element(e).expect("placed element exists");
            sub.add_element_full(fe.name.clone(), fe.wcet, fe.pipelinable)
                .map_err(MultiError::from)?;
        }
        for edge in comm.graph().edges() {
            if local_elems.contains(&edge.from) && local_elems.contains(&edge.to) {
                let from = sub
                    .lookup(comm.name(edge.from).map_err(MultiError::from)?)
                    .map_err(MultiError::from)?;
                let to = sub
                    .lookup(comm.name(edge.to).map_err(MultiError::from)?)
                    .map_err(MultiError::from)?;
                sub.add_channel_labeled(from, to, edge.weight.label.clone())
                    .map_err(MultiError::from)?;
            }
        }
        // fragment constraints on this processor
        let mut constraints = Vec::new();
        let mut owners: Vec<(usize, usize)> = Vec::new();
        for (sc_ix, sc) in sliced.iter().enumerate() {
            let c = model.constraint(sc.constraint).expect("valid id");
            for frag in &sc.fragments {
                if frag.processor != proc || frag.computation == 0 {
                    continue;
                }
                // induced task subgraph on the fragment's ops
                let mut tb = TaskGraphBuilder::new();
                for &op in &frag.ops {
                    let o = c.task.op(op).expect("live op");
                    let elem = sub
                        .lookup(comm.name(o.element).map_err(MultiError::from)?)
                        .map_err(MultiError::from)?;
                    tb = tb.op(&o.label, elem);
                }
                for (u, v) in c.task.precedence_edges() {
                    if frag.ops.contains(&u) && frag.ops.contains(&v) {
                        let lu = c.task.op(u).expect("live").label.clone();
                        let lv = c.task.op(v).expect("live").label.clone();
                        tb = tb.edge(&lu, &lv);
                    }
                }
                let task = tb.build().map_err(MultiError::from)?;
                constraints.push(rtcg_core::TimingConstraint {
                    name: format!("{}#{}", c.name, frag.stage),
                    task,
                    period: c.period,
                    deadline: frag.slice,
                    kind: rtcg_core::ConstraintKind::Asynchronous,
                });
                owners.push((sc_ix, frag.stage));
            }
        }
        if constraints.is_empty() {
            cpus.push(None);
            continue;
        }
        let sub_model = Model::new(sub, constraints).map_err(MultiError::from)?;
        let outcome =
            synthesize_with(&sub_model, config).map_err(|e| MultiError::SubproblemInfeasible {
                which: format!("cpu{pix}"),
                reason: e.to_string(),
            })?;
        let report = outcome
            .schedule
            .feasibility(outcome.model())
            .map_err(MultiError::from)?;
        for (check, &(sc_ix, stage)) in report.checks.iter().zip(&owners) {
            let lat = check.latency.expect("feasible outcome has finite latency");
            stage_latency.insert((sc_ix, stage), lat);
        }
        cpus.push(Some(outcome));
    }

    // ----- the bus sub-model: the "similar-looking problem" -----
    let mut bus_comm = CommGraph::new();
    let mut bus_constraints = Vec::new();
    let mut bus_owners: Vec<(usize, usize)> = Vec::new();
    for (sc_ix, sc) in sliced.iter().enumerate() {
        let c = model.constraint(sc.constraint).expect("valid id");
        for msg in &sc.messages {
            if msg.edges == 0 {
                continue;
            }
            let weight = Time::try_from(msg.edges).map_err(|_| MultiError::IndexOverflow {
                what: "transfer weight",
                value: msg.edges as u128,
            })?;
            let elem = bus_comm
                .add_element(format!("xfer_{}_{}", c.name, msg.boundary), weight)
                .map_err(MultiError::from)?;
            let task = TaskGraphBuilder::new()
                .op("x", elem)
                .build()
                .map_err(MultiError::from)?;
            bus_constraints.push(rtcg_core::TimingConstraint {
                name: format!("{}@{}", c.name, msg.boundary),
                task,
                period: c.period,
                deadline: msg.slice,
                kind: rtcg_core::ConstraintKind::Asynchronous,
            });
            bus_owners.push((sc_ix, msg.boundary));
        }
    }
    let mut message_latency: std::collections::BTreeMap<(usize, usize), Time> =
        std::collections::BTreeMap::new();
    let bus = if bus_constraints.is_empty() {
        None
    } else {
        let bus_model = Model::new(bus_comm, bus_constraints).map_err(MultiError::from)?;
        let outcome =
            synthesize_with(&bus_model, config).map_err(|e| MultiError::SubproblemInfeasible {
                which: "bus".to_string(),
                reason: e.to_string(),
            })?;
        let report = outcome
            .schedule
            .feasibility(outcome.model())
            .map_err(MultiError::from)?;
        for (check, &(sc_ix, boundary)) in report.checks.iter().zip(&bus_owners) {
            let lat = check.latency.expect("feasible outcome has finite latency");
            message_latency.insert((sc_ix, boundary), lat);
        }
        Some(outcome)
    };

    // ----- end-to-end composition -----
    let mut end_to_end = Vec::with_capacity(sliced.len());
    for (sc_ix, sc) in sliced.iter().enumerate() {
        let c = model.constraint(sc.constraint).expect("valid id");
        let mut bound: Time = 0;
        for frag in &sc.fragments {
            if frag.computation > 0 {
                bound += stage_latency
                    .get(&(sc_ix, frag.stage))
                    .copied()
                    .unwrap_or(frag.slice);
            }
        }
        for msg in &sc.messages {
            if msg.edges > 0 {
                bound += message_latency
                    .get(&(sc_ix, msg.boundary))
                    .copied()
                    .unwrap_or(msg.slice);
            }
        }
        end_to_end.push(EndToEnd {
            constraint: sc.constraint,
            name: c.name.clone(),
            bound,
            deadline: c.deadline,
            ok: bound <= c.deadline,
        });
    }

    Ok(MultiSynthesis {
        sliced,
        cpus,
        bus,
        end_to_end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{balance_load, Placement};
    use rtcg_core::model::ModelBuilder;
    use rtcg_core::task::TaskGraphBuilder;

    fn cfg() -> SynthesisConfig {
        SynthesisConfig {
            max_hyperperiod: 200_000,
            game_state_budget: 50_000,
        }
    }

    /// chain a(1) -> b(2) -> c(1) with a generous deadline, split across
    /// two processors (b alone on cpu1).
    fn split_chain(d: u64) -> (Model, Placement) {
        let mut bld = ModelBuilder::new();
        let a = bld.element("a", 1);
        let b = bld.element("b", 2);
        let c = bld.element("c", 1);
        bld.channel(a, b).channel(b, c);
        let tg = TaskGraphBuilder::new()
            .op("a", a)
            .op("b", b)
            .op("c", c)
            .chain(&["a", "b", "c"])
            .build()
            .unwrap();
        bld.asynchronous("chain", tg, d, d);
        let m = bld.build().unwrap();
        let mut p = Placement::new(2).unwrap();
        p.assign(a, ProcessorId(0)).unwrap();
        p.assign(b, ProcessorId(1)).unwrap();
        p.assign(c, ProcessorId(0)).unwrap();
        (m, p)
    }

    #[test]
    fn split_chain_synthesizes_end_to_end() {
        let (m, p) = split_chain(40);
        let out = synthesize_multi(&m, &p, cfg()).unwrap();
        assert!(out.all_ok(), "{:?}", out.end_to_end);
        assert_eq!(out.end_to_end.len(), 1);
        assert!(out.end_to_end[0].bound <= 40);
        // both processors and the bus have schedules
        assert!(out.cpus[0].is_some());
        assert!(out.cpus[1].is_some());
        assert!(out.bus.is_some());
    }

    #[test]
    fn local_model_needs_no_bus() {
        let (m, _) = split_chain(40);
        let ids: Vec<_> = m.comm().element_ids().collect();
        let mut p = Placement::new(2).unwrap();
        for &e in &ids {
            p.assign(e, ProcessorId(0)).unwrap();
        }
        let out = synthesize_multi(&m, &p, cfg()).unwrap();
        assert!(out.bus.is_none());
        assert!(out.cpus[0].is_some());
        assert!(out.cpus[1].is_none());
        assert!(out.all_ok());
    }

    #[test]
    fn composed_bound_is_sum_of_verified_latencies() {
        let (m, p) = split_chain(60);
        let out = synthesize_multi(&m, &p, cfg()).unwrap();
        let e = &out.end_to_end[0];
        // bound must be strictly tighter than the naive sum of slices
        // (verified latencies ≤ slices)
        let slices = out.sliced[0].total_slices();
        assert!(e.bound <= slices, "bound {} > slices {}", e.bound, slices);
        assert!(e.ok);
    }

    #[test]
    fn mok_example_on_two_processors() {
        // widen d_z: the z-chain must cross processors and pay for
        // staging; the default 15 is too tight for a split fS
        let params = rtcg_core::mok_example::Params {
            d_z: 30,
            p_z: 30,
            ..Default::default()
        };
        let (m, _) = rtcg_core::mok_example::build(params).unwrap();
        let placement = balance_load(&m, 2).unwrap();
        match synthesize_multi(&m, &placement, cfg()) {
            Ok(out) => assert!(out.all_ok(), "{:?}", out.end_to_end),
            Err(MultiError::DeadlineTooTight { .. })
            | Err(MultiError::SubproblemInfeasible { .. }) => {
                // acceptable: the balanced placement may split a chain too
                // finely — single-processor placement must then work
                let ids: Vec<_> = m.comm().element_ids().collect();
                let mut p1 = Placement::new(2).unwrap();
                for &e in &ids {
                    p1.assign(e, ProcessorId(0)).unwrap();
                }
                let out = synthesize_multi(&m, &p1, cfg()).unwrap();
                assert!(out.all_ok());
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn infeasible_subproblem_reported() {
        // overload one processor: two heavy same-processor constraints
        // with deadlines that fit alone but not together
        let mut bld = ModelBuilder::new();
        let a = bld.element("a", 2);
        let b = bld.element("b", 2);
        let ta = TaskGraphBuilder::new().op("a", a).build().unwrap();
        let tb = TaskGraphBuilder::new().op("b", b).build().unwrap();
        bld.asynchronous("ca", ta, 5, 5);
        bld.asynchronous("cb", tb, 5, 5);
        let m = bld.build().unwrap();
        let mut p = Placement::new(2).unwrap();
        p.assign(a, ProcessorId(0)).unwrap();
        p.assign(b, ProcessorId(0)).unwrap();
        // density 2/5 + 2/5 ... on slices = full deadlines: 0.8 —
        // feasible? latency needs ≥ 2w: [a b] duration 4, worst-case
        // latency for a: s=1 → a@4..6 → 5 ✓ OK it may be feasible. Use
        // tighter: d=4 each → w=2, d=4: single fits (2w ≤ 4) but both
        // together need a+b in every 4-window: 4 ticks of work per
        // 4-window at zero idle — the window sliding makes it
        // impossible.
        let mut bld = ModelBuilder::new();
        let a = bld.element("a", 2);
        let b = bld.element("b", 2);
        let ta = TaskGraphBuilder::new().op("a", a).build().unwrap();
        let tb = TaskGraphBuilder::new().op("b", b).build().unwrap();
        bld.asynchronous("ca", ta, 4, 4);
        bld.asynchronous("cb", tb, 4, 4);
        let m2 = bld.build().unwrap();
        let mut p2 = Placement::new(1).unwrap();
        for e in m2.comm().element_ids().collect::<Vec<_>>() {
            p2.assign(e, ProcessorId(0)).unwrap();
        }
        match synthesize_multi(&m2, &p2, cfg()) {
            Err(MultiError::SubproblemInfeasible { which, .. }) => {
                assert_eq!(which, "cpu0");
            }
            other => panic!("expected infeasible cpu0, got {other:?}"),
        }
        let _ = (m, p);
    }

    #[test]
    fn more_processors_shrink_per_cpu_load() {
        // four independent constraints: with 4 processors each gets its
        // own, and every end-to-end bound is the local latency
        let mut bld = ModelBuilder::new();
        let mut elems = Vec::new();
        for i in 0..4 {
            let e = bld.element(&format!("e{i}"), 2);
            let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
            bld.asynchronous(&format!("c{i}"), tg, 12, 12);
            elems.push(e);
        }
        let m = bld.build().unwrap();
        let p = balance_load(&m, 4).unwrap();
        let out = synthesize_multi(&m, &p, cfg()).unwrap();
        assert!(out.all_ok());
        assert!(out.bus.is_none(), "independent constraints never cross");
        let used = out.cpus.iter().filter(|c| c.is_some()).count();
        assert_eq!(used, 4);
    }
}
