//! # rtcg-multi — multiprocessor decomposition
//!
//! The paper closes its results section with: *"We have also taken care
//! in formulating the graph-based model such that for a multiprocessor
//! architecture, the synthesis problem can be decomposed into a set of
//! single processor synthesis problems and a similar-looking problem for
//! scheduling the communication network. We shall report this work in
//! another paper."* This crate implements that decomposition as the
//! sentence describes it:
//!
//! 1. [`partition`] — assign functional elements to processors
//!    (explicitly, or by greedy load balancing over per-element demand).
//! 2. [`mod@slice`] — cut each timing constraint's task graph at
//!    cross-processor edges into per-processor *fragments* plus
//!    inter-processor *messages*, and split the end-to-end deadline into
//!    per-stage slices (proportional to computation, with every message
//!    given a fixed network slice).
//! 3. [`decompose`] — build one single-processor sub-model per processor
//!    (fragments become asynchronous constraints with their sliced
//!    deadlines — an invocation of a fragment is the arrival of its
//!    predecessor's message, which may happen at any instant, which is
//!    exactly the asynchronous-constraint semantics) and one *bus* model
//!    in which each message is a transfer element (weight = number of
//!    values carried, pipelinable — one packet per value) with
//!    its own sliced deadline: the paper's "similar-looking problem".
//! 4. Per-sub-model synthesis reuses [`rtcg_core::heuristic::synthesize`]
//!    verbatim; [`MultiSynthesis::end_to_end`](decompose::MultiSynthesis::end_to_end) composes
//!    the verified per-stage latencies along every constraint's fragment
//!    chain and checks the sum against the original deadline — a sound
//!    (conservative) end-to-end guarantee.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crosscheck;
pub mod decompose;
pub mod error;
pub mod partition;
pub mod slice;

pub use crosscheck::{cross_check, Agreement, CrossCheck};
pub use decompose::{synthesize_multi, EndToEnd, MultiSynthesis};
pub use error::MultiError;
pub use partition::{balance_load, Placement, ProcessorId};
pub use slice::{slice_constraints, Fragment, Message, SlicedConstraint};
