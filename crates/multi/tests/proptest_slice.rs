//! Property tests for deadline slicing and placement.

use proptest::prelude::*;
use rtcg_core::model::{Model, ModelBuilder};
use rtcg_core::task::TaskGraphBuilder;
use rtcg_multi::{balance_load, slice_constraints, Placement, ProcessorId};

/// Strategy: a chain model description — per-stage weights (1..=3) plus
/// deadline slack beyond the slicing minimum.
fn chain_spec() -> impl Strategy<Value = (Vec<u64>, u64, u64)> {
    (
        prop::collection::vec(1u64..=3, 1..=5),
        0u64..40,
        1u64..4, // processors
    )
}

fn build_chain(weights: &[u64], slack: u64) -> Model {
    let mut b = ModelBuilder::new();
    let mut tb = TaskGraphBuilder::new();
    let mut prev = None;
    for (k, &w) in weights.iter().enumerate() {
        let e = b.element(&format!("e{k}"), w);
        tb = tb.op(&format!("o{k}"), e);
        if let Some(p) = prev {
            b.channel(p, e);
            tb = tb.edge(&format!("o{}", k - 1), &format!("o{k}"));
        }
        prev = Some(e);
    }
    // worst-case slicing minimum: 2·Σw for stages + 2·(len-1) for
    // messages if every op lands on its own processor
    let min: u64 = 2 * weights.iter().sum::<u64>() + 2 * (weights.len() as u64 - 1);
    let d = min + slack;
    b.asynchronous("chain", tb.build().unwrap(), d, d);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn slicing_invariants((weights, slack, cpus) in chain_spec()) {
        let model = build_chain(&weights, slack);
        let placement = balance_load(&model, cpus as usize).unwrap();
        let sliced = slice_constraints(&model, &placement).unwrap();
        prop_assert_eq!(sliced.len(), 1);
        let sc = &sliced[0];
        let c = &model.constraints()[0];

        // fragments partition the operations
        let total_ops: usize = sc.fragments.iter().map(|f| f.ops.len()).sum();
        prop_assert_eq!(total_ops, c.task.op_count());

        // message count = fragment count - 1 on a chain
        prop_assert_eq!(sc.messages.len(), sc.fragments.len().saturating_sub(1));

        // slices cover the minimums and never exceed the deadline
        for f in &sc.fragments {
            prop_assert!(f.slice >= 2 * f.computation || f.computation == 0);
        }
        for (m, _) in sc.messages.iter().zip(&sc.fragments) {
            prop_assert!(m.slice >= 2 * m.edges as u64);
        }
        prop_assert!(sc.total_slices() <= c.deadline,
            "slices {} > deadline {}", sc.total_slices(), c.deadline);

        // computation is conserved across fragments
        let frag_comp: u64 = sc.fragments.iter().map(|f| f.computation).sum();
        prop_assert_eq!(frag_comp, c.task.computation_time(model.comm()).unwrap());

        // consecutive fragments live on different processors
        for pair in sc.fragments.windows(2) {
            prop_assert_ne!(pair[0].processor, pair[1].processor);
        }
    }

    #[test]
    fn balanced_placement_is_total((weights, slack, cpus) in chain_spec()) {
        let model = build_chain(&weights, slack);
        let placement = balance_load(&model, cpus as usize).unwrap();
        placement.validate_total(&model).unwrap();
        // every assignment names a valid processor
        for e in model.comm().element_ids() {
            let p = placement.processor_of(e).unwrap();
            prop_assert!(p.index() < cpus as usize);
        }
    }

    #[test]
    fn single_processor_slicing_is_identity_like((weights, slack, _) in chain_spec()) {
        let model = build_chain(&weights, slack);
        let mut placement = Placement::new(1).unwrap();
        for e in model.comm().element_ids().collect::<Vec<_>>() {
            placement.assign(e, ProcessorId(0)).unwrap();
        }
        let sliced = slice_constraints(&model, &placement).unwrap();
        let sc = &sliced[0];
        prop_assert!(sc.is_local());
        prop_assert!(sc.messages.is_empty());
        // a local constraint keeps its whole deadline
        prop_assert_eq!(sc.fragments[0].slice, model.constraints()[0].deadline);
    }
}
