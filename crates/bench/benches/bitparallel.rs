//! Bit-parallel batched leaf throughput: [`CompiledChecker::check_batch`]
//! against the scalar compiled checker on sibling frontiers — the exact
//! shape the last-row batching in `feasibility/exact.rs` produces. Each
//! work item is a *row*: one shared prefix plus every alphabet symbol as
//! a lane tail, so a row of width `w` verdicts `w` sibling candidates in
//! one pass.
//!
//! Scenarios mirror `BENCH_leafcheck.json` (chain_family boundary /
//! infeasible, the paper's running example) so the two trajectory files
//! compose: leafcheck measures compiled-vs-cache, this bench measures
//! batch-vs-compiled on the same populations. A fourth, ungated
//! scenario (`chain_family_21_wide`) drives the full 64-lane width. The
//! scalar sweep walks candidates row-major so its incremental prefix
//! index stays warm — the comparison is against the scalar checker at
//! its best, not a strawman.
//!
//! Verdicts are asserted bit-identical for every lane before any
//! timing. Results land in `BENCH_bitparallel.json` at the repo root
//! (override with `RTCG_BENCH_OUT`); the acceptance gate is a ≥10x
//! *aggregate* speedup over the three leafcheck-family scenarios
//! (total scalar time / total batch time) plus a ≥3x floor on each —
//! the all-infeasible population is capped near the lane width because
//! the scalar baseline already short-circuits at its first failing
//! window, while boundary and mok populations pay for full window
//! sweeps that the batch shares across lanes. `RTCG_BENCH_QUICK=1`
//! shrinks the sweep for CI smoke runs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtcg_bench::{BenchReport, ScenarioRow};
use rtcg_core::feasibility::{used_elements, CompiledChecker, MAX_BATCH};
use rtcg_core::model::Model;
use rtcg_core::mok_example;
use rtcg_core::schedule::Action;
use rtcg_hardness::families::{chain_family, chain_family_with_deadline};
use std::time::Instant;

struct Scenario {
    name: &'static str,
    model: Model,
    /// Shared-prefix lengths to draw from; each row's candidates are
    /// one symbol longer.
    prefix_lengths: std::ops::RangeInclusive<usize>,
    /// Whether the ≥10x gate applies (the leafcheck-family scenarios).
    gated: bool,
}

fn scenarios() -> Vec<Scenario> {
    let (mok, _) = mok_example::default_model();
    vec![
        Scenario {
            name: "chain_family_2_boundary",
            model: chain_family(2),
            prefix_lengths: 6..=12,
            gated: true,
        },
        Scenario {
            name: "chain_family_2_infeasible",
            model: chain_family_with_deadline(2, 7),
            prefix_lengths: 6..=12,
            gated: true,
        },
        Scenario {
            name: "mok_example",
            model: mok,
            prefix_lengths: 5..=9,
            gated: true,
        },
        Scenario {
            name: "chain_family_21_wide",
            model: chain_family(21),
            prefix_lengths: 3..=5,
            gated: false,
        },
    ]
}

/// Deterministic row prefixes: seeded strings over the search alphabet
/// biased toward full element coverage (like surviving B&B interior
/// nodes), sorted so neighbouring rows share prefixes the way sibling
/// frontiers of the necklace DFS do.
fn row_prefixes(s: &Scenario, count: usize) -> Vec<Vec<Action>> {
    let used = used_elements(&s.model);
    let mut rng = ChaCha8Rng::seed_from_u64(0x4249_5450);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = rng.gen_range(s.prefix_lengths.clone());
        let mut actions = Vec::with_capacity(len);
        let mut perm: Vec<usize> = (0..used.len()).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        for &ix in perm.iter().take(len) {
            actions.push(Action::Run(used[ix]));
        }
        while actions.len() < len {
            let sym = rng.gen_range(0..=used.len());
            actions.push(if sym == 0 {
                Action::Idle
            } else {
                Action::Run(used[sym - 1])
            });
        }
        out.push(actions);
    }
    fn sym_key(a: &Action) -> usize {
        match a {
            Action::Idle => 0,
            Action::Run(e) => e.index() + 1,
        }
    }
    out.sort_by_cached_key(|v| v.iter().map(sym_key).collect::<Vec<_>>());
    out.dedup();
    out
}

/// The lane set: idle plus every used element — exactly the symbol
/// alphabet the exact search expands a node's children over.
fn lane_tails(model: &Model) -> Vec<Action> {
    let used = used_elements(model);
    let mut tails = vec![Action::Idle];
    tails.extend(used.iter().map(|&e| Action::Run(e)));
    assert!(tails.len() <= MAX_BATCH, "alphabet exceeds lane width");
    tails
}

/// Mean seconds per full sweep, scalar path: every row × tail verdicted
/// by `CompiledChecker::check`, row-major so the incremental prefix
/// index gets the same locality the necklace DFS gives it.
fn time_scalar(
    eval: &mut CompiledChecker,
    rows: &[Vec<Action>],
    tails: &[Action],
    iters: usize,
) -> f64 {
    let mut buf: Vec<Action> = Vec::new();
    let mut sweep = |timed: bool| -> f64 {
        let start = Instant::now();
        for row in rows {
            for &t in tails {
                buf.clear();
                buf.extend_from_slice(row);
                buf.push(t);
                black_box(eval.check(&buf).unwrap());
            }
        }
        if timed {
            start.elapsed().as_secs_f64()
        } else {
            0.0
        }
    };
    sweep(false); // warmup
    let mut total = 0.0;
    for _ in 0..iters {
        total += sweep(true);
    }
    total / iters as f64
}

/// Mean seconds per full sweep, batched path: one `check_batch` per row.
fn time_batch(
    eval: &mut CompiledChecker,
    rows: &[Vec<Action>],
    tails: &[Action],
    iters: usize,
) -> f64 {
    let mut out = Vec::with_capacity(tails.len());
    let mut sweep = |timed: bool| -> f64 {
        let start = Instant::now();
        for row in rows {
            eval.check_batch(row, tails, &mut out);
            black_box(&out);
        }
        if timed {
            start.elapsed().as_secs_f64()
        } else {
            0.0
        }
    };
    sweep(false); // warmup
    let mut total = 0.0;
    for _ in 0..iters {
        total += sweep(true);
    }
    total / iters as f64
}

struct Row {
    name: &'static str,
    n_rows: usize,
    width: usize,
    scalar_s: f64,
    batch_s: f64,
    speedup: f64,
    gated: bool,
}

fn gated_aggregate(rows: &[Row]) -> f64 {
    let scalar: f64 = rows.iter().filter(|r| r.gated).map(|r| r.scalar_s).sum();
    let batch: f64 = rows.iter().filter(|r| r.gated).map(|r| r.batch_s).sum();
    scalar / batch
}

fn write_json(rows: &[Row]) {
    let mut rep = BenchReport::new("bitparallel", "seconds_per_sweep");
    rep.aggregate("gated_aggregate_speedup", gated_aggregate(rows), 2);
    for r in rows {
        rep.row(
            ScenarioRow::new(r.name)
                .int("rows", r.n_rows as u64)
                .int("width", r.width as u64)
                .int("candidates", (r.n_rows * r.width) as u64)
                .float("scalar_compiled_s", r.scalar_s, 9)
                .float("check_batch_s", r.batch_s, 9)
                .float("speedup", r.speedup, 2),
        );
    }
    rep.write();
}

fn bench_bitparallel(c: &mut Criterion) {
    let quick = rtcg_bench::report::quick();
    let (count, iters) = if quick { (64, 5) } else { (256, 40) };

    let mut rows = Vec::new();
    let mut group = c.benchmark_group("bitparallel");
    group.sample_size(10);

    for s in scenarios() {
        let prefixes = row_prefixes(&s, count);
        let tails = lane_tails(&s.model);
        let mut scalar = CompiledChecker::new(&s.model).unwrap();
        let mut batched = CompiledChecker::new(&s.model).unwrap();

        // the invariant first: bit-identical verdicts on every lane
        let mut out = Vec::new();
        let mut buf = Vec::new();
        for row in &prefixes {
            batched.check_batch(row, &tails, &mut out);
            for (lane, &t) in tails.iter().enumerate() {
                buf.clear();
                buf.extend_from_slice(row);
                buf.push(t);
                let want = scalar.check(&buf).unwrap();
                assert_eq!(
                    out[lane].clone().unwrap(),
                    want,
                    "verdict divergence on {}: {row:?} + {t:?}",
                    s.name
                );
            }
        }

        let scalar_s = time_scalar(&mut scalar, &prefixes, &tails, iters);
        let batch_s = time_batch(&mut batched, &prefixes, &tails, iters);
        let speedup = scalar_s / batch_s;
        println!(
            "bitparallel/{}: {} rows × {} lanes, scalar {:.1} µs/sweep, batch {:.1} µs/sweep — {:.1}x",
            s.name,
            prefixes.len(),
            tails.len(),
            scalar_s * 1e6,
            batch_s * 1e6,
            speedup
        );

        group.bench_with_input(
            BenchmarkId::new("scalar_compiled", s.name),
            &prefixes,
            |b, rows| {
                b.iter(|| {
                    for row in rows {
                        for &t in &tails {
                            buf.clear();
                            buf.extend_from_slice(row);
                            buf.push(t);
                            black_box(scalar.check(&buf).unwrap());
                        }
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("check_batch", s.name),
            &prefixes,
            |b, rows| {
                b.iter(|| {
                    for row in rows {
                        batched.check_batch(row, &tails, &mut out);
                        black_box(&out);
                    }
                })
            },
        );

        rows.push(Row {
            name: s.name,
            n_rows: prefixes.len(),
            width: tails.len(),
            scalar_s,
            batch_s,
            speedup,
            gated: s.gated,
        });
    }
    group.finish();

    write_json(&rows);

    for r in rows.iter().filter(|r| r.gated) {
        assert!(
            r.speedup >= 3.0,
            "bitparallel/{}: batch speedup {:.2}x below the 3x per-scenario floor",
            r.name,
            r.speedup
        );
    }
    let aggregate = gated_aggregate(&rows);
    println!("bitparallel: gated aggregate speedup {aggregate:.2}x");
    assert!(
        aggregate >= 10.0,
        "bitparallel: aggregate speedup {aggregate:.2}x over the leafcheck scenarios is below the 10x acceptance gate"
    );
}

criterion_group!(benches, bench_bitparallel);
criterion_main!(benches);
