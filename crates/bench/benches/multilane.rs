//! Multiprocessor lane search: canonical (lane-symmetry-sorted,
//! capacity-pruned) enumeration against the naive per-slot product
//! enumerator, over a small m=2 scenario set.
//!
//! Both searches share the lane checker, so their verdicts must be
//! bit-identical — asserted per scenario before any timing. What the
//! canonical order buys is the candidate count: row matrices that are
//! lane permutations of each other collapse to one representative, and
//! closing a row early prunes every continuation whose remaining lanes
//! cannot cover the still-unscheduled elements. The acceptance gate is
//! a ≥3x *aggregate* reduction in feasibility-checked candidates
//! (naive total / canonical total) across the scenario set.
//!
//! Results land in `BENCH_multilane.json` at the repo root (override
//! with `RTCG_BENCH_OUT`); `RTCG_BENCH_QUICK=1` shrinks the timing
//! sweep for CI smoke runs (the counters and gates are identical —
//! candidate counts are deterministic, only wall-clock sampling
//! shrinks).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rtcg_bench::{BenchReport, ScenarioRow};
use rtcg_core::feasibility::{find_feasible_lanes, find_feasible_lanes_naive, SearchConfig};
use rtcg_core::model::{Model, ModelBuilder};
use rtcg_core::task::TaskGraphBuilder;
use std::time::Instant;

const LANES: usize = 2;

struct Scenario {
    name: &'static str,
    model: Model,
    max_len: usize,
}

/// `n` independent single-op constraints, element weight `w`, deadline
/// `d` each.
fn independent(n: usize, w: u64, d: u64) -> Model {
    let mut b = ModelBuilder::new();
    for i in 0..n {
        let e = b.element(&format!("e{i}"), w);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous(&format!("c{i}"), tg, d, d);
    }
    b.build().unwrap()
}

fn scenarios() -> Vec<Scenario> {
    vec![
        // two wcet-2 elements, latency ≤ 3 each: infeasible on one
        // processor, feasible with one element per lane
        Scenario {
            name: "pair_relief",
            model: independent(2, 2, 3),
            max_len: 2,
        },
        // latency ≤ 2 with wcet 2 is unachievable at any lane count
        // (minimum latency is 2w-1 = 3): full enumeration on both sides
        Scenario {
            name: "pair_overload",
            model: independent(2, 2, 2),
            max_len: 2,
        },
        // four unit elements, every 2-window must see each: feasible
        // only by packing both lanes full — the capacity prune bites
        Scenario {
            name: "quad_pack",
            model: independent(4, 1, 2),
            max_len: 2,
        },
        // three unit elements each demanding execution every tick:
        // infeasible on two lanes, full enumeration with pruning
        Scenario {
            name: "trio_tight",
            model: independent(3, 1, 1),
            max_len: 2,
        },
    ]
}

fn cfg(max_len: usize) -> SearchConfig {
    SearchConfig {
        max_len,
        node_budget: u64::MAX / 2,
    }
}

struct Row {
    name: &'static str,
    feasible: bool,
    canonical_candidates: u64,
    naive_candidates: u64,
    canonical_s: f64,
    naive_s: f64,
}

fn aggregate_reduction(rows: &[Row]) -> f64 {
    let naive: u64 = rows.iter().map(|r| r.naive_candidates).sum();
    let canonical: u64 = rows.iter().map(|r| r.canonical_candidates).sum();
    naive as f64 / canonical.max(1) as f64
}

fn write_json(rows: &[Row]) {
    let mut rep = BenchReport::new("multilane", "seconds_per_search");
    rep.aggregate("candidate_reduction", aggregate_reduction(rows), 2);
    for r in rows {
        rep.row(
            ScenarioRow::new(r.name)
                .int("lanes", LANES as u64)
                .int("feasible", r.feasible as u64)
                .int("canonical_candidates", r.canonical_candidates)
                .int("naive_candidates", r.naive_candidates)
                .float("canonical_s", r.canonical_s, 9)
                .float("naive_s", r.naive_s, 9)
                .float(
                    "reduction",
                    r.naive_candidates as f64 / r.canonical_candidates.max(1) as f64,
                    2,
                ),
        );
    }
    rep.write();
}

fn time_search(f: impl Fn() -> u64, iters: usize) -> f64 {
    f(); // warmup
    let mut total = 0.0;
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        total += start.elapsed().as_secs_f64();
    }
    total / iters as f64
}

fn bench_multilane(c: &mut Criterion) {
    let quick = rtcg_bench::report::quick();
    let iters = if quick { 3 } else { 20 };

    let mut rows = Vec::new();
    let mut group = c.benchmark_group("multilane");
    group.sample_size(10);

    for s in scenarios() {
        let canonical = find_feasible_lanes(&s.model, LANES, cfg(s.max_len)).unwrap();
        let naive = find_feasible_lanes_naive(&s.model, LANES, cfg(s.max_len)).unwrap();

        // the invariant first: verdict bit-identity, and any found
        // schedule must independently verify against the model
        assert_eq!(
            canonical.schedule.is_some(),
            naive.schedule.is_some(),
            "multilane/{}: canonical and naive verdicts diverge",
            s.name
        );
        assert!(canonical.exhausted_bound && naive.exhausted_bound);
        for sched in [&canonical.schedule, &naive.schedule].into_iter().flatten() {
            assert!(
                sched.feasibility(&s.model).unwrap().is_feasible(),
                "multilane/{}: reported schedule fails verification",
                s.name
            );
        }

        let canonical_s = time_search(
            || {
                find_feasible_lanes(&s.model, LANES, cfg(s.max_len))
                    .unwrap()
                    .candidates_checked
            },
            iters,
        );
        let naive_s = time_search(
            || {
                find_feasible_lanes_naive(&s.model, LANES, cfg(s.max_len))
                    .unwrap()
                    .candidates_checked
            },
            iters,
        );
        println!(
            "multilane/{}: {} vs {} candidates ({:.2}x), canonical {:.1} µs, naive {:.1} µs",
            s.name,
            canonical.candidates_checked,
            naive.candidates_checked,
            naive.candidates_checked as f64 / canonical.candidates_checked.max(1) as f64,
            canonical_s * 1e6,
            naive_s * 1e6,
        );

        group.bench_with_input(
            BenchmarkId::new("canonical", s.name),
            &s.model,
            |b, model| b.iter(|| black_box(find_feasible_lanes(model, LANES, cfg(s.max_len)))),
        );
        group.bench_with_input(BenchmarkId::new("naive", s.name), &s.model, |b, model| {
            b.iter(|| black_box(find_feasible_lanes_naive(model, LANES, cfg(s.max_len))))
        });

        rows.push(Row {
            name: s.name,
            feasible: canonical.schedule.is_some(),
            canonical_candidates: canonical.candidates_checked,
            naive_candidates: naive.candidates_checked,
            canonical_s,
            naive_s,
        });
    }
    group.finish();

    write_json(&rows);

    for r in &rows {
        assert!(
            r.naive_candidates >= r.canonical_candidates,
            "multilane/{}: canonical must never check more candidates than naive",
            r.name
        );
    }
    let reduction = aggregate_reduction(&rows);
    println!("multilane: aggregate candidate reduction {reduction:.2}x");
    assert!(
        reduction >= 3.0,
        "multilane: candidate reduction {reduction:.2}x below the 3x acceptance gate"
    );
}

criterion_group!(benches, bench_multilane);
criterion_main!(benches);
