//! Overhead of the observability layer on the hottest instrumented
//! path, `simulate_processes` (1000 ticks, 6 processes, tick-preemptive
//! EDF).
//!
//! The production default is **no recorder installed**: every
//! instrumentation site is one atomic load + branch (the "no-op"
//! path). That configuration can't be diffed against a truly
//! uninstrumented build inside one binary, so this bench bounds it
//! instead: it counts the guarded sites one simulation actually
//! executes, measures the per-site cost with a tight probe loop, and
//! reports `sites x cost / runtime` — the acceptance target is <2%.
//!
//! For contrast it also measures the *diagnostic* configuration where a
//! [`rtcg_obs::NopRecorder`] is installed, paying a virtual call per
//! site. Install order matters (`set_recorder` is one-way), so the
//! uninstalled measurements run first.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rtcg_bench::gen::random_process_set;
use rtcg_core::feasibility::{find_feasible, SearchConfig};
use rtcg_core::model::CommGraph;
use rtcg_hardness::families::chain_family_with_deadline;
use rtcg_sim::dynamic::{simulate_processes, Policy, Preemption, ProcessSim, SimOutcome};
use std::time::Instant;

static NOP: rtcg_obs::NopRecorder = rtcg_obs::NopRecorder;

struct SimFixture {
    set: rtcg_process::ProcessSet,
    comm: CommGraph,
    bodies: Vec<Vec<rtcg_core::model::ElementId>>,
    arrivals: Vec<Vec<u64>>,
}

fn fixture() -> SimFixture {
    let set = random_process_set(6, 0.8, 3);
    let mut comm = CommGraph::new();
    let mut bodies = Vec::new();
    let mut arrivals: Vec<Vec<u64>> = Vec::new();
    for (i, p) in set.processes().iter().enumerate() {
        let e = comm.add_element(format!("e{i}"), p.wcet).unwrap();
        bodies.push(vec![e]);
        arrivals.push(
            (0..)
                .map(|k| k * p.period)
                .take_while(|&t| t < 1000)
                .collect(),
        );
    }
    SimFixture {
        set,
        comm,
        bodies,
        arrivals,
    }
}

fn run(f: &SimFixture) -> SimOutcome {
    let input = ProcessSim {
        set: &f.set,
        comm: &f.comm,
        bodies: &f.bodies,
        arrivals: &f.arrivals,
    };
    simulate_processes(&input, Policy::Edf, Preemption::Tick, 1000).unwrap()
}

/// Mean seconds per call over `iters` calls (after `warmup` calls).
fn time_runs(f: &SimFixture, warmup: usize, iters: usize) -> f64 {
    for _ in 0..warmup {
        black_box(run(f));
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(run(f));
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn bench_obs_overhead(c: &mut Criterion) {
    let f = fixture();

    // guarded sites one run executes: 1 histogram per completion, 1
    // event per preemption, 1 span (2 guards: begin + drop), and the
    // end-of-run aggregate counters. Counted per site family so the
    // bound prices each family at its own probed no-op cost.
    let out = run(&f);
    let completions: usize = out.stats.iter().map(|s| s.completed).sum();
    let sites = completions + out.preemptions + 2 + 6;

    let uninstalled = time_runs(&f, 20, 200);

    // per-site cost of the no-op path, probed per site family with the
    // recorder still uninstalled: a counter site, a histogram site (the
    // span-tree and histogram code paths are compiled in either way),
    // and a span begin/drop pair (two guards). The bounds below use the
    // worst of the three so mixed-site paths stay conservative.
    let probe_n = 100_000u64;
    let probe_start = Instant::now();
    for i in 0..probe_n {
        rtcg_obs::counter!("bench.site_probe", black_box(i) & 1);
    }
    let per_counter = probe_start.elapsed().as_secs_f64() / probe_n as f64;
    let probe_start = Instant::now();
    for i in 0..probe_n {
        rtcg_obs::histogram!("bench.hist_probe", black_box(i) & 7);
    }
    let per_hist = probe_start.elapsed().as_secs_f64() / probe_n as f64;
    let probe_start = Instant::now();
    for i in 0..probe_n {
        rtcg_obs::event!("bench.event_probe", "bench", black_box(i) & 1);
    }
    let per_event = probe_start.elapsed().as_secs_f64() / probe_n as f64;
    let probe_start = Instant::now();
    for _ in 0..probe_n {
        let span = rtcg_obs::span!("bench.span_probe", "bench");
        black_box(&span);
    }
    let per_span_pair = probe_start.elapsed().as_secs_f64() / probe_n as f64;
    let per_site = per_counter.max(per_hist).max(per_span_pair / 2.0);

    // Exact-search path: instrumentation is hoisted out of the
    // enumeration hot loop to per-search or per-unit aggregates —
    // 1 span (2 guards) + 3 aggregate counters + 1 progress-sampler
    // check per search, plus 1 cached leaf-timing guard per work unit
    // (the per-leaf/per-node paths branch on that cached bool and the
    // None progress handle, no recorder loads). A work unit is a
    // depth-≤2 canonical prefix, so `max_len × (constraints + 1)²`
    // bounds the unit count from above. Bound the no-op overhead the
    // same way as above. (Must run before `set_recorder`: installation
    // is one-way.)
    let search_model = chain_family_with_deadline(2, 7);
    let search_cfg = SearchConfig {
        max_len: 7,
        node_budget: u64::MAX / 2,
    };
    let n_sym = search_model.constraints().len() + 1;
    let search_sites = 2 + 3 + 1 + search_cfg.max_len * n_sym * n_sym;
    let search_iters = 20;
    for _ in 0..3 {
        black_box(find_feasible(&search_model, search_cfg).unwrap());
    }
    let search_start = Instant::now();
    for _ in 0..search_iters {
        black_box(find_feasible(&search_model, search_cfg).unwrap());
    }
    let search_runtime = search_start.elapsed().as_secs_f64() / search_iters as f64;
    let search_bound = search_sites as f64 * per_site / search_runtime * 100.0;
    println!(
        "obs_overhead/exact_search {:.1} µs/iter, {} sites/search, \
         noop bound {:.4}% of runtime (target <2%)",
        search_runtime * 1e6,
        search_sites,
        search_bound
    );
    assert!(
        search_bound < 2.0,
        "exact-search no-op recorder overhead bound {search_bound:.4}% exceeds 2%"
    );

    let _ = rtcg_obs::set_recorder(&NOP);
    let nop_installed = time_runs(&f, 20, 200);

    println!(
        "obs_overhead/simulate_1k_ticks/uninstalled {:.3} µs/iter",
        uninstalled * 1e6
    );
    println!(
        "obs_overhead/simulate_1k_ticks/nop_installed {:.3} µs/iter ({:+.1}% vs uninstalled)",
        nop_installed * 1e6,
        (nop_installed / uninstalled - 1.0) * 100.0
    );
    println!(
        "obs_overhead/site_probe counter {:.2} ns, histogram {:.2} ns, \
         event {:.2} ns, span pair {:.2} ns; search bound uses {:.2} ns/site \
         ({} sim sites/run)",
        per_counter * 1e9,
        per_hist * 1e9,
        per_event * 1e9,
        per_span_pair * 1e9,
        per_site * 1e9,
        sites
    );
    // sim path priced per family: histograms on completion, events on
    // preemption, one span pair, six aggregate counters
    let sim_cost = completions as f64 * per_hist
        + out.preemptions as f64 * per_event
        + per_span_pair
        + 6.0 * per_counter;
    let bound = sim_cost / uninstalled * 100.0;
    println!("obs_overhead/noop_path_bound {bound:.2}% of runtime (target <2%)");
    assert!(
        bound < 2.0,
        "no-op recorder overhead bound {bound:.2}% exceeds 2%"
    );

    // keep a criterion-reported probe so `cargo bench` output has the
    // standard ns/iter line for regression eyeballs
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(50);
    group.bench_function("site_probe_1k_counters", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                rtcg_obs::counter!("bench.site_probe", black_box(i) & 1);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
