//! Criterion bench for the branch-and-bound exact search: pruned search
//! vs the seed generate-and-filter enumerator on the Theorem 2(i)
//! hardness family, and thread scaling of the work-queue parallel
//! search. Each group prints the node/candidate counters once so the
//! pruning factor is visible next to the timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtcg_core::feasibility::exact::reference::find_feasible_reference;
use rtcg_core::feasibility::{find_feasible, find_feasible_parallel, SearchConfig};
use rtcg_hardness::families::{chain_family_with_deadline, single_op_family};

fn bench_pruning_vs_reference(c: &mut Criterion) {
    // Infeasible 2-chain instance (deadline below the boundary): both
    // searches must *prove* bounded infeasibility, which maximizes
    // enumeration effort and therefore the pruning win.
    let model = chain_family_with_deadline(2, 7);
    let cfg = SearchConfig {
        max_len: 7,
        node_budget: u64::MAX / 2,
    };

    let bb = find_feasible(&model, cfg).unwrap();
    let rf = find_feasible_reference(&model, cfg).unwrap();
    assert_eq!(bb.schedule.is_some(), rf.schedule.is_some());
    println!(
        "pruning on chain_family(2, d=7): b&b {} nodes / {} candidates, \
         reference {} nodes / {} candidates ({}x fewer candidates)",
        bb.nodes_visited,
        bb.candidates_checked,
        rf.nodes_visited,
        rf.candidates_checked,
        rf.candidates_checked / bb.candidates_checked.max(1),
    );

    let mut group = c.benchmark_group("exact_search_pruning");
    group.sample_size(10);
    group.bench_function("branch_and_bound", |b| {
        b.iter(|| find_feasible(&model, cfg).unwrap())
    });
    group.bench_function("reference", |b| {
        b.iter(|| find_feasible_reference(&model, cfg).unwrap())
    });
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    // Feasible single-op instance whose last length holds nearly all
    // the work — the stress case for the depth-3 work-unit queue.
    let model = single_op_family(5);
    let cfg = SearchConfig {
        max_len: 10,
        node_budget: u64::MAX / 2,
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("thread scaling on single_op_family(5): {cores} core(s) available");

    let mut group = c.benchmark_group("exact_search_threads");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("threads", 1), |b| {
        b.iter(|| find_feasible(&model, cfg).unwrap())
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| b.iter(|| find_feasible_parallel(&model, cfg, threads).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pruning_vs_reference, bench_thread_scaling);
criterion_main!(benches);
