//! Leaf-check throughput: the compiled SoA evaluator
//! ([`CompiledChecker`]) against the pre-PR cached leaf path
//! ([`FeasibilityCache`]), on the candidate populations the exact
//! search actually visits — `chain_family` instances on both sides of
//! the feasibility boundary and the paper's running example.
//!
//! For each scenario the bench generates a deterministic, seeded set of
//! candidate action strings over the search alphabet, sorts them
//! lexicographically (consecutive leaves of the necklace DFS share long
//! prefixes, which is exactly the locality the incremental index
//! exploits), asserts **verdict equality for every candidate**, then
//! times full sweeps with each evaluator. The acceptance gate is a ≥3x
//! candidate-evaluation speedup on every scenario, and the measured
//! numbers are written to `BENCH_leafcheck.json` at the repo root (path
//! overridable via `RTCG_BENCH_OUT`) so the perf trajectory is tracked
//! in-repo. `RTCG_BENCH_QUICK=1` shrinks the sweep for CI smoke runs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtcg_bench::{BenchReport, ScenarioRow};
use rtcg_core::feasibility::{used_elements, CandidateEval, CompiledChecker};
use rtcg_core::model::Model;
use rtcg_core::mok_example;
use rtcg_core::schedule::{Action, FeasibilityCache};
use rtcg_hardness::families::{chain_family, chain_family_with_deadline};
use std::time::Instant;

struct Scenario {
    name: &'static str,
    model: Model,
    /// Candidate lengths to draw from (spanning the lengths the search
    /// enumerates around the boundary).
    lengths: std::ops::RangeInclusive<usize>,
}

fn scenarios() -> Vec<Scenario> {
    let (mok, _) = mok_example::default_model();
    vec![
        Scenario {
            name: "chain_family_2_boundary",
            model: chain_family(2),
            lengths: 4..=8,
        },
        Scenario {
            name: "chain_family_2_infeasible",
            model: chain_family_with_deadline(2, 7),
            lengths: 4..=8,
        },
        Scenario {
            name: "mok_example",
            model: mok,
            lengths: 5..=9,
        },
    ]
}

/// Deterministic candidate population: seeded strings over the search
/// alphabet (idle + used elements), sorted so neighbours share prefixes
/// the way necklace-DFS leaves do.
fn candidates(s: &Scenario, count: usize) -> Vec<Vec<Action>> {
    let used = used_elements(&s.model);
    let mut rng = ChaCha8Rng::seed_from_u64(0x4c45_4146);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = rng.gen_range(s.lengths.clone());
        let mut actions = Vec::with_capacity(len);
        // strings biased toward full element coverage (like surviving
        // B&B leaves): a shuffled pass over all elements, then filler
        let mut perm: Vec<usize> = (0..used.len()).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        for &ix in perm.iter().take(len) {
            actions.push(Action::Run(used[ix]));
        }
        while actions.len() < len {
            let sym = rng.gen_range(0..=used.len());
            actions.push(if sym == 0 {
                Action::Idle
            } else {
                Action::Run(used[sym - 1])
            });
        }
        out.push(actions);
    }
    fn sym_key(a: &Action) -> usize {
        match a {
            Action::Idle => 0,
            Action::Run(e) => e.index() + 1,
        }
    }
    out.sort_by_cached_key(|v| v.iter().map(sym_key).collect::<Vec<_>>());
    out.dedup();
    out
}

/// Mean seconds per full sweep over `iters` sweeps.
fn time_sweeps<E>(eval: &mut E, model: &Model, cands: &[Vec<Action>], iters: usize) -> f64
where
    E: CandidateEval + ?Sized,
{
    // warmup: one sweep primes caches on both evaluators
    for c in cands {
        black_box(eval.check(model, c).unwrap());
    }
    let start = Instant::now();
    for _ in 0..iters {
        for c in cands {
            black_box(eval.check(model, c).unwrap());
        }
    }
    start.elapsed().as_secs_f64() / iters as f64
}

struct Row {
    name: &'static str,
    n_candidates: usize,
    cache_s: f64,
    compiled_s: f64,
    speedup: f64,
}

fn write_json(rows: &[Row]) {
    let mut rep = BenchReport::new("leafcheck", "seconds_per_sweep");
    for r in rows {
        rep.row(
            ScenarioRow::new(r.name)
                .int("candidates", r.n_candidates as u64)
                .float("feasibility_cache_s", r.cache_s, 9)
                .float("compiled_checker_s", r.compiled_s, 9)
                .float("speedup", r.speedup, 2),
        );
    }
    rep.write();
}

fn bench_leafcheck(c: &mut Criterion) {
    let quick = rtcg_bench::report::quick();
    let (count, iters) = if quick { (128, 5) } else { (512, 40) };

    let mut rows = Vec::new();
    let mut group = c.benchmark_group("leafcheck");
    group.sample_size(10);

    for s in scenarios() {
        let cands = candidates(&s, count);
        let mut cache = FeasibilityCache::new(&s.model);
        let mut compiled = CompiledChecker::new(&s.model).unwrap();

        // the invariant first: verdicts identical on every candidate
        for cand in &cands {
            let a = cache.check(&s.model, cand).unwrap();
            let b = CandidateEval::check(&mut compiled, &s.model, cand).unwrap();
            assert_eq!(a, b, "verdict divergence on {}: {cand:?}", s.name);
        }

        let cache_s = time_sweeps(&mut cache, &s.model, &cands, iters);
        let compiled_s = time_sweeps(&mut compiled, &s.model, &cands, iters);
        let speedup = cache_s / compiled_s;
        println!(
            "leafcheck/{}: {} candidates, cache {:.1} µs/sweep, compiled {:.1} µs/sweep — {:.1}x",
            s.name,
            cands.len(),
            cache_s * 1e6,
            compiled_s * 1e6,
            speedup
        );

        group.bench_with_input(
            BenchmarkId::new("feasibility_cache", s.name),
            &cands,
            |b, cands| {
                b.iter(|| {
                    for cand in cands {
                        black_box(cache.check(&s.model, cand).unwrap());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_checker", s.name),
            &cands,
            |b, cands| {
                b.iter(|| {
                    for cand in cands {
                        black_box(compiled.check(cand).unwrap());
                    }
                })
            },
        );

        rows.push(Row {
            name: s.name,
            n_candidates: cands.len(),
            cache_s,
            compiled_s,
            speedup,
        });
    }
    group.finish();

    write_json(&rows);

    for r in &rows {
        assert!(
            r.speedup >= 3.0,
            "leafcheck/{}: compiled speedup {:.2}x below the 3x acceptance gate",
            r.name,
            r.speedup
        );
    }
}

criterion_group!(benches, bench_leafcheck);
criterion_main!(benches);
