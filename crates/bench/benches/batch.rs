//! Cross-request cache reuse in concurrent batch analysis: one shared
//! [`Engine`] fanning a deadline sweep across workers against N
//! independent cold engines answering the same requests.
//!
//! The workload is the one the tentpole targets — many same-structure
//! probes (deadline-edited variants of one model) whose exact searches
//! leaf-evaluate overwhelmingly overlapping candidate populations. A
//! cold engine per request recomputes every leaf; the shared engine's
//! per-structure candidate memo computes each `(candidate, constraint)`
//! pair once batch-wide.
//!
//! For each scenario the bench first asserts **bit-identical verdicts**
//! between the warm batch and sequential `analyze_once` per request,
//! then compares leaf evaluations actually computed. The acceptance
//! gate is a ≥3x reduction on every scenario; measured numbers go to
//! `BENCH_batch.json` at the repo root (`RTCG_BENCH_OUT` overrides,
//! `RTCG_BENCH_QUICK=1` shrinks the sweep for CI smoke runs).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rtcg_bench::{BenchReport, ScenarioRow};
use rtcg_core::feasibility::SearchConfig;
use rtcg_core::model::Model;
use rtcg_core::mok_example;
use rtcg_core::sensitivity::with_deadline;
use rtcg_core::ConstraintId;
use rtcg_engine::batch::BatchOptions;
use rtcg_engine::{analyze_once, AnalysisRequest, Engine};
use rtcg_hardness::families::chain_family_with_deadline;
use std::time::Instant;

struct Scenario {
    name: &'static str,
    jobs: Vec<(Model, AnalysisRequest)>,
}

fn exact(max_len: usize) -> AnalysisRequest {
    AnalysisRequest {
        search: SearchConfig {
            max_len,
            node_budget: 60_000_000,
        },
        ..AnalysisRequest::exact()
    }
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    // deadline sweep over the 2-chain family: same structure throughout,
    // deadlines straddling the feasibility boundary (11 is the family's
    // canonical deadline)
    let chain_range = if quick { 10..=13u64 } else { 8..=15u64 };
    let chain_jobs: Vec<(Model, AnalysisRequest)> = chain_range
        .map(|d| (chain_family_with_deadline(2, d), exact(7)))
        .collect();

    // deadline edits of the paper's running example, first constraint
    let (mok, _) = mok_example::default_model();
    let mok_range = if quick { 4..=7u64 } else { 3..=10u64 };
    let mok_jobs: Vec<(Model, AnalysisRequest)> = mok_range
        .filter_map(|d| with_deadline(&mok, ConstraintId::new(0), d).unwrap())
        .map(|m| (m, exact(6)))
        .collect();

    vec![
        Scenario {
            name: "chain2_deadline_sweep",
            jobs: chain_jobs,
        },
        Scenario {
            name: "mok_deadline_sweep",
            jobs: mok_jobs,
        },
    ]
}

struct Row {
    name: &'static str,
    requests: usize,
    cold_evals: u64,
    warm_evals: u64,
    reuse_factor: f64,
    cold_s: f64,
    warm_s: f64,
}

fn write_json(rows: &[Row]) {
    let mut rep = BenchReport::new("batch", "leaf_evals_computed");
    for r in rows {
        rep.row(
            ScenarioRow::new(r.name)
                .int("requests", r.requests as u64)
                .int("cold_leaf_evals", r.cold_evals)
                .int("warm_leaf_evals", r.warm_evals)
                .float("reuse_factor", r.reuse_factor, 2)
                .float("cold_s", r.cold_s, 9)
                .float("warm_s", r.warm_s, 9),
        );
    }
    rep.write();
}

fn bench_batch(c: &mut Criterion) {
    let quick = rtcg_bench::report::quick();
    let opts = BatchOptions {
        threads: 2,
        budget_ms: None,
    };

    let mut rows = Vec::new();
    let mut group = c.benchmark_group("batch");
    group.sample_size(10);

    for s in scenarios(quick) {
        // the invariant first: warm batch verdicts bit-identical to
        // sequential analyze_once per request
        let warm_engine = Engine::new();
        let warm_start = Instant::now();
        let results = warm_engine.analyze_batch(&s.jobs, &opts);
        let warm_s = warm_start.elapsed().as_secs_f64();
        let mut cold_evals = 0u64;
        let cold_start = Instant::now();
        for ((model, req), result) in s.jobs.iter().zip(&results) {
            assert!(
                !result.is_degraded(),
                "{}: no budget, no degradation",
                s.name
            );
            let got = result.report.as_ref().unwrap();
            let cold_engine = Engine::new();
            let want = cold_engine.analyze(model, req).unwrap();
            cold_evals += cold_engine.stats().leaf_evals_computed;
            assert_eq!(
                got.verdict.schedule().map(|sch| sch.actions().to_vec()),
                want.verdict.schedule().map(|sch| sch.actions().to_vec()),
                "{}: schedule divergence",
                s.name
            );
            assert_eq!(
                got.verdict.is_feasible(),
                want.verdict.is_feasible(),
                "{}: verdict divergence",
                s.name
            );
            let (gs, ws) = (got.search.unwrap(), want.search.unwrap());
            assert_eq!(gs.nodes_visited, ws.nodes_visited, "{}", s.name);
            assert_eq!(gs.candidates_checked, ws.candidates_checked, "{}", s.name);
            // and against the one-shot front door too
            let once = analyze_once(model, req).unwrap();
            assert_eq!(
                got.verdict.schedule().map(|sch| sch.actions().to_vec()),
                once.verdict.schedule().map(|sch| sch.actions().to_vec()),
                "{}: analyze_once divergence",
                s.name
            );
        }
        let cold_s = cold_start.elapsed().as_secs_f64();

        let warm_stats = warm_engine.stats();
        let warm_evals = warm_stats.leaf_evals_computed;
        let reuse_factor = cold_evals as f64 / warm_evals.max(1) as f64;
        println!(
            "batch/{}: {} requests, cold {} leaf evals, warm {} computed (+{} memo-served) — {:.1}x reuse, cold {:.1} ms, warm {:.1} ms",
            s.name,
            s.jobs.len(),
            cold_evals,
            warm_evals,
            warm_stats.leaf_evals_saved,
            reuse_factor,
            cold_s * 1e3,
            warm_s * 1e3
        );

        group.bench_with_input(
            BenchmarkId::new("cold_sequential", s.name),
            &s.jobs,
            |b, jobs| {
                b.iter(|| {
                    for (model, req) in jobs {
                        black_box(Engine::new().analyze(model, req).unwrap());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("warm_batch", s.name),
            &s.jobs,
            |b, jobs| {
                b.iter(|| {
                    let engine = Engine::new();
                    black_box(engine.analyze_batch(jobs, &opts));
                })
            },
        );

        rows.push(Row {
            name: s.name,
            requests: s.jobs.len(),
            cold_evals,
            warm_evals,
            reuse_factor,
            cold_s,
            warm_s,
        });
    }
    group.finish();

    write_json(&rows);

    for r in &rows {
        assert!(
            r.reuse_factor >= 3.0,
            "batch/{}: cross-request reuse {:.2}x below the 3x acceptance gate \
             (cold {} vs warm {})",
            r.name,
            r.reuse_factor,
            r.cold_evals,
            r.warm_evals
        );
    }
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
