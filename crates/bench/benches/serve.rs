//! Edit-stream throughput of a resident serve session against cold
//! per-edit analysis: the tentpole's headline number.
//!
//! The workload is the interactive traffic `rtcg serve` exists for — a
//! stream of model deltas (deadline/period retunes and channel splices
//! over a fixed structure) each followed by an exact re-analysis. A
//! cold engine per edit recomputes every leaf evaluation from scratch;
//! a resident [`Session`] keeps the candidate memo hot because
//! sub-fingerprint diffs prove retunes and splices invalidate no memo
//! slice.
//!
//! For every edit the bench first asserts **bit-identical reports**
//! (verdict, schedule, search counters) between the resident session
//! and a cold `analyze_once` of the same model, and that retune deltas
//! evicted zero candidate-memo slices while superseded result-memo
//! entries left their shards (visible in the shard eviction counters).
//! The acceptance gate is a ≥5x leaf-eval reuse factor on the
//! chain-family stream; measured numbers go to `BENCH_serve.json` at
//! the repo root (`RTCG_BENCH_OUT` overrides, `RTCG_BENCH_QUICK=1`
//! shrinks the stream for CI smoke runs).
//!
//! [`Session`]: rtcg_engine::session::Session

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rtcg_bench::{BenchReport, ScenarioRow};
use rtcg_core::feasibility::SearchConfig;
use rtcg_core::model::Model;
use rtcg_core::mok_example;
use rtcg_core::{ConstraintId, ModelDelta};
use rtcg_engine::{analyze_once, AnalysisMode, AnalysisRequest, Engine, EngineOptions, Query};
use rtcg_hardness::families::chain_family_with_deadline;
use std::time::Instant;

struct Scenario {
    name: &'static str,
    base: Model,
    stream: Vec<ModelDelta>,
    max_len: usize,
    gate: f64,
}

fn exact_query(max_len: usize) -> Query {
    Query {
        mode: AnalysisMode::Exact,
        search: SearchConfig {
            max_len,
            node_budget: 60_000_000,
        },
        ..Query::default()
    }
}

/// Retune stream over the 2-chain family: both constraints' deadlines
/// sweep the feasibility boundary, with revisits (an editor nudging a
/// value back and forth), plus separation retunes.
fn chain_stream(quick: bool) -> Vec<ModelDelta> {
    let deadlines: &[u64] = if quick {
        &[10, 12, 9, 13, 10, 11]
    } else {
        &[10, 12, 9, 13, 8, 14, 10, 11, 15, 9, 12, 10]
    };
    let mut stream = Vec::new();
    for (i, &d) in deadlines.iter().enumerate() {
        stream.push(ModelDelta::SetDeadline {
            constraint: ConstraintId::new((i % 2) as u32),
            deadline: d,
        });
        if i % 3 == 2 {
            stream.push(ModelDelta::SetPeriod {
                constraint: ConstraintId::new(((i + 1) % 2) as u32),
                period: d + 2,
            });
        }
    }
    stream
}

/// Retune + splice stream over the paper's running example.
fn mok_stream(quick: bool) -> Vec<ModelDelta> {
    // x-chain computation is 4 (c_x + c_s + c_k), so deadlines stay >= 4
    let deadlines: &[u64] = if quick {
        &[5, 7, 4, 6]
    } else {
        &[5, 7, 4, 6, 8, 4, 5, 7]
    };
    let mut stream = Vec::new();
    for (i, &d) in deadlines.iter().enumerate() {
        stream.push(ModelDelta::SetDeadline {
            constraint: ConstraintId::new(0),
            deadline: d,
        });
        if i % 2 == 1 {
            // channel splices touch regions, not constraint columns
            stream.push(if i % 4 == 1 {
                ModelDelta::AddChannel {
                    from: "fX".into(),
                    to: "fK".into(),
                    label: None,
                }
            } else {
                ModelDelta::RemoveChannel {
                    from: "fX".into(),
                    to: "fK".into(),
                }
            });
        }
    }
    stream
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let (mok, _) = mok_example::default_model();
    vec![
        Scenario {
            name: "chain2_edit_stream",
            base: chain_family_with_deadline(2, 11),
            stream: chain_stream(quick),
            max_len: 7,
            gate: 5.0,
        },
        Scenario {
            name: "mok_edit_stream",
            base: mok,
            stream: mok_stream(quick),
            max_len: 6,
            gate: 3.0,
        },
    ]
}

struct Row {
    name: &'static str,
    edits: usize,
    cold_evals: u64,
    warm_evals: u64,
    reuse_factor: f64,
    cold_s: f64,
    warm_s: f64,
    slices_evicted: u64,
}

fn write_json(rows: &[Row]) {
    let mut rep = BenchReport::new("serve", "leaf_evals_computed");
    for r in rows {
        rep.row(
            ScenarioRow::new(r.name)
                .int("edits", r.edits as u64)
                .int("cold_leaf_evals", r.cold_evals)
                .int("warm_leaf_evals", r.warm_evals)
                .float("reuse_factor", r.reuse_factor, 2)
                .float("cold_s", r.cold_s, 9)
                .float("warm_s", r.warm_s, 9)
                .int("slices_evicted", r.slices_evicted),
        );
    }
    rep.write();
}

/// Drives the whole edit stream through one resident session,
/// analyzing after every delta. Returns leaf evals computed.
fn run_resident(scenario: &Scenario, engine: &Engine) -> u64 {
    let mut session = engine.open_session(scenario.base.clone()).unwrap();
    let query = exact_query(scenario.max_len);
    session.analyze(&query).unwrap();
    for delta in &scenario.stream {
        session.apply(delta).unwrap();
        black_box(session.analyze(&query).unwrap());
    }
    engine.stats().leaf_evals_computed
}

fn bench_serve(c: &mut Criterion) {
    let quick = rtcg_bench::report::quick();
    let mut rows = Vec::new();
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    for s in scenarios(quick) {
        // the invariants first: walk the stream once, checking each
        // resident report against a cold analyze_once of the same model
        let engine = Engine::new();
        let mut session = engine.open_session(s.base.clone()).unwrap();
        let query = exact_query(s.max_len);
        let req = AnalysisRequest::from_parts(&query, &EngineOptions::default());
        let warm_start = Instant::now();
        session.analyze(&query).unwrap();
        let mut slices_evicted = 0u64;
        for delta in &s.stream {
            let out = session.apply(delta).unwrap();
            slices_evicted += out.slices_evicted;
            if matches!(
                delta,
                ModelDelta::SetDeadline { .. }
                    | ModelDelta::SetPeriod { .. }
                    | ModelDelta::AddChannel { .. }
                    | ModelDelta::RemoveChannel { .. }
            ) {
                assert_eq!(
                    out.slices_evicted, 0,
                    "{}: retunes/splices must evict no candidate-memo slice",
                    s.name
                );
            }
            session.analyze(&query).unwrap();
        }
        let warm_s = warm_start.elapsed().as_secs_f64();
        let warm_evals = engine.stats().leaf_evals_computed;
        // superseded models' result-memo entries left their shards: the
        // daemon's footprint stays bounded by live content, not history
        let stats = engine.stats();
        let shard_evictions: u64 = stats.shards.iter().map(|x| x.evictions).sum();
        let occupancy: u64 = stats.shards.iter().map(|x| x.occupancy).sum();
        assert!(
            shard_evictions >= s.stream.len() as u64,
            "{}: each delta evicts its superseded result slice",
            s.name
        );
        assert!(
            occupancy <= 2,
            "{}: only live-content results stay resident, found {occupancy}",
            s.name
        );

        // cold baseline: replay the stream, full analysis per edit,
        // asserting bit-identity with the resident reports
        let mut cold_evals = 0u64;
        let cold_start = Instant::now();
        let mut model = s.base.clone();
        let mut warm_session = engine.open_session(s.base.clone()).unwrap();
        cold_evals += {
            let cold_engine = Engine::new();
            cold_engine.analyze(&model, &req).unwrap();
            cold_engine.stats().leaf_evals_computed
        };
        for delta in &s.stream {
            model = delta.apply(&model).unwrap();
            warm_session.apply(delta).unwrap();
            let cold_engine = Engine::new();
            let cold = cold_engine.analyze(&model, &req).unwrap();
            cold_evals += cold_engine.stats().leaf_evals_computed;
            let warm = warm_session.analyze(&query).unwrap();
            assert_eq!(
                warm.verdict.schedule().map(|x| x.actions().to_vec()),
                cold.verdict.schedule().map(|x| x.actions().to_vec()),
                "{}: schedule divergence",
                s.name
            );
            let (ws, cs) = (warm.search.unwrap(), cold.search.unwrap());
            assert_eq!(ws.nodes_visited, cs.nodes_visited, "{}", s.name);
            assert_eq!(ws.candidates_checked, cs.candidates_checked, "{}", s.name);
            // and the one-shot front door agrees as well
            let once = analyze_once(&model, &req).unwrap();
            assert_eq!(
                warm.verdict.is_feasible(),
                once.verdict.is_feasible(),
                "{}: analyze_once divergence",
                s.name
            );
        }
        let cold_s = cold_start.elapsed().as_secs_f64();

        let reuse_factor = cold_evals as f64 / warm_evals.max(1) as f64;
        println!(
            "serve/{}: {} edits, cold {} leaf evals, resident {} — {:.1}x reuse, \
             {} slices evicted, cold {:.1} ms, resident {:.1} ms",
            s.name,
            s.stream.len(),
            cold_evals,
            warm_evals,
            reuse_factor,
            slices_evicted,
            cold_s * 1e3,
            warm_s * 1e3
        );

        group.bench_with_input(BenchmarkId::new("cold_per_edit", s.name), &s, |b, s| {
            b.iter(|| {
                let mut model = s.base.clone();
                let req =
                    AnalysisRequest::from_parts(&exact_query(s.max_len), &EngineOptions::default());
                black_box(Engine::new().analyze(&model, &req).unwrap());
                for delta in &s.stream {
                    model = delta.apply(&model).unwrap();
                    black_box(Engine::new().analyze(&model, &req).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("resident_session", s.name), &s, |b, s| {
            b.iter(|| {
                let engine = Engine::new();
                black_box(run_resident(s, &engine));
            })
        });

        rows.push(Row {
            name: s.name,
            edits: s.stream.len(),
            cold_evals,
            warm_evals,
            reuse_factor,
            cold_s,
            warm_s,
            slices_evicted,
        });
    }
    group.finish();

    write_json(&rows);

    for r in &rows {
        let gate = scenarios(quick)
            .iter()
            .find(|s| s.name == r.name)
            .map(|s| s.gate)
            .unwrap();
        assert!(
            r.reuse_factor >= gate,
            "serve/{}: resident reuse {:.2}x below the {:.0}x acceptance gate \
             (cold {} vs resident {})",
            r.name,
            r.reuse_factor,
            gate,
            r.cold_evals,
            r.warm_evals
        );
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
