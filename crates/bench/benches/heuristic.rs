//! Criterion bench for E5: Theorem-3 heuristic synthesis cost, plus the
//! compaction ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtcg_bench::gen::random_async_model;
use rtcg_core::heuristic::{compact, generate_edf_schedule, synthesize, SplitStrategy};

fn bench_synthesize_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize_theorem3_region");
    for n in [2usize, 4, 8] {
        let model = random_async_model(n, 0.4, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, m| {
            b.iter(|| synthesize(m).expect("theorem-3 region instance"))
        });
    }
    group.finish();
}

fn bench_edf_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("edf_generation");
    let model = random_async_model(6, 0.4, 7);
    for (name, strategy) in [
        ("half", SplitStrategy::Half),
        ("wide", SplitStrategy::WidePeriod),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, m| {
            b.iter(|| generate_edf_schedule(m, strategy, 1_000_000))
        });
    }
    group.finish();
}

fn bench_latency_analysis(c: &mut Criterion) {
    // exact feasibility analysis is the verification workhorse — measure
    // its cost against schedule length
    let mut group = c.benchmark_group("exact_feasibility_analysis");
    group.sample_size(20);
    for n in [2usize, 4, 8] {
        let model = random_async_model(n, 0.4, 11);
        let out = synthesize(&model).expect("feasible");
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(out.model().clone(), out.schedule.clone()),
            |b, (m, s)| b.iter(|| s.feasibility(m).unwrap()),
        );
    }
    group.finish();
}

fn bench_compaction_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("compaction_ablation");
    group.sample_size(10);
    let model = random_async_model(4, 0.3, 5);
    let out = synthesize(&model).expect("feasible");
    group.bench_function("compact", |b| {
        b.iter(|| compact(out.model(), &out.schedule).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_synthesize_by_size,
    bench_edf_generation,
    bench_latency_analysis,
    bench_compaction_ablation
);
criterion_main!(benches);
