//! Criterion bench for the graph substrate: the operations the analysis
//! layers lean on hardest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtcg_graph::{algo, generate, DiGraph};

fn sized_dag(n: usize) -> DiGraph<usize, ()> {
    let mut state = 0x5EEDu64;
    let (g, _) = generate::random_dag(
        n,
        80,
        |i| i,
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        },
    );
    g
}

fn bench_topo_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("topo_sort");
    for n in [64usize, 256, 1024] {
        let g = sized_dag(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| algo::topo_sort(g).unwrap())
        });
    }
    group.finish();
}

fn bench_transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("transitive_closure");
    for n in [64usize, 256, 1024] {
        let g = sized_dag(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| algo::transitive_closure(g))
        });
    }
    group.finish();
}

fn bench_scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("strongly_connected_components");
    for n in [256usize, 1024] {
        // add back-edges to create components
        let mut g = sized_dag(n);
        let ids: Vec<_> = g.node_ids().collect();
        for w in ids.chunks(8) {
            if w.len() >= 2 {
                g.add_edge(w[w.len() - 1], w[0], ()).unwrap();
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| algo::strongly_connected_components(g))
        });
    }
    group.finish();
}

fn bench_homomorphism(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_homomorphism_chain_into_dag");
    let host = sized_dag(128);
    for len in [3usize, 5] {
        let (pattern, _) = generate::chain(len, |_| ());
        group.bench_with_input(
            BenchmarkId::from_parameter(len),
            &(pattern, host.clone()),
            |b, (p, h)| {
                b.iter(|| {
                    let _ = algo::find_homomorphism(p, h, |_| h.node_ids().collect());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_topo_sort,
    bench_transitive_closure,
    bench_scc,
    bench_homomorphism
);
criterion_main!(benches);
