//! Cold-vs-warm fleet throughput over a generated corpus: the
//! persistent-snapshot tentpole's headline number.
//!
//! The workload models a nightly analysis fleet: ≥1000 seeded specs
//! from [`generate_corpus`] (chain / mok / 3-PARTITION / single-op /
//! random-DAG families) driven through [`Engine::analyze_batch`]. The
//! cold pass runs on a fresh engine and saves its memo to a snapshot
//! file; the warm pass loads that file into another fresh engine and
//! replays the identical batch — the `rtcg corpus run --cache-file`
//! flow, in-process.
//!
//! Before any timing the bench asserts **bit-identical reports**
//! (verdict, schedule, search counters, `groups_merged`) between the
//! cold and warm passes, that the warm pass computed zero leaf
//! evaluations, and that every warm request was a result-memo hit. The
//! acceptance gate is a ≥3x aggregate models/sec speedup; measured
//! numbers go to `BENCH_corpus.json` at the repo root
//! (`RTCG_BENCH_OUT` overrides, `RTCG_BENCH_QUICK=1` shrinks the
//! corpus for CI smoke runs).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rtcg_bench::{generate_corpus, BenchReport, ScenarioRow};
use rtcg_core::feasibility::SearchConfig;
use rtcg_core::model::Model;
use rtcg_engine::batch::BatchOptions;
use rtcg_engine::{AnalysisMode, AnalysisRequest, Engine};
use std::time::Instant;

const SEED: u64 = 0xC0_0B5;

/// The per-family request mix: heuristic for the bulk ingest shapes,
/// merged on the mok sweeps, and a budgeted exact search on the
/// single-op family (small alphabet, witness length `2n`) so the
/// candidate-memo sections of the snapshot carry real weight.
fn request_for(name: &str, model: &Model) -> AnalysisRequest {
    if name.starts_with("mok") {
        AnalysisRequest {
            mode: AnalysisMode::Merged,
            ..AnalysisRequest::default()
        }
    } else if name.starts_with("singleop") {
        let n = model.constraints().len() - 1;
        AnalysisRequest {
            search: SearchConfig {
                max_len: 2 * n,
                node_budget: 50_000,
            },
            ..AnalysisRequest::exact()
        }
    } else {
        AnalysisRequest::default()
    }
}

fn assert_identical(cold: &rtcg_engine::AnalysisReport, warm: &rtcg_engine::AnalysisReport) {
    use rtcg_engine::Verdict::*;
    match (&cold.verdict, &warm.verdict) {
        (
            Feasible {
                schedule: sa,
                strategy: ta,
            },
            Feasible {
                schedule: sb,
                strategy: tb,
            },
        ) => {
            assert_eq!(ta, tb);
            assert_eq!(sa.actions(), sb.actions());
        }
        (Infeasible { reason: ra }, Infeasible { reason: rb })
        | (Unknown { reason: ra }, Unknown { reason: rb }) => assert_eq!(ra, rb),
        (va, vb) => panic!("verdict shape diverged: {va:?} vs {vb:?}"),
    }
    match (&cold.search, &warm.search) {
        (Some(sa), Some(sb)) => {
            assert_eq!(sa.nodes_visited, sb.nodes_visited);
            assert_eq!(sa.candidates_checked, sb.candidates_checked);
            assert_eq!(sa.exhausted_bound, sb.exhausted_bound);
        }
        (None, None) => {}
        (sa, sb) => panic!("search stats diverged: {sa:?} vs {sb:?}"),
    }
    assert_eq!(cold.groups_merged, warm.groups_merged);
}

fn bench_corpus(c: &mut Criterion) {
    let quick = rtcg_bench::report::quick();
    let count = if quick { 150 } else { 1000 };
    let specs = generate_corpus(count, SEED);
    let jobs: Vec<(Model, AnalysisRequest)> = specs
        .iter()
        .map(|s| (s.model.clone(), request_for(&s.name, &s.model)))
        .collect();
    let opts = BatchOptions {
        threads: 1,
        budget_ms: None,
    };

    // cold pass: fresh engine, then persist its memo
    let cold_engine = Engine::new();
    let cold_start = Instant::now();
    let cold_results = cold_engine.analyze_batch(&jobs, &opts);
    let cold_s = cold_start.elapsed().as_secs_f64();
    let cold_evals = cold_engine.stats().leaf_evals_computed;

    let snap_path = std::env::temp_dir().join("rtcg_bench_corpus.snap");
    let save = cold_engine.save_snapshot(&snap_path).unwrap();
    println!(
        "corpus: snapshot {} section(s), {} result entries, {} bytes",
        save.sections, save.result_entries, save.bytes
    );

    // warm pass: another fresh engine, primed only by the snapshot file
    let warm_engine = Engine::new();
    let load = warm_engine.load_snapshot(&snap_path).unwrap();
    assert_eq!(load.sections_skipped, 0, "nothing in the file is stale");
    assert_eq!(load.entries_skipped, 0);
    let warm_start = Instant::now();
    let warm_results = warm_engine.analyze_batch(&jobs, &opts);
    let warm_s = warm_start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&snap_path);

    // the invariants: bit-identical reports, all hits, zero leaf evals
    assert_eq!(cold_results.len(), warm_results.len());
    for (i, (cold, warm)) in cold_results.iter().zip(&warm_results).enumerate() {
        match (&cold.report, &warm.report) {
            (Ok(a), Ok(b)) => {
                assert!(
                    b.cached,
                    "{}: warm request must be a memo hit",
                    specs[i].name
                );
                assert_identical(a, b);
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("{}: outcome diverged: {a:?} vs {b:?}", specs[i].name),
        }
    }
    let warm_stats = warm_engine.stats();
    assert_eq!(warm_stats.leaf_evals_computed, 0);
    assert_eq!(warm_stats.misses, 0);
    assert_eq!(warm_stats.snapshot.loads, 1);

    let speedup = cold_s / warm_s;
    println!(
        "corpus: {} specs — cold {:.0} models/s, warm {:.0} models/s — {:.1}x",
        count,
        count as f64 / cold_s,
        count as f64 / warm_s,
        speedup
    );

    // criterion-sample the warm replay (the steady-state fleet path);
    // the cold pass was timed once above — re-running it would re-warm
    // the shared engine and measure nothing
    let mut group = c.benchmark_group("corpus");
    group.sample_size(10);
    group.bench_function("warm_replay", |b| {
        b.iter(|| black_box(warm_engine.analyze_batch(&jobs, &opts)))
    });
    group.finish();

    let mut rep = BenchReport::new("corpus", "models_per_s");
    rep.aggregate("warm_vs_cold_speedup", speedup, 2);
    rep.row(
        ScenarioRow::new("generated_fleet")
            .int("specs", count as u64)
            .float("cold_s", cold_s, 9)
            .float("warm_s", warm_s, 9)
            .float("cold_models_per_s", count as f64 / cold_s, 2)
            .float("warm_models_per_s", count as f64 / warm_s, 2)
            .int("cold_leaf_evals", cold_evals)
            .int("warm_leaf_evals", warm_stats.leaf_evals_computed)
            .int("snapshot_bytes", save.bytes)
            .int("snapshot_sections", save.sections),
    );
    rep.write();

    assert!(
        speedup >= 3.0,
        "corpus: warm speedup {speedup:.2}x below the 3x acceptance gate"
    );
}

criterion_group!(benches, bench_corpus);
criterion_main!(benches);
