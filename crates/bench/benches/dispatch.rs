//! Criterion bench for E7: per-tick dispatch cost — table lookup vs
//! dynamic EDF (heap) vs LLF (scan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtcg_core::model::ElementId;
use rtcg_core::schedule::{Action, StaticSchedule};
use rtcg_sim::dispatch::{
    synthetic_jobs, Dispatcher, EdfDispatcher, LlfDispatcher, TableDispatcher,
};

fn bench_dispatchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_per_tick");
    for n in [8usize, 32, 128, 512] {
        let actions: Vec<Action> = (0..n)
            .map(|i| Action::Run(ElementId::new(i as u32)))
            .collect();
        let schedule = StaticSchedule::new(actions);
        group.bench_with_input(BenchmarkId::new("table", n), &schedule, |b, s| {
            let mut d = TableDispatcher::new(s, |_| 1);
            b.iter(|| d.next())
        });
        group.bench_with_input(BenchmarkId::new("edf_heap", n), &n, |b, &n| {
            let mut d = EdfDispatcher::new(synthetic_jobs(n));
            b.iter(|| d.next())
        });
        group.bench_with_input(BenchmarkId::new("llf_scan", n), &n, |b, &n| {
            let mut d = LlfDispatcher::new(synthetic_jobs(n));
            b.iter(|| d.next())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatchers);
criterion_main!(benches);
