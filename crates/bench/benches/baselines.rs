//! Criterion bench for E8: schedulability-analysis cost of the
//! process-model baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtcg_bench::gen::random_process_set;
use rtcg_core::model::CommGraph;
use rtcg_process::{edf_schedulable, rm_schedulable_exact};
use rtcg_sim::dynamic::{simulate_processes, Policy, Preemption, ProcessSim};

fn bench_rm_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("rm_exact_analysis");
    for n in [4usize, 8, 16] {
        let set = random_process_set(n, 0.7, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, s| {
            b.iter(|| rm_schedulable_exact(s).unwrap())
        });
    }
    group.finish();
}

fn bench_edf_demand(c: &mut Criterion) {
    let mut group = c.benchmark_group("edf_demand_analysis");
    for n in [4usize, 8, 16] {
        let set = random_process_set(n, 0.9, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, s| {
            b.iter(|| edf_schedulable(s, 100_000_000).unwrap())
        });
    }
    group.finish();
}

fn bench_dynamic_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_simulation_1k_ticks");
    group.sample_size(20);
    for policy in [Policy::Edf, Policy::Rm, Policy::Llf] {
        let set = random_process_set(6, 0.8, 3);
        let mut comm = CommGraph::new();
        let mut bodies = Vec::new();
        let mut arrivals: Vec<Vec<u64>> = Vec::new();
        for (i, p) in set.processes().iter().enumerate() {
            let e = comm.add_element(format!("e{i}"), p.wcet).unwrap();
            bodies.push(vec![e]);
            arrivals.push(
                (0..)
                    .map(|k| k * p.period)
                    .take_while(|&t| t < 1000)
                    .collect(),
            );
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let input = ProcessSim {
                        set: &set,
                        comm: &comm,
                        bodies: &bodies,
                        arrivals: &arrivals,
                    };
                    simulate_processes(&input, policy, Preemption::Tick, 1000).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rm_exact,
    bench_edf_demand,
    bench_dynamic_simulation
);
criterion_main!(benches);
