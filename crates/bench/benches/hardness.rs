//! Criterion bench for E3/E4: complete-decider cost on Theorem 2's
//! restricted families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtcg_core::feasibility::{exact, game};
use rtcg_hardness::{
    chain_family, encode_three_partition, single_op_family, solve_three_partition,
    witness_schedule, ThreePartition,
};

fn bench_exact_search_chain_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_search_chain_family");
    group.sample_size(10);
    for n in [1usize, 2] {
        let model = chain_family(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, m| {
            b.iter(|| {
                exact::find_feasible(
                    m,
                    exact::SearchConfig {
                        max_len: 3 * n + 1,
                        node_budget: 60_000_000,
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_game_single_op_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("game_single_op_family");
    group.sample_size(10);
    for n in [1usize, 2, 3] {
        let model = single_op_family(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, m| {
            b.iter(|| {
                game::solve_game(
                    m,
                    game::GameConfig {
                        state_budget: 3_000_000,
                        frontier: Default::default(),
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_three_partition_witness(c: &mut Criterion) {
    let mut group = c.benchmark_group("three_partition_witness_verify");
    group.sample_size(10);
    for m in [2usize, 4, 6] {
        let inst = ThreePartition::generate_yes(m, 7);
        let partition = solve_three_partition(&inst).unwrap();
        let model = encode_three_partition(&inst).unwrap();
        let schedule = witness_schedule(&model, &partition).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(m),
            &(model, schedule),
            |b, (model, schedule)| b.iter(|| schedule.feasibility(model).unwrap()),
        );
    }
    group.finish();
}

fn bench_game_frontier_ablation(c: &mut Criterion) {
    // DESIGN §5: visited-state representation ablation — hashed vs
    // ordered frontier on the same instance
    let mut group = c.benchmark_group("game_frontier_ablation");
    group.sample_size(10);
    let model = single_op_family(3);
    for (name, frontier) in [
        ("hashed", game::Frontier::Hashed),
        ("ordered", game::Frontier::Ordered),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, m| {
            b.iter(|| {
                game::solve_game(
                    m,
                    game::GameConfig {
                        state_budget: 3_000_000,
                        frontier,
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_parallel_search(c: &mut Criterion) {
    // sequential vs parallel complete search on the 2-chain family
    let mut group = c.benchmark_group("exact_search_seq_vs_par");
    group.sample_size(10);
    let model = chain_family(2);
    let cfg = exact::SearchConfig {
        max_len: 7,
        node_budget: 60_000_000,
    };
    group.bench_function("seq", |b| {
        b.iter(|| exact::find_feasible(&model, cfg).unwrap())
    });
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("par", threads), &threads, |b, &threads| {
            b.iter(|| {
                rtcg_core::feasibility::parallel::find_feasible_parallel(&model, cfg, threads)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_search_chain_family,
    bench_game_single_op_family,
    bench_three_partition_witness,
    bench_game_frontier_ablation,
    bench_parallel_search
);
criterion_main!(benches);
