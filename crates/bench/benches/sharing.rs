//! Criterion bench for E6: naive synthesis vs shared-operation merging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtcg_bench::gen::shared_core_model;
use rtcg_core::constraint::ConstraintId;
use rtcg_process::naive_synthesis;
use rtcg_synth::{merge_constraints, synthesize_programs};

fn bench_naive_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("naive_synthesis");
    for k in [2usize, 4, 8] {
        let model = shared_core_model(k, 3);
        group.bench_with_input(BenchmarkId::from_parameter(k), &model, |b, m| {
            b.iter(|| naive_synthesis(m).unwrap())
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_constraints");
    for k in [2usize, 4, 8] {
        let model = shared_core_model(k, 3);
        let ids: Vec<ConstraintId> = (0..k as u32).map(ConstraintId::new).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(k),
            &(model, ids),
            |b, (m, ids)| b.iter(|| merge_constraints(m, ids).unwrap()),
        );
    }
    group.finish();
}

fn bench_program_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("program_synthesis");
    for k in [2usize, 8] {
        let model = shared_core_model(k, 3);
        group.bench_with_input(BenchmarkId::from_parameter(k), &model, |b, m| {
            b.iter(|| synthesize_programs(m).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_naive_synthesis,
    bench_merge,
    bench_program_synthesis
);
criterion_main!(benches);
