//! Deterministic random generators for experiment sweeps.
//!
//! All generators are seeded; deadlines are drawn from a "nice" divisor
//! set so hyperperiods stay small enough for EDF-based synthesis to run
//! within budget — the sweep buckets results by *measured* density, so
//! rounding does not bias the experiment.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtcg_core::model::{Model, ModelBuilder};
use rtcg_core::task::TaskGraphBuilder;
use rtcg_process::{Process, ProcessKind, ProcessSet};

/// Deadline values with pairwise-small LCMs.
const NICE: &[u64] = &[2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128];

/// Rounds down to the largest nice value ≤ `x` (or the smallest nice
/// value when `x` is below all of them).
fn round_nice(x: u64) -> u64 {
    NICE.iter()
        .rev()
        .copied()
        .find(|&v| v <= x)
        .unwrap_or(NICE[0])
}

/// Generates a random asynchronous model of `n` chain constraints whose
/// total deadline density is approximately `target_density`. Each
/// constraint is a chain of `w ∈ {1..3}` distinct unit-weight elements
/// with deadline `≈ w·n/target_density`, rounded to the nice set.
/// Returns the model (its *measured* density may differ slightly; bucket
/// by [`Model::deadline_density`]).
pub fn random_async_model(n: usize, target_density: f64, seed: u64) -> Model {
    assert!(n >= 1 && target_density > 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = ModelBuilder::new();
    for i in 0..n {
        let w = rng.gen_range(1..=3u64);
        let raw_d = ((w as f64) * (n as f64) / target_density).round() as u64;
        let d = round_nice(raw_d.max(w));
        let mut tb = TaskGraphBuilder::new();
        let mut prev = None;
        for k in 0..w {
            let e = b.element(&format!("e{i}_{k}"), 1);
            tb = tb.op(&format!("o{k}"), e);
            if let Some(p) = prev {
                let _ = p; // channel added below by label pairing
            }
            prev = Some(e);
        }
        // channels along the chain
        for k in 1..w {
            let from = b.comm().lookup(&format!("e{i}_{}", k - 1)).unwrap();
            let to = b.comm().lookup(&format!("e{i}_{k}")).unwrap();
            b.channel(from, to);
        }
        for k in 1..w {
            tb = tb.edge(&format!("o{}", k - 1), &format!("o{k}"));
        }
        let task = tb.build().expect("chain builds");
        // clamp deadline so the model validates (w ≤ d)
        let d = d.max(w);
        b.asynchronous(&format!("c{i}"), task, d, d);
    }
    b.build().expect("generated model is valid")
}

/// Generates a random periodic process set of `n` processes with total
/// utilization approximately `target_util`: periods from the nice set,
/// weights by proportional share (each process gets ≥ 1 tick).
pub fn random_process_set(n: usize, target_util: f64, seed: u64) -> ProcessSet {
    assert!(n >= 1 && target_util > 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut set = ProcessSet::new();
    // proportional utilization shares
    let mut shares: Vec<f64> = (0..n).map(|_| rng.gen_range(0.2..1.0)).collect();
    let total: f64 = shares.iter().sum();
    for s in &mut shares {
        *s = *s / total * target_util;
    }
    for (i, share) in shares.iter().enumerate() {
        let period = NICE[rng.gen_range(3..NICE.len())];
        let wcet = ((share * period as f64).round() as u64).clamp(1, period);
        set.add(Process {
            name: format!("p{i}"),
            wcet,
            period,
            deadline: period,
            kind: ProcessKind::Periodic,
        })
        .expect("valid process");
    }
    set
}

/// Builds the shared-core family for E6: `k` periodic constraints, each
/// `private_i → core_0 → … → core_{s-1}` where the `s`-element core
/// (unit weights) is shared by every constraint and all periods equal
/// `p = 4·(k + s)` (the paper's `p_x = p_y` situation scaled up).
pub fn shared_core_model(k: usize, s: usize) -> Model {
    assert!(k >= 1 && s >= 1);
    let mut b = ModelBuilder::new();
    let core: Vec<_> = (0..s).map(|j| b.element(&format!("core{j}"), 1)).collect();
    for w in core.windows(2) {
        b.channel(w[0], w[1]);
    }
    let p = 4 * (k + s) as u64;
    for i in 0..k {
        let private = b.element(&format!("in{i}"), 1);
        b.channel(private, core[0]);
        let mut tb = TaskGraphBuilder::new().op("in", private);
        for (j, &c) in core.iter().enumerate() {
            tb = tb.op(&format!("core{j}"), c);
        }
        tb = tb.edge("in", "core0");
        for j in 1..s {
            tb = tb.edge(&format!("core{}", j - 1), &format!("core{j}"));
        }
        let task = tb.build().expect("chain builds");
        b.periodic(&format!("chain{i}"), task, p, p);
    }
    b.build().expect("shared-core model valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice_rounding() {
        assert_eq!(round_nice(1), 2);
        assert_eq!(round_nice(2), 2);
        assert_eq!(round_nice(5), 4);
        assert_eq!(round_nice(100), 96);
        assert_eq!(round_nice(10_000), 128);
    }

    #[test]
    fn async_model_density_near_target() {
        for &target in &[0.2, 0.4, 0.6] {
            let m = random_async_model(4, target, 11);
            let d = m.deadline_density();
            assert!(
                d > target * 0.4 && d < target * 2.5,
                "target {target} measured {d}"
            );
            m.validate().unwrap();
        }
    }

    #[test]
    fn async_model_deterministic() {
        let a = random_async_model(5, 0.5, 3);
        let b = random_async_model(5, 0.5, 3);
        assert_eq!(a.deadline_density(), b.deadline_density());
        assert_eq!(a.comm().element_count(), b.comm().element_count());
    }

    #[test]
    fn process_set_util_near_target() {
        for &target in &[0.3, 0.7, 0.95] {
            let s = random_process_set(6, target, 5);
            let u = rtcg_process::utilization(&s);
            assert!((u - target).abs() < 0.3, "target {target} measured {u}");
        }
    }

    #[test]
    fn shared_core_shape() {
        let m = shared_core_model(3, 2);
        assert_eq!(m.comm().element_count(), 2 + 3);
        assert_eq!(m.constraints().len(), 3);
        // each constraint: 1 private + 2 core ops
        assert!(m.constraints().iter().all(|c| c.task.op_count() == 3));
        // the core is shared
        let shared = rtcg_core::analysis::shared_elements(&m);
        assert_eq!(shared.len(), 2);
        m.validate().unwrap();
    }
}
