//! # rtcg-bench — experiment harness
//!
//! Shared machinery for the `exp_*` binaries (one per experiment row in
//! `DESIGN.md` §4) and the criterion benches: deterministic random model
//! generators for sweeps, wall-clock timing, and aligned table printing
//! so the binaries emit the rows `EXPERIMENTS.md` records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod obs;
pub mod report;
pub mod table;

pub use corpus::{generate_corpus, CorpusSpec};
pub use gen::{random_async_model, random_process_set, shared_core_model};
pub use obs::init_from_env as init_metrics_from_env;
pub use report::{BenchReport, ScenarioRow};
pub use table::Table;

use std::time::Instant;

/// Times a closure, returning `(result, seconds)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_result() {
        let (v, secs) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
