//! Opt-in metrics emission for the `exp_e*` experiment binaries.
//!
//! Setting `RTCG_METRICS=<path>` installs an in-memory [`rtcg_obs`]
//! recorder for the run; when the guard returned by [`init_from_env`]
//! drops at the end of `main`, everything collected is written to the
//! path as JSON Lines (one metric object per line, `"type"` field
//! discriminating counter/gauge/histogram/span/event). `RTCG_METRICS=-`
//! writes to stdout instead. Unset: no recorder is installed and every
//! instrumentation site stays on its uninstalled fast path, so default
//! experiment timings are unperturbed.

use rtcg_obs::MemoryRecorder;
use std::io::Write;

/// Drop guard that dumps collected metrics when `main` returns.
pub struct MetricsDump {
    rec: &'static MemoryRecorder,
    path: String,
}

impl Drop for MetricsDump {
    fn drop(&mut self) {
        let jsonl = self.rec.metrics_jsonl();
        if self.path == "-" {
            let _ = std::io::stdout().write_all(jsonl.as_bytes());
        } else {
            match std::fs::write(&self.path, jsonl) {
                Ok(()) => eprintln!("metrics written to {}", self.path),
                Err(e) => eprintln!("cannot write metrics to {}: {e}", self.path),
            }
        }
    }
}

/// Installs the recorder iff `RTCG_METRICS` is set; returns the dump
/// guard to hold for the duration of `main`.
pub fn init_from_env() -> Option<MetricsDump> {
    let path = std::env::var("RTCG_METRICS").ok()?;
    Some(MetricsDump {
        rec: MemoryRecorder::install(),
        path,
    })
}
