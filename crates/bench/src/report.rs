//! Shared writer for the `BENCH_*.json` perf-trajectory artifacts.
//!
//! Every measured criterion bench (leafcheck, batch, bitparallel,
//! serve, corpus) records its numbers in a small JSON file at the repo
//! root so regressions show up in diffs. The files share one shape —
//! `{"bench", "unit", <optional top-level aggregates>, "scenarios":
//! [...]}` with one-line scenario objects — and one pair of environment
//! knobs: `RTCG_BENCH_OUT` overrides the output path, and
//! `RTCG_BENCH_QUICK=1` asks the bench to shrink its sweep for CI smoke
//! runs. This module is the single implementation of that contract.

use std::fmt::Write as _;
use std::path::PathBuf;

/// True when `RTCG_BENCH_QUICK` is set: benches should shrink their
/// sweeps to smoke-test size.
pub fn quick() -> bool {
    std::env::var_os("RTCG_BENCH_QUICK").is_some()
}

/// One scenario line in a bench report. Fields render in insertion
/// order as a single-line JSON object starting with `"name"`.
pub struct ScenarioRow {
    buf: String,
}

impl ScenarioRow {
    /// Starts a row named `name`.
    pub fn new(name: &str) -> Self {
        ScenarioRow {
            buf: format!("{{\"name\": \"{name}\""),
        }
    }

    /// Appends an integer field.
    #[must_use]
    pub fn int(mut self, key: &str, v: u64) -> Self {
        let _ = write!(self.buf, ", \"{key}\": {v}");
        self
    }

    /// Appends a float field with `prec` digits after the point
    /// (benches use 9 for seconds, 2 for ratios).
    #[must_use]
    pub fn float(mut self, key: &str, v: f64, prec: usize) -> Self {
        let _ = write!(self.buf, ", \"{key}\": {v:.prec$}");
        self
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Accumulates scenario rows and writes the `BENCH_<name>.json`
/// artifact.
pub struct BenchReport {
    bench: String,
    header: String,
    rows: Vec<String>,
}

impl BenchReport {
    /// Starts a report for bench `bench` whose scenario numbers are in
    /// `unit`.
    pub fn new(bench: &str, unit: &str) -> Self {
        BenchReport {
            bench: bench.to_string(),
            header: format!("{{\n  \"bench\": \"{bench}\",\n  \"unit\": \"{unit}\",\n"),
            rows: Vec::new(),
        }
    }

    /// Adds a top-level aggregate field (rendered before `scenarios`).
    pub fn aggregate(&mut self, key: &str, v: f64, prec: usize) {
        let _ = writeln!(self.header, "  \"{key}\": {v:.prec$},");
    }

    /// Adds a scenario row.
    pub fn row(&mut self, row: ScenarioRow) {
        self.rows.push(row.finish());
    }

    /// The output path: `RTCG_BENCH_OUT` if set, else
    /// `BENCH_<bench>.json` at the repo root.
    pub fn out_path(&self) -> PathBuf {
        match std::env::var_os("RTCG_BENCH_OUT") {
            Some(p) => p.into(),
            None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join(format!("../../BENCH_{}.json", self.bench)),
        }
    }

    /// Renders the artifact text.
    pub fn render(&self) -> String {
        let mut s = self.header.clone();
        s.push_str("  \"scenarios\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {row}{}",
                if i + 1 < self.rows.len() { "," } else { "" }
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the artifact and prints the destination, panicking on io
    /// errors (a bench that cannot record its numbers has failed).
    pub fn write(&self) {
        let path = self.out_path();
        std::fs::write(&path, self.render())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("{}: wrote {}", self.bench, path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_shared_shape() {
        let mut r = BenchReport::new("demo", "widgets_per_s");
        #[allow(clippy::approx_constant)]
        r.aggregate("overall_speedup", 3.14159, 2);
        r.row(ScenarioRow::new("a").int("n", 7).float("s", 0.25, 9));
        r.row(ScenarioRow::new("b").int("n", 9));
        let text = r.render();
        assert_eq!(
            text,
            "{\n  \"bench\": \"demo\",\n  \"unit\": \"widgets_per_s\",\n  \
             \"overall_speedup\": 3.14,\n  \"scenarios\": [\n    \
             {\"name\": \"a\", \"n\": 7, \"s\": 0.250000000},\n    \
             {\"name\": \"b\", \"n\": 9}\n  ]\n}\n"
        );
        // the artifact must stay machine-readable
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["bench"], "demo");
        assert_eq!(v["scenarios"][0]["s"], 0.25);
    }

    #[test]
    fn default_path_lands_at_repo_root() {
        let r = BenchReport::new("demo", "u");
        if std::env::var_os("RTCG_BENCH_OUT").is_none() {
            assert!(r.out_path().ends_with("../../BENCH_demo.json"));
        }
    }
}
