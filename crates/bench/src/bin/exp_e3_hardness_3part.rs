//! E3 — Theorem 2(i): hardness on the 3-PARTITION / chain family.
//!
//! Two measured signatures of the strong NP-hardness claim:
//!
//! 1. the exact 3-PARTITION solver's cost explodes with `m` (the
//!    reduction source is itself strongly NP-complete);
//! 2. the complete schedule search blows up on the restricted family of
//!    Theorem 2(i) — unit elements, chains of length 3 — as the number
//!    of chains grows.
//!
//! For each encoded 3-PARTITION yes-instance the witness schedule (one
//! frame per triple) is verified feasible by exact latency analysis.

use rtcg_bench::{time_it, Table};
use rtcg_core::feasibility::{exact, parallel};
use rtcg_core::model::Model;
use rtcg_engine::{AnalysisRequest, Engine, Verdict};
use rtcg_hardness::families::chain_family_with_deadline;
use rtcg_hardness::{
    chain_family, encode_three_partition, solve_three_partition, witness_schedule, ThreePartition,
};

fn main() {
    let _metrics = rtcg_bench::init_metrics_from_env();
    println!("E3: Theorem 2(i) — 3-PARTITION structure and chain-family blowup");
    println!();

    // part 1: 3-PARTITION solver scaling + witness verification
    let mut t = Table::new(&[
        "m",
        "items",
        "3part solve (s)",
        "witness |S|",
        "witness feasible",
        "verify (s)",
    ]);
    for m in 1..=6usize {
        let inst = ThreePartition::generate_yes(m, 0xE3 + m as u64);
        let (partition, solve_s) = time_it(|| solve_three_partition(&inst));
        let partition = partition.expect("yes-instance");
        let model = encode_three_partition(&inst).expect("encodes");
        let schedule = witness_schedule(&model, &partition).expect("witness builds");
        let (report, verify_s) = time_it(|| schedule.feasibility(&model).unwrap());
        assert!(report.is_feasible(), "witness must verify (m={m})");
        t.row(&[
            m.to_string(),
            inst.items.len().to_string(),
            format!("{solve_s:.6}"),
            schedule.len().to_string(),
            "yes".into(),
            format!("{verify_s:.6}"),
        ]);
    }
    println!("{}", t.render());

    // part 2: exact schedule search on the chain family
    let mut t = Table::new(&[
        "chains n",
        "elements",
        "alphabet",
        "max_len",
        "nodes visited",
        "candidates",
        "found",
        "witness ok",
        "time (s)",
    ]);
    for n in 1..=3usize {
        let model = chain_family(n);
        // the family is feasible by construction: verify the
        // concatenation witness independently of the search
        let witness = {
            let comm = model.comm();
            let mut actions = Vec::new();
            for i in 0..n {
                for suffix in ["a", "b", "c"] {
                    actions.push(rtcg_core::schedule::Action::Run(
                        comm.lookup(&format!("c{i}{suffix}")).unwrap(),
                    ));
                }
            }
            rtcg_core::schedule::StaticSchedule::new(actions)
        };
        let witness_ok = witness.feasibility(&model).unwrap().is_feasible();
        assert!(witness_ok, "chain family witness must verify (n={n})");
        let max_len = 3 * n + 1;
        let mut req = AnalysisRequest::exact();
        req.search = exact::SearchConfig {
            max_len,
            node_budget: 60_000_000,
        };
        let engine = Engine::new();
        let (report, secs) = time_it(|| engine.analyze(&model, &req).unwrap());
        let stats = report.search.expect("exact mode reports search stats");
        t.row(&[
            n.to_string(),
            model.comm().element_count().to_string(),
            (model.comm().element_count() + 1).to_string(),
            max_len.to_string(),
            stats.nodes_visited.to_string(),
            stats.candidates_checked.to_string(),
            match &report.verdict {
                Verdict::Feasible { .. } | Verdict::FeasibleLanes { .. } => "yes".into(),
                Verdict::Infeasible { .. } => "no≤bound".into(),
                Verdict::Unknown { .. } => "budget".into(),
            },
            if witness_ok {
                "yes".into()
            } else {
                "NO".into()
            },
            format!("{secs:.4}"),
        ]);
        if let Verdict::Feasible { schedule, .. } = &report.verdict {
            assert!(schedule.feasibility(&model).unwrap().is_feasible());
        }
    }
    println!("{}", t.render());

    // part 3: branch-and-bound pruning vs the seed generate-and-filter
    // enumerator, on infeasible (tightened-deadline) instances where
    // the search must prove bounded infeasibility. Reference columns
    // stop at n=2: the unpruned enumerator visits alphabet^len nodes.
    let mut t = Table::new(&[
        "chains n",
        "deadline",
        "b&b nodes",
        "b&b cand",
        "ref nodes",
        "ref cand",
        "cand ratio",
        "b&b (s)",
        "par x2 (s)",
        "par x4 (s)",
    ]);
    for (n, d) in [(1usize, 4u64), (2, 7)] {
        let model = chain_family_with_deadline(n, d);
        let cfg = exact::SearchConfig {
            max_len: 3 * n + 1,
            node_budget: 60_000_000,
        };
        let (bb, bb_s) = time_it(|| exact::find_feasible(&model, cfg).unwrap());
        let (rf, _) = time_it(|| exact::reference::find_feasible_reference(&model, cfg).unwrap());
        assert_eq!(bb.schedule.is_some(), rf.schedule.is_some());
        assert_eq!(bb.exhausted_bound, rf.exhausted_bound);
        let (p2, p2_s) = time_it(|| parallel::find_feasible_parallel(&model, cfg, 2).unwrap());
        let (p4, p4_s) = time_it(|| parallel::find_feasible_parallel(&model, cfg, 4).unwrap());
        assert_eq!(bb.schedule, p2.schedule);
        assert_eq!(bb.schedule, p4.schedule);
        t.row(&[
            n.to_string(),
            d.to_string(),
            bb.nodes_visited.to_string(),
            bb.candidates_checked.to_string(),
            rf.nodes_visited.to_string(),
            rf.candidates_checked.to_string(),
            format!("{}x", rf.candidates_checked / bb.candidates_checked.max(1)),
            format!("{bb_s:.4}"),
            format!("{p2_s:.4}"),
            format!("{p4_s:.4}"),
        ]);
    }
    println!("{}", t.render());
    // part 4: incremental deadline sweep — the engine's candidate memo
    // across binary-search probes vs one cold complete search per probe
    let mut t = Table::new(&[
        "chains n",
        "probes",
        "cold leaf evals",
        "engine computed",
        "engine saved",
        "leaf-eval ratio",
    ]);
    for n in 1..=2usize {
        let model = chain_family(n);
        let cfg = exact::SearchConfig {
            max_len: 3 * n + 1,
            node_budget: 60_000_000,
        };
        let mut cold_evals = 0u64;
        let mut probes = 0u64;
        let cold_rows = rtcg_core::sensitivity::deadline_sensitivities_with(
            &model,
            &mut |m: &Model| -> Result<bool, rtcg_core::ModelError> {
                let out = exact::find_feasible(m, cfg)?;
                cold_evals += out.candidates_checked;
                probes += 1;
                Ok(out.schedule.is_some())
            },
        )
        .unwrap();
        let mut req = AnalysisRequest::exact();
        req.search = cfg;
        let engine = Engine::new();
        let warm_rows = engine.deadline_sensitivities(&model, &req).unwrap();
        for (c, w) in cold_rows.iter().zip(&warm_rows) {
            assert_eq!(
                c.minimum_feasible, w.minimum_feasible,
                "engine sweep must match cold sweep ({})",
                c.name
            );
        }
        let stats = engine.stats();
        t.row(&[
            n.to_string(),
            probes.to_string(),
            cold_evals.to_string(),
            stats.leaf_evals_computed.to_string(),
            stats.leaf_evals_saved.to_string(),
            format!("{}x", cold_evals / stats.leaf_evals_computed.max(1)),
        ]);
    }
    println!("{}", t.render());
    println!("E3 expectation: nodes visited grows exponentially in n (alphabet^(3n+1));");
    println!("3-PARTITION witnesses verify feasible at every m; prefix pruning cuts");
    println!("candidates by >=5x on infeasible instances at identical verdicts; the");
    println!("engine's candidate memo cuts sweep leaf evals by >=5x at equal minima.");
}
