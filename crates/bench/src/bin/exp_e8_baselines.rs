//! E8 — the \[MOK 83\] process-model baselines: RM vs EDF acceptance.
//!
//! The classical schedulability curves the paper's process-based
//! comparison rests on: acceptance ratio of random periodic process sets
//! per utilization bucket under (a) the Liu–Layland RM bound, (b) exact
//! RM response-time analysis, (c) the EDF processor-demand criterion —
//! cross-validated against the dynamic simulator on a sample.

use rtcg_bench::{gen::random_process_set, Table};
use rtcg_core::model::CommGraph;
use rtcg_process::{edf_schedulable, rm_schedulable_by_bound, rm_schedulable_exact, utilization};
use rtcg_sim::dynamic::{simulate_processes, Policy, Preemption, ProcessSim};

fn main() {
    let _metrics = rtcg_bench::init_metrics_from_env();
    println!("E8: RM vs EDF schedulability over utilization (400 sets/bucket, n=5)");
    println!();
    let buckets: &[(f64, f64)] = &[
        (0.0, 0.5),
        (0.5, 0.69),
        (0.69, 0.78),
        (0.78, 0.85),
        (0.85, 0.92),
        (0.92, 1.0),
    ];
    let per_bucket = 400usize;
    let mut counts = vec![(0usize, 0usize, 0usize, 0usize); buckets.len()];

    let mut seed = 0u64;
    let mut draws = 0;
    while counts.iter().any(|c| c.0 < per_bucket) && draws < 200_000 {
        draws += 1;
        seed += 1;
        let target = 0.3 + (seed % 8) as f64 * 0.1;
        let set = random_process_set(5, target, seed);
        let u = utilization(&set);
        let Some(bix) = buckets.iter().position(|&(lo, hi)| u > lo && u <= hi) else {
            continue;
        };
        if counts[bix].0 >= per_bucket {
            continue;
        }
        counts[bix].0 += 1;
        if rm_schedulable_by_bound(&set) {
            counts[bix].1 += 1;
        }
        if rm_schedulable_exact(&set).unwrap() {
            counts[bix].2 += 1;
        }
        if edf_schedulable(&set, 50_000_000).unwrap() {
            counts[bix].3 += 1;
        }
    }

    let mut t = Table::new(&["utilization", "sets", "RM bound %", "RM exact %", "EDF %"]);
    for (bix, &(lo, hi)) in buckets.iter().enumerate() {
        let (n, ll, rm, edf) = counts[bix];
        let pct = |x: usize| {
            if n == 0 {
                "-".to_string()
            } else {
                format!("{:.0}%", 100.0 * x as f64 / n as f64)
            }
        };
        t.row(&[
            format!("({lo:.2}, {hi:.2}]"),
            n.to_string(),
            pct(ll),
            pct(rm),
            pct(edf),
        ]);
    }
    println!("{}", t.render());

    // cross-validate analysis against the simulator on a small sample
    println!("cross-validation: analysis vs dynamic simulation (60 sampled sets)");
    let mut agree = 0usize;
    let mut total = 0usize;
    for seed in 1..=60u64 {
        let set = random_process_set(4, 0.6 + (seed % 4) as f64 * 0.1, 0xE8 * seed);
        let predicted = rm_schedulable_exact(&set).unwrap();
        // build unit bodies and synchronous periodic arrivals
        let mut comm = CommGraph::new();
        let mut bodies = Vec::new();
        let mut arrivals = Vec::new();
        let horizon = set.hyperperiod().min(100_000) * 2;
        for (i, p) in set.processes().iter().enumerate() {
            let e = comm.add_element(format!("e{i}"), p.wcet).unwrap();
            bodies.push(vec![e]);
            arrivals.push(
                (0..)
                    .map(|k| k * p.period)
                    .take_while(|&t| t < horizon)
                    .collect(),
            );
        }
        let input = ProcessSim {
            set: &set,
            comm: &comm,
            bodies: &bodies,
            arrivals: &arrivals,
        };
        let out = simulate_processes(&input, Policy::Rm, Preemption::Tick, horizon).unwrap();
        total += 1;
        if out.no_misses() == predicted {
            agree += 1;
        }
    }
    println!("RM exact analysis vs RM simulation agreement: {agree}/{total}");
    assert_eq!(agree, total, "analysis and simulation must agree");
    println!();
    println!("E8 expectation: the Liu–Layland bound collapses past ~0.69·n-bound;");
    println!("exact RM holds on longer; EDF accepts everything up to U = 1.");
}
