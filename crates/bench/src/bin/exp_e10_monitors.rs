//! E10 (extension) — monitor blocking and software pipelining.
//!
//! The paper: monitors enforce pipeline ordering on shared elements, and
//! "we can reduce the size of critical sections by software pipelining".
//! E10 measures the run-time consequence: worst priority-inversion
//! blocking of a high-priority process on a shared element of weight `w`
//! is `w − 1` ticks with atomic critical sections, and ≤ 1 tick after
//! pipelining — independent of `w`.

use rtcg_bench::Table;
use rtcg_core::model::CommGraph;
use rtcg_core::time::Time;
use rtcg_process::{Process, ProcessKind, ProcessSet};
use rtcg_sim::dynamic::Policy;
use rtcg_sim::monitors::{simulate_with_monitors, MonitorSim};
use rtcg_synth::MonitorId;
use std::collections::BTreeMap;

struct Scenario {
    set: ProcessSet,
    comm: CommGraph,
    bodies: Vec<Vec<rtcg_core::ElementId>>,
    arrivals: Vec<Vec<Time>>,
    monitored: BTreeMap<rtcg_core::ElementId, MonitorId>,
}

/// Low-priority and high-priority process sharing an element of weight
/// `w`, atomic or pipelined; hi releases one tick after lo starts.
fn scenario(w: u64, pipelined: bool) -> Scenario {
    let mut comm = CommGraph::new();
    let mut monitored = BTreeMap::new();
    let mut shared = Vec::new();
    if pipelined {
        for k in 0..w {
            let st = comm.add_element(format!("s{k}"), 1).unwrap();
            monitored.insert(st, MonitorId(0));
            shared.push(st);
        }
    } else {
        let s = comm.add_element("s", w).unwrap();
        monitored.insert(s, MonitorId(0));
        shared.push(s);
    }
    let tail = comm.add_element("tail", 3).unwrap();
    let mut lo_body = shared.clone();
    lo_body.push(tail);
    let hi_body = shared;
    let mut set = ProcessSet::new();
    set.add(Process {
        name: "lo".into(),
        wcet: w + 3,
        period: 200,
        deadline: 200,
        kind: ProcessKind::Sporadic,
    })
    .unwrap();
    set.add(Process {
        name: "hi".into(),
        wcet: w,
        period: 50,
        deadline: 3 * w + 5,
        kind: ProcessKind::Sporadic,
    })
    .unwrap();
    Scenario {
        set,
        comm,
        bodies: vec![lo_body, hi_body],
        arrivals: vec![vec![0, 100], vec![1, 101]],
        monitored,
    }
}

fn main() {
    let _metrics = rtcg_bench::init_metrics_from_env();
    println!("E10 (extension): monitor blocking vs software pipelining");
    println!();
    let mut t = Table::new(&[
        "shared w",
        "atomic blocking",
        "pipelined blocking",
        "atomic misses",
        "pipelined misses",
    ]);
    for &w in &[2u64, 3, 4, 6, 8, 12] {
        let mut row = vec![w.to_string()];
        let mut misses = Vec::new();
        for pipelined in [false, true] {
            let sc = scenario(w, pipelined);
            let input = MonitorSim {
                set: &sc.set,
                comm: &sc.comm,
                bodies: &sc.bodies,
                arrivals: &sc.arrivals,
                monitored: &sc.monitored,
            };
            let out = simulate_with_monitors(&input, Policy::Edf, 200).unwrap();
            row.push(out.stats[1].max_blocking.to_string());
            misses.push(
                out.stats
                    .iter()
                    .map(|s| s.missed)
                    .sum::<usize>()
                    .to_string(),
            );
            if !pipelined {
                assert_eq!(
                    out.stats[1].max_blocking,
                    w - 1,
                    "atomic blocking must be w-1"
                );
            } else {
                assert!(out.stats[1].max_blocking <= 1, "pipelined blocking ≤ 1");
            }
        }
        row.extend(misses);
        t.row(&row);
    }
    println!("{}", t.render());
    println!("E10 expectation: atomic blocking grows linearly as w−1;");
    println!("pipelined blocking stays ≤ 1 tick regardless of w.");
}
