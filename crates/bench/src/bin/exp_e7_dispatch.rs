//! E7 — "the run-time scheduler is very efficient": dispatch cost.
//!
//! Measures the per-tick cost of the table-driven dispatcher (array
//! read) against dynamic EDF (heap) and LLF (scan) dispatchers as the
//! job count grows. Wall-clock medians over repeated batches; the
//! criterion bench `dispatch` provides the statistically rigorous
//! version, this binary prints the table for `EXPERIMENTS.md`.

use rtcg_bench::Table;
use rtcg_core::schedule::{Action, StaticSchedule};
use rtcg_sim::dispatch::{
    synthetic_jobs, Dispatcher, EdfDispatcher, LlfDispatcher, TableDispatcher,
};
use std::time::Instant;

fn measure_ns(mut f: impl FnMut()) -> f64 {
    const BATCH: u32 = 200_000;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..BATCH {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / BATCH as f64;
        best = best.min(ns);
    }
    best
}

fn main() {
    let _metrics = rtcg_bench::init_metrics_from_env();
    println!("E7: per-tick dispatch cost (ns/tick, best of 5 batches)");
    println!();
    let mut t = Table::new(&["jobs n", "table", "EDF heap", "LLF scan", "LLF/table"]);
    for &n in &[8usize, 16, 32, 64, 128, 256] {
        // table dispatcher over a same-sized action table
        let actions: Vec<Action> = (0..n)
            .map(|i| Action::Run(rtcg_core::model::ElementId::new(i as u32)))
            .collect();
        let schedule = StaticSchedule::new(actions);
        let mut table = TableDispatcher::new(&schedule, |_| 1);
        let table_ns = measure_ns(|| {
            std::hint::black_box(table.next());
        });

        let mut edf = EdfDispatcher::new(synthetic_jobs(n));
        let edf_ns = measure_ns(|| {
            std::hint::black_box(edf.next());
        });

        let mut llf = LlfDispatcher::new(synthetic_jobs(n));
        let llf_ns = measure_ns(|| {
            std::hint::black_box(llf.next());
        });

        t.row(&[
            n.to_string(),
            format!("{table_ns:.1}"),
            format!("{edf_ns:.1}"),
            format!("{llf_ns:.1}"),
            format!("{:.1}x", llf_ns / table_ns.max(0.01)),
        ]);
    }
    println!("{}", t.render());
    println!("E7 expectation: table dispatch is O(1) and flat; EDF grows ~log n;");
    println!("LLF grows linearly — the table-driven scheduler wins at every size.");
}
