//! E11 (ablation) — how good are the heuristic's tables?
//!
//! "Even though optimal static schedules are hard to compute in general,
//! … the run-time scheduler is very efficient once a feasible static
//! schedule has been found off-line." The heuristic buys tractability;
//! this ablation measures what it pays: on small instances where the
//! exhaustive search can find the *minimum-length* feasible schedule,
//! compare the EDF-generated table, its idle-compacted version, and the
//! optimum — in table length and worst latency slack.

use rtcg_bench::{time_it, Table};
use rtcg_core::feasibility::exact;
use rtcg_core::heuristic::{compact, synthesize};
use rtcg_core::model::{Model, ModelBuilder};
use rtcg_core::task::TaskGraphBuilder;

fn unit_model(deadlines: &[u64]) -> Model {
    let mut b = ModelBuilder::new();
    for (i, &d) in deadlines.iter().enumerate() {
        let e = b.element(&format!("e{i}"), 1);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous(&format!("c{i}"), tg, d, d);
    }
    b.build().unwrap()
}

fn main() {
    let _metrics = rtcg_bench::init_metrics_from_env();
    println!("E11 (ablation): heuristic vs compacted vs optimal table length");
    println!();
    let mut t = Table::new(&[
        "deadlines",
        "heuristic |S|",
        "compacted |S|",
        "optimal |S|",
        "opt search (s)",
        "heuristic slack",
        "optimal slack",
    ]);
    let cases: Vec<Vec<u64>> = vec![
        vec![2],
        vec![4, 4],
        vec![4, 6],
        vec![6, 6, 6],
        vec![4, 8, 8],
        vec![6, 8, 12],
    ];
    for deadlines in &cases {
        let model = unit_model(deadlines);
        let heur = synthesize(&model).expect("Theorem-3-region instance");
        let m = heur.model();
        let compacted = compact(m, &heur.schedule).expect("compacts");
        let (opt, secs) = time_it(|| {
            exact::find_feasible(
                &model,
                exact::SearchConfig {
                    max_len: heur.schedule.len().min(8),
                    node_budget: 50_000_000,
                },
            )
            .unwrap()
        });
        let optimal = opt.schedule.expect("feasible instance");
        let min_slack = |model: &Model, s: &rtcg_core::StaticSchedule| -> u64 {
            s.feasibility(model)
                .unwrap()
                .checks
                .iter()
                .map(|c| c.slack().expect("feasible"))
                .min()
                .unwrap_or(0)
        };
        t.row(&[
            format!("{deadlines:?}"),
            heur.schedule.len().to_string(),
            compacted.len().to_string(),
            optimal.len().to_string(),
            format!("{secs:.4}"),
            min_slack(m, &heur.schedule).to_string(),
            min_slack(&model, &optimal).to_string(),
        ]);
        assert!(optimal.len() <= compacted.len());
        assert!(compacted.len() <= heur.schedule.len());
    }
    println!("{}", t.render());
    println!("E11 expectation: iterative-deepening search finds the minimum table;");
    println!("the heuristic's table is longer (one hyperperiod) but compaction");
    println!("closes part of the gap — all three verify feasible.");
}
