//! E5 — Theorem 3: the sufficient condition, validated by sweep.
//!
//! Theorem 3: `Σ wᵢ/dᵢ ≤ 1/2` ∧ `⌊dᵢ/2⌋ ≥ wᵢ` ∧ all pipelinable ⇒ a
//! feasible static schedule exists. The sweep generates seeded random
//! chain-constraint models across a density grid and reports, per
//! density bucket, how often the constructive synthesizer (EDF with the
//! Theorem-3 half-split, then the wide split, then the game fallback)
//! produces a *verified* feasible schedule.
//!
//! Expected shape: 100% success in the Theorem-3 region (density ≤ 0.5
//! with condition (ii)); graceful degradation above, reaching 0% beyond
//! density 1 (impossible). Also reports the ablation: success of the
//! half-split alone (the theorem's own construction).

use rtcg_bench::{gen::random_async_model, Table};
use rtcg_core::heuristic::{
    generate_edf_schedule, synthesize_with, theorem3_applies, SplitStrategy, SynthesisConfig,
};

fn main() {
    let _metrics = rtcg_bench::init_metrics_from_env();
    println!("E5: Theorem 3 sufficiency sweep (random chain models, 60 trials/bucket)");
    println!();
    let trials = 60u64;
    let mut t = Table::new(&[
        "density bucket",
        "trials",
        "thm3 region",
        "half-split ok",
        "full synth ok",
        "success %",
    ]);
    let buckets: &[(f64, f64)] = &[
        (0.0, 0.2),
        (0.2, 0.35),
        (0.35, 0.5),
        (0.5, 0.65),
        (0.65, 0.8),
        (0.8, 1.0),
        (1.0, 1.5),
    ];
    let mut results: Vec<(usize, usize, usize, usize)> = vec![(0, 0, 0, 0); buckets.len()];

    let mut seed = 0u64;
    // draw until every bucket has `trials` entries (cap total draws)
    let mut draws = 0u64;
    while results.iter().any(|r| (r.0 as u64) < trials) && draws < 40_000 {
        draws += 1;
        seed += 1;
        let target = 0.1 + (seed % 14) as f64 * 0.1;
        let n = 2 + (seed % 4) as usize;
        let model = random_async_model(n, target, seed);
        let density = model.deadline_density();
        let Some(bix) = buckets
            .iter()
            .position(|&(lo, hi)| density > lo && density <= hi)
        else {
            continue;
        };
        if results[bix].0 as u64 >= trials {
            continue;
        }
        results[bix].0 += 1;
        let in_region = theorem3_applies(&model).unwrap();
        if in_region {
            results[bix].1 += 1;
        }
        // ablation: the half-split construction alone
        let half_ok = match generate_edf_schedule(&model, SplitStrategy::Half, 500_000) {
            Ok(s) => s.feasibility(&model).unwrap().is_feasible(),
            Err(_) => false,
        };
        if half_ok {
            results[bix].2 += 1;
        }
        // full synthesizer
        let full_ok = synthesize_with(
            &model,
            SynthesisConfig {
                max_hyperperiod: 500_000,
                game_state_budget: 30_000,
            },
        )
        .is_ok();
        if full_ok {
            results[bix].3 += 1;
        }
        // the theorem itself: inside the region, synthesis must succeed
        if in_region {
            assert!(
                half_ok || full_ok,
                "Theorem-3-region instance failed! density={density} seed={seed}"
            );
        }
    }

    for (bix, &(lo, hi)) in buckets.iter().enumerate() {
        let (n, region, half, full) = results[bix];
        t.row(&[
            format!("({lo:.2}, {hi:.2}]"),
            n.to_string(),
            region.to_string(),
            half.to_string(),
            full.to_string(),
            if n > 0 {
                format!("{:.0}%", 100.0 * full as f64 / n as f64)
            } else {
                "-".into()
            },
        ]);
    }
    println!("{}", t.render());
    println!("E5 expectation: 100% success at density ≤ 0.5 (Theorem-3 region);");
    println!("degradation above 0.5; zero beyond 1.0.");
}
