//! E4 — Theorem 2(ii): hardness on the single-operation family.
//!
//! The restriction: every task graph is one operation, all but one of
//! the deadlines equal, elements non-pipelinable. The family here (a
//! unit clock with deadline 4 plus `n` atomic weight-2 items with common
//! deadline `3n+2`) is feasible exactly by rotating items through the
//! inter-clock gaps — a cyclic-arrangement search, echoing the paper's
//! CYCLIC ORDERING reduction source. Both complete deciders are swept
//! over `n` and their cost recorded.

use rtcg_bench::{time_it, Table};
use rtcg_core::feasibility::{exact, game};
use rtcg_engine::{AnalysisRequest, Engine, Verdict};
use rtcg_hardness::single_op_family;

fn main() {
    let _metrics = rtcg_bench::init_metrics_from_env();
    println!("E4: Theorem 2(ii) — single-op family (clock + atomic items)");
    println!();
    let mut t = Table::new(&[
        "items n",
        "deadline",
        "game states",
        "game verdict",
        "game (s)",
        "search nodes",
        "search verdict",
        "search (s)",
        "par x4 (s)",
    ]);
    for n in 1..=4usize {
        let model = single_op_family(n);
        let d_common = 3 * n as u64 + 2;
        let (g, gs) = time_it(|| {
            game::solve_game(
                &model,
                game::GameConfig {
                    state_budget: 3_000_000,
                    frontier: Default::default(),
                },
            )
            .unwrap()
        });
        let (gv, gstates) = match &g {
            game::GameOutcome::Feasible {
                schedule,
                states_expanded,
            } => {
                assert!(schedule.feasibility(&model).unwrap().is_feasible());
                ("feasible", *states_expanded)
            }
            game::GameOutcome::Infeasible { states_expanded } => ("infeasible", *states_expanded),
            game::GameOutcome::Unknown { states_expanded } => ("unknown", *states_expanded),
        };
        let max_len = 2 * n + 1;
        let mut req = AnalysisRequest::exact();
        req.search = exact::SearchConfig {
            max_len,
            node_budget: 60_000_000,
        };
        let engine = Engine::new();
        let (report, ss) = time_it(|| engine.analyze(&model, &req).unwrap());
        let stats = report.search.expect("exact mode reports search stats");
        let sv = match &report.verdict {
            Verdict::Feasible { schedule, .. } => {
                assert!(schedule.feasibility(&model).unwrap().is_feasible());
                "feasible"
            }
            Verdict::FeasibleLanes { .. } => "feasible",
            Verdict::Infeasible { .. } => "no≤bound",
            Verdict::Unknown { .. } => "budget",
        };
        // fresh engine: the result memo would otherwise serve the
        // verdict without exercising the parallel search at all
        let mut par_req = req;
        par_req.threads = 4;
        let par_engine = Engine::new();
        let (par_report, ps) = time_it(|| par_engine.analyze(&model, &par_req).unwrap());
        assert_eq!(
            report.verdict.schedule(),
            par_report.verdict.schedule(),
            "parallel must replay sequential"
        );
        t.row(&[
            n.to_string(),
            d_common.to_string(),
            gstates.to_string(),
            gv.to_string(),
            format!("{gs:.4}"),
            stats.nodes_visited.to_string(),
            sv.to_string(),
            format!("{ss:.4}"),
            format!("{ps:.4}"),
        ]);
    }
    println!("{}", t.render());
    println!("E4 expectation: both solvers find the rotation for small n, with cost");
    println!("growing exponentially (game state space ~ alphabet^(3n+2)).");
}
