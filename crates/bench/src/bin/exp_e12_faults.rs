//! E12 (extension) — fault margins of synthesized schedules.
//!
//! The paper's conclusion proposes building fault-tolerance techniques
//! on the model's data-flow edges. The zeroth-order question is how much
//! timing redundancy a synthesized schedule already carries: how many
//! consecutive lost executions (transient faults producing garbage
//! values) each element can absorb before some deadline window goes
//! empty. E12 sweeps the deadline slack of a one-element model and
//! measures the margin, then reports per-element margins on the paper's
//! control-system example.

use rtcg_bench::Table;
use rtcg_core::model::ModelBuilder;
use rtcg_core::task::TaskGraphBuilder;
use rtcg_engine::{AnalysisRequest, Engine};
use rtcg_sim::faults::fault_margin;

fn main() {
    let _metrics = rtcg_bench::init_metrics_from_env();
    println!("E12 (extension): fault margins — consecutive lost executions absorbed");
    println!();

    // part 1: margin grows linearly with deadline slack
    let mut t = Table::new(&["deadline d", "schedule", "margin", "predicted ⌊(d-1)/2⌋-1"]);
    for &d in &[3u64, 5, 7, 9, 13, 17] {
        let mut b = ModelBuilder::new();
        let e = b.element("e", 1);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous("c", tg, d, d);
        let model = b.build().unwrap();
        // fixed half-rate schedule [e φ]: instances every 2 ticks
        let schedule = rtcg_core::StaticSchedule::new(vec![
            rtcg_core::Action::Run(e),
            rtcg_core::Action::Idle,
        ]);
        assert!(schedule.feasibility(&model).unwrap().is_feasible());
        let trace = schedule.expand(model.comm(), 40).unwrap();
        let margin = fault_margin(&model, &trace, e, 16).unwrap();
        // erasing k+1 instances leaves start-gap 2(k+2); a d-window holds
        // a start iff gap ≤ d ⇒ margin = largest k with 2(k+3) > d … i.e.
        // ⌊(d−1)/2⌋ − 1 surviving-gap algebra, printed for comparison
        let predicted = ((d - 1) / 2).saturating_sub(1);
        t.row(&[
            d.to_string(),
            "[e φ]".to_string(),
            margin.to_string(),
            predicted.to_string(),
        ]);
        assert_eq!(margin as u64, predicted, "d={d}");
    }
    println!("{}", t.render());

    // part 2: per-element margins of the synthesized Mok example,
    // routed through the engine — each query re-requests the analysis
    // and all but the first are served from the result memo
    println!("fault margins of the synthesized control-system schedule:");
    let (model, _) = rtcg_core::mok_example::default_model();
    let req = AnalysisRequest::default();
    let engine = Engine::new();
    let report = engine.analyze(&model, &req).unwrap();
    let names: Vec<String> = report
        .analysis_model
        .comm()
        .elements()
        .map(|(_, e)| e.name.clone())
        .collect();
    let mut t = Table::new(&["element", "margin (consecutive losses)"]);
    for name in &names {
        let margin = engine.fault_margin(&model, name, 12, 10, &req).unwrap();
        t.row(&[name.clone(), margin.to_string()]);
    }
    println!("{}", t.render());
    let stats = engine.stats();
    println!(
        "engine cache: {} hit(s), {} miss(es) across {} fault-margin queries",
        stats.hits,
        stats.misses,
        names.len()
    );
    println!("E12 expectation: margin grows ~d/2 with deadline slack; the example's");
    println!("elements inherit margins from their constraints' slack (z-chain's");
    println!("elements are tightest).");
}
