//! E6 — the shared-operation argument: naive processes vs latency
//! scheduling.
//!
//! The paper: with `p_x = p_y`, the naive one-process-per-constraint
//! mapping executes the shared `f_S` twice per period; latency
//! scheduling (and the merged task graph) runs it once. Sweep the
//! shared-core family over the number of constraints `k` and the shared
//! core size `s`, and report the paper's saving three ways:
//!
//! * naive processor demand rate vs merged demand rate (analytic);
//! * merged-task computation saving per round (structural);
//! * busy fraction of the latency-scheduled static table (measured).

use rtcg_bench::{gen::shared_core_model, Table};
use rtcg_core::constraint::ConstraintId;
use rtcg_core::heuristic::{synthesize_with, SynthesisConfig};
use rtcg_process::naive_synthesis;
use rtcg_synth::latency::latency_synthesize_with;
use rtcg_synth::merge_constraints;

fn main() {
    let _metrics = rtcg_bench::init_metrics_from_env();
    println!("E6: shared-operation savings — naive process mapping vs merging");
    println!();
    let mut t = Table::new(&[
        "k",
        "core s",
        "naive rate",
        "merged rate",
        "redundant",
        "merge saving/round",
        "saving frac",
        "unmerged busy",
        "merged busy",
    ]);
    for &k in &[2usize, 3, 4, 6] {
        for &s in &[1usize, 2, 4] {
            let model = shared_core_model(k, s);
            let naive = naive_synthesis(&model).expect("naive synthesis");
            let naive_rate = naive.demand_rate();
            let merged_rate = naive.merged_demand_rate(&model).unwrap();
            let redundant = naive.redundant_work_rate(&model).unwrap();
            let ids: Vec<ConstraintId> = (0..k as u32).map(ConstraintId::new).collect();
            let merged = merge_constraints(&model, &ids).expect("merge");
            // per-constraint (unmerged) synthesis re-runs the shared core
            let cfg = SynthesisConfig {
                max_hyperperiod: 500_000,
                game_state_budget: 0,
            };
            let unmerged_busy = match synthesize_with(&model, cfg) {
                Ok(out) => format!(
                    "{:.3}",
                    out.schedule.busy_fraction(out.model().comm()).unwrap()
                ),
                Err(_) => "-".into(),
            };
            // merged latency scheduling runs the core once per round
            let merged_busy = match latency_synthesize_with(&model, cfg) {
                Ok(out) => format!(
                    "{:.3}",
                    out.schedule
                        .busy_fraction(out.analysis_model.comm())
                        .unwrap()
                ),
                Err(_) => "-".into(),
            };
            t.row(&[
                k.to_string(),
                s.to_string(),
                format!("{naive_rate:.3}"),
                format!("{merged_rate:.3}"),
                format!("{redundant:.3}"),
                merged.saving().to_string(),
                format!("{:.3}", merged.saving_fraction()),
                unmerged_busy,
                merged_busy,
            ]);
            assert!(
                redundant > 0.0,
                "shared core must create redundancy in the naive mapping"
            );
            assert_eq!(
                merged.saving() as usize,
                (k - 1) * s,
                "each extra constraint re-runs the s-element core once"
            );
        }
    }
    println!("{}", t.render());
    println!("E6 expectation: redundant work grows with both k and s —");
    println!("merging saves (k-1)·s units per round; the merged latency-scheduled");
    println!("table's busy fraction tracks the merged rate, while per-constraint");
    println!("(naive-equivalent) synthesis tracks the naive rate.");
}
