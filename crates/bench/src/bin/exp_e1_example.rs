//! E1 — the paper's worked example (Figures 1 and 2).
//!
//! Builds the control-system model, synthesizes a feasible static
//! schedule via latency scheduling, prints the per-constraint latency
//! table, and end-to-end validates the run-time table executor against
//! adversarial and random invocation streams.

use rtcg_bench::Table;
use rtcg_core::heuristic::synthesize;
use rtcg_core::mok_example;
use rtcg_sim::invocation::InvocationPattern;
use rtcg_sim::table::run_table_executor;

fn main() {
    let _metrics = rtcg_bench::init_metrics_from_env();
    let (model, _) = mok_example::default_model();
    println!("E1: Mok (ICPP 1985) Figures 1-2 — automatic control system");
    println!();
    println!("communication graph (DOT):");
    println!("{}", model.comm().to_dot("figure-1"));

    let outcome = synthesize(&model).expect("example is synthesizable");
    let m = outcome.model();
    println!(
        "synthesized by strategy `{}`; schedule has {} actions, duration {} ticks, busy {:.1}%",
        outcome.strategy,
        outcome.schedule.len(),
        outcome.schedule.duration(m.comm()).unwrap(),
        100.0 * outcome.schedule.busy_fraction(m.comm()).unwrap()
    );
    println!();

    let report = outcome.schedule.feasibility(m).expect("analyzable");
    let mut t = Table::new(&[
        "constraint",
        "kind",
        "p",
        "d",
        "latency",
        "slack",
        "verdict",
    ]);
    for c in &report.checks {
        let constraint = m.constraint(c.constraint).unwrap();
        t.row(&[
            c.name.clone(),
            format!("{:?}", c.kind),
            constraint.period.to_string(),
            c.deadline.to_string(),
            c.latency.map_or("∞".into(), |l| l.to_string()),
            c.slack().map_or("-".into(), |s| s.to_string()),
            if c.ok { "OK".into() } else { "VIOLATED".into() },
        ]);
    }
    println!("{}", t.render());
    assert!(report.is_feasible(), "example must be feasible");

    // end-to-end: run the table executor against adversarial + random z
    println!("run-time validation (table executor, 10000 ticks):");
    let mut t = Table::new(&[
        "pattern",
        "constraint",
        "checked",
        "met",
        "missed",
        "worst resp",
    ]);
    fn adversarial(c: &rtcg_core::TimingConstraint) -> InvocationPattern {
        if c.is_periodic() {
            InvocationPattern::Periodic {
                period: c.period,
                offset: 0,
            }
        } else {
            InvocationPattern::SporadicMaxRate {
                separation: c.period,
                offset: 7,
            }
        }
    }
    fn random(c: &rtcg_core::TimingConstraint) -> InvocationPattern {
        if c.is_periodic() {
            InvocationPattern::Periodic {
                period: c.period,
                offset: 0,
            }
        } else {
            InvocationPattern::SporadicRandom {
                separation: c.period,
                spread: c.period * 3,
                seed: 0xE1,
            }
        }
    }
    type PatternFn = fn(&rtcg_core::TimingConstraint) -> InvocationPattern;
    let cases: [(&str, PatternFn); 2] = [("adversarial", adversarial), ("random", random)];
    for (label, mk) in cases {
        let patterns: Vec<InvocationPattern> = m.constraints().iter().map(mk).collect();
        let run = run_table_executor(m, &outcome.schedule, &patterns, 10_000).expect("runs");
        for o in &run.outcomes {
            t.row(&[
                label.to_string(),
                o.name.clone(),
                o.checked.to_string(),
                o.met.to_string(),
                o.missed.to_string(),
                o.worst_response.map_or("-".into(), |r| r.to_string()),
            ]);
        }
        assert!(run.all_met(), "{label}: all invocation windows must be met");
    }
    println!("{}", t.render());
    println!("E1 PASS: every invocation window of every constraint contained an execution.");
}
