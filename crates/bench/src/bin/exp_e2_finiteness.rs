//! E2 — Theorem 1: trace feasibility ⇔ finite static schedule.
//!
//! The theorem: if any execution trace meets every asynchronous latency,
//! a finite static schedule exists. Executable form: the complete game
//! solver (whose positive verdicts are, by construction, finite static
//! schedules extracted from a safe lasso) must agree with the bounded
//! exact string search on every small instance — and every positive
//! verdict must verify under exact latency analysis.
//!
//! Sweep: exhaustive micro-instances plus seeded random ones.

use rtcg_bench::{time_it, Table};
use rtcg_core::feasibility::{exact, game};
use rtcg_core::model::{Model, ModelBuilder};
use rtcg_core::task::TaskGraphBuilder;

fn single_op_model(specs: &[(u64, u64)]) -> Model {
    let mut b = ModelBuilder::new();
    for (i, &(w, d)) in specs.iter().enumerate() {
        let e = b.element(&format!("e{i}"), w);
        let tg = TaskGraphBuilder::new().op("o", e).build().unwrap();
        b.asynchronous(&format!("c{i}"), tg, d, d);
    }
    b.build().unwrap()
}

fn main() {
    let _metrics = rtcg_bench::init_metrics_from_env();
    println!("E2: Theorem 1 — the simulation game and finite static schedules");
    println!();

    // exhaustive micro-sweep: 1-2 constraints, w ≤ 2, d ≤ 5 (validity w ≤ d)
    let mut cases: Vec<Vec<(u64, u64)>> = Vec::new();
    for w0 in 1..=2u64 {
        for d0 in w0..=5u64 {
            cases.push(vec![(w0, d0)]);
            for w1 in 1..=2u64 {
                for d1 in w1..=5u64 {
                    cases.push(vec![(w0, d0), (w1, d1)]);
                }
            }
        }
    }

    let mut t = Table::new(&[
        "instance",
        "game verdict",
        "states",
        "search verdict",
        "nodes",
        "|schedule|",
        "agree",
    ]);
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    let mut disagreements = 0usize;
    for specs in &cases {
        let m = single_op_model(specs);
        let (g, _) = time_it(|| game::solve_game(&m, game::GameConfig::default()).unwrap());
        let (s, _) = time_it(|| {
            exact::find_feasible(
                &m,
                exact::SearchConfig {
                    max_len: 6,
                    node_budget: 50_000_000,
                },
            )
            .unwrap()
        });
        let (gv, states, sched_len) = match &g {
            game::GameOutcome::Feasible {
                schedule,
                states_expanded,
            } => {
                // Theorem 1's payload: the lasso cycle IS a finite
                // feasible static schedule — verify it exactly.
                let rep = schedule.feasibility(&m).unwrap();
                assert!(rep.is_feasible(), "lasso schedule must verify: {specs:?}");
                ("feasible", *states_expanded, schedule.len())
            }
            game::GameOutcome::Infeasible { states_expanded } => {
                ("infeasible", *states_expanded, 0)
            }
            game::GameOutcome::Unknown { states_expanded } => ("unknown", *states_expanded, 0),
        };
        let sv = match (&s.schedule, s.exhausted_bound) {
            (Some(_), _) => "feasible",
            (None, true) => "infeasible≤6",
            (None, false) => "budget",
        };
        let agree = matches!(
            (gv, sv),
            ("feasible", "feasible") | ("infeasible", "infeasible≤6")
        );
        if gv == "feasible" {
            feasible += 1;
        } else if gv == "infeasible" {
            infeasible += 1;
        }
        if !agree {
            disagreements += 1;
        }
        t.row(&[
            format!("{specs:?}"),
            gv.to_string(),
            states.to_string(),
            sv.to_string(),
            s.nodes_visited.to_string(),
            sched_len.to_string(),
            if agree { "yes".into() } else { "NO".into() },
        ]);
    }
    println!("{}", t.render());
    println!(
        "{} instances: {feasible} feasible, {infeasible} infeasible, {disagreements} disagreements",
        cases.len()
    );
    assert_eq!(disagreements, 0, "Theorem 1 deciders must agree");
    println!("E2 PASS: every feasible verdict produced a finite, verified static schedule;");
    println!("         the complete game solver and the bounded search never disagreed.");
}
